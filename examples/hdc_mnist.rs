//! HDC classification at the paper's scale (§IV-A3): 8192-dimensional
//! hypervectors, 10 classes, MNIST-like synthetic queries — compiled
//! through the full pipeline and executed on the simulated accelerator
//! in both the base and power-optimized configurations.
//!
//! ```text
//! cargo run --example hdc_mnist --release
//! ```

use c4cam::arch::Optimization;
use c4cam::driver::{paper_arch, Experiment};
use c4cam::workloads::HdcWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let queries = 64; // simulated; costs extrapolate linearly per query
    println!("HDC on synthetic MNIST: 10 classes x 8192 dims, {queries} queries\n");

    let hdc = HdcWorkload::paper(queries);
    for (label, opt) in [
        ("cam-base ", Optimization::Base),
        ("cam-power", Optimization::Power),
    ] {
        let out = Experiment::new(&hdc).arch(paper_arch(32, opt, 1)).run()?;
        println!(
            "{label}  subarrays={:4}  banks={}  accuracy={:5.1}%",
            out.placement.physical_subarrays,
            out.placement.banks,
            out.accuracy() * 100.0
        );
        println!(
            "          per query: {:7.2} ns, {:8.2} pJ   | power {:8.3} mW",
            out.latency_per_query_ns(),
            out.energy_per_query_pj(),
            out.query_phase.power_mw()
        );
        // Extrapolate to the full 10k-query MNIST test set.
        let full = out.scaled_query_phase(10_000);
        println!(
            "          10k queries: {:.3} ms, {:.3} µJ, EDP {:.4} nJ·s\n",
            full.latency_ms(),
            full.energy_uj(),
            full.edp_nj_s()
        );
    }

    // 2-bit (MCAM) variant — paper Fig. 7 validates both. The workload
    // picks its level count up from the architecture's bits_per_cell.
    let out = Experiment::new(&hdc)
        .arch(paper_arch(32, Optimization::Base, 2))
        .run()?;
    println!(
        "cam-base (2-bit MCAM)  per query: {:.2} ns, {:.2} pJ  accuracy={:.1}%",
        out.latency_per_query_ns(),
        out.energy_per_query_pj(),
        out.accuracy() * 100.0
    );
    Ok(())
}
