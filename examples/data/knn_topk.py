def forward(self, input: Tensor) -> Tensor:
    others = self.weight.transpose(-2, -1)
    matmul = torch.matmul(input, (others))
    values, indices = torch.ops.aten.topk(matmul, 1, largest=True)
    return values, indices
