//! KNN classification on a Pneumonia-scale synthetic dataset
//! (paper §IV-A3: the chest-X-ray images are proprietary, so the
//! dataset here is a deterministic synthetic stand-in with the same
//! geometry — 5216 stored patterns).
//!
//! Pass `--small` to run a reduced problem (fast in debug builds).
//!
//! ```text
//! cargo run --example knn_pneumonia --release
//! ```

use c4cam::arch::Optimization;
use c4cam::driver::{paper_arch, Experiment};
use c4cam::workloads::KnnWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = std::env::args().any(|a| a == "--small");
    let (patterns, dims, queries) = if small {
        (256usize, 256usize, 4usize)
    } else {
        (5216, 4096, 4)
    };
    println!("KNN: {patterns} stored patterns x {dims} features, {queries} queries\n");

    let knn = KnnWorkload {
        patterns,
        dims,
        queries,
        k: 5,
        noise: 0.2,
        seed: 7,
    };
    for (label, opt) in [
        ("cam-base ", Optimization::Base),
        ("cam-power", Optimization::Power),
    ] {
        let out = Experiment::new(&knn).arch(paper_arch(32, opt, 1)).run()?;
        println!(
            "{label}  subarrays={:6}  banks={:4}  top-1 agreement with CPU: {:5.1}%",
            out.placement.physical_subarrays,
            out.placement.banks,
            out.accuracy() * 100.0
        );
        println!(
            "          per query: {:9.2} ns, {:11.2} pJ | power {:9.4} W  EDP {:.4e} nJ·s\n",
            out.latency_per_query_ns(),
            out.energy_per_query_pj(),
            out.query_phase.power_w(),
            out.query_phase.edp_nj_s()
        );
    }
    Ok(())
}
