//! Regenerate the committed mini-MNIST fixture.
//!
//! The IDX pair under `examples/data/mini-mnist/` is produced by the
//! deterministic generator in `c4cam_datasets::mini_mnist` and checked
//! in so CI and the dataset-backed tests run with no network. This
//! example rewrites the files (byte-identical unless the generator
//! changed); the golden tests in `tests/datasets.rs` fail if the
//! committed bytes and the generator ever drift apart.
//!
//! ```text
//! cargo run --example gen_mini_mnist
//! ```

use c4cam::datasets::{encode_idx, mini_mnist, IDX_IMAGES_FILE, IDX_LABELS_FILE};
use std::path::Path;

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/data/mini-mnist");
    std::fs::create_dir_all(&dir).expect("create fixture directory");
    let (images, labels) = mini_mnist::generate();
    for (file, idx) in [(IDX_IMAGES_FILE, &images), (IDX_LABELS_FILE, &labels)] {
        let path = dir.join(file);
        let bytes = encode_idx(idx);
        std::fs::write(&path, &bytes).expect("write fixture file");
        println!(
            "wrote {} ({} bytes, shape {:?})",
            path.display(),
            bytes.len(),
            idx.shape
        );
    }
}
