//! Quickstart: compile the paper's Fig. 4a TorchScript kernel and run it
//! on the simulated CAM accelerator.
//!
//! ```text
//! cargo run --example quickstart --release [-- --engine simd|tape|trace|walk]
//! ```
//!
//! The default engine is the flat CAM-ISA tape; any name registered in
//! the [`c4cam::hal::BackendRegistry`] works. Every backend produces
//! identical results; the device-exact ones (`walk`, `tape`, `trace`)
//! also report identical statistics.

use c4cam::arch::ArchSpec;
use c4cam::compiler::C4camPipeline;
use c4cam::frontend::{parse_torchscript, FrontendConfig};
use c4cam::hal::{BackendRegistry, ExecOptions};
use c4cam::runtime::Value;
use c4cam::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = "tape".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--engine" {
            let v = it.next().ok_or("--engine requires a value")?;
            engine = v.clone();
        }
    }
    // 1. The TorchScript program (the paper's HDC dot-similarity).
    let source = r#"
def forward(self, input: Tensor) -> Tensor:
    others = self.weight.transpose(-2, -1)
    matmul = torch.matmul(input, (others))
    values, indices = torch.ops.aten.topk(matmul, 1, largest=True)
    return values, indices
"#;

    // 2. Shapes: 4 queries of 256-dim hypervectors vs 8 stored classes.
    let config = FrontendConfig::new()
        .input(vec![4, 256])
        .parameter("weight", vec![8, 256]);
    let lowered = parse_torchscript(source, &config)?;
    println!(
        "parsed '{}' with args {:?}",
        lowered.name, lowered.arg_order
    );

    // 3. The architecture specification (paper §III-B).
    let spec = ArchSpec::builder()
        .subarray(32, 32)
        .hierarchy(4, 4, 8)
        .build()?;
    println!("\narchitecture:\n{}", spec.to_text());

    // 4. Compile torch → cim → cam.
    let compiled = C4camPipeline::new(spec.clone()).compile(lowered.module)?;
    println!(
        "pipeline ran: {:?}",
        compiled.timings.iter().map(|t| t.name).collect::<Vec<_>>()
    );

    // 5. Data: class 3's hypervector, noiselessly queried.
    let mut stored = Vec::new();
    for c in 0..8 {
        for d in 0..256 {
            stored.push(f32::from(u8::from((d * 13 + c * 17) % 8 < 3)));
        }
    }
    let stored = Tensor::from_vec(vec![8, 256], stored)?;
    let mut queries = Tensor::zeros(vec![4, 256]);
    for q in 0..4 {
        let class = q * 2 + 1; // classes 1, 3, 5, 7
        let row = stored.slice2d(class, 0, 1, 256)?;
        queries.insert2d(&row, q, 0)?;
    }

    // 6. Execute through the backend HAL: resolve the name in the
    //    registry, compile a plan, run it.
    let backend = BackendRegistry::global().get(&engine)?;
    println!("\nengine: {} ({})", backend.name(), backend.description());
    let plan = backend.compile(&compiled.module, "forward", &spec)?;
    let run_args = [Value::Tensor(queries), Value::Tensor(stored)];
    let execution = plan.execute(&run_args, &ExecOptions::sequential())?;
    let indices = execution.outputs[1].as_tensor().expect("indices tensor");
    println!("\npredicted classes: {:?}", indices.data());
    assert_eq!(indices.data(), &[1.0, 3.0, 5.0, 7.0]);
    if let Some(trace) = &execution.trace {
        println!("\nrecorded {} trace lines", trace.lines().count());
    }

    // 7. What did it cost?
    println!("\nsimulator statistics:\n{}", execution.stats);
    Ok(())
}
