//! IR tour: show the program at every abstraction level of the
//! progressive lowering (the paper's Fig. 4b → 5a → 5c → 6 sequence).
//!
//! ```text
//! cargo run --example ir_tour
//! ```

use c4cam::arch::ArchSpec;
use c4cam::compiler::pipeline::{C4camPipeline, PipelineOptions, Target};
use c4cam::frontend::{parse_torchscript, FrontendConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
def forward(self, input: Tensor) -> Tensor:
    others = self.weight.transpose(-2, -1)
    matmul = torch.matmul(input, (others))
    values, indices = torch.ops.aten.topk(matmul, 1, largest=False)
    return values, indices
"#;
    // Small shapes keep the printed IR readable.
    let config = FrontendConfig::new()
        .input(vec![2, 128])
        .parameter("weight", vec![10, 128]);
    let lowered = parse_torchscript(source, &config)?;

    let spec = ArchSpec::builder()
        .subarray(32, 32)
        .hierarchy(2, 2, 2)
        .build()?;

    println!("==== TorchScript source =================================");
    println!("{source}");

    let compiled = C4camPipeline::new(spec.clone())
        .with_options(PipelineOptions {
            keep_snapshots: true,
            ..PipelineOptions::default()
        })
        .compile(lowered.module.clone())?;
    for (stage, text) in &compiled.snapshots {
        println!(
            "==== after {stage} {}",
            "=".repeat(44usize.saturating_sub(stage.len()))
        );
        println!("{text}");
    }

    // The host path stops at the partitioned cim form (Fig. 5d).
    let host = C4camPipeline::new(spec)
        .with_options(PipelineOptions {
            keep_snapshots: true,
            target: Target::HostLoops,
            ..PipelineOptions::default()
        })
        .compile(lowered.module)?;
    if let Some((stage, text)) = host.snapshots.last() {
        println!("==== host path, after {stage} (Fig. 5d analogue) ====");
        println!("{text}");
    }
    Ok(())
}
