//! Fig. 7-style accuracy evaluation on the committed mini-MNIST
//! fixture: CAM inference vs. the CPU reference classifier at every
//! supported cell width, for both dataset task shapes.
//!
//! ```text
//! cargo run --release --example dataset_accuracy
//! ```
//!
//! Equivalent CLI invocation:
//!
//! ```text
//! c4cam accuracy --dataset examples/data/mini-mnist --bits 1,2,3,4
//! ```

use c4cam::accuracy::{evaluate, AccuracyReport};
use c4cam::arch::Optimization;
use c4cam::datasets::{Dataset, DatasetTask, DatasetWorkload};
use c4cam::driver::build_arch;
use std::path::Path;

fn main() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/data/mini-mnist");
    let dataset = Dataset::load(&fixture, None).expect("committed fixture");
    let mut rows = Vec::new();
    for task in [DatasetTask::Hdc, DatasetTask::Knn] {
        let workload =
            DatasetWorkload::new(dataset.clone(), task, None).expect("fixture covers all classes");
        for bits in 1..=4u32 {
            let spec = build_arch((32, 32), (4, 4, 8), Optimization::Base, bits)
                .expect("valid evaluation architecture");
            let row = evaluate(&workload, &spec, "tape", 1).expect("experiment runs");
            assert_eq!(
                row.agreement, 1.0,
                "CAM and CPU reference must retrieve identical rows"
            );
            rows.push(row);
        }
    }
    print!("{}", AccuracyReport { rows }.to_table());
}
