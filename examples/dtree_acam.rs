//! Decision-tree inference on an analog CAM — the DT2CAM application
//! class (\[25\] in the paper), expressed on this stack's ACAM support:
//! every root-to-leaf path becomes one stored row of acceptance ranges
//! (don't-care for unconstrained features); classification is a single
//! exact-match search.
//!
//! The second half runs the same application class through the unified
//! [`Experiment`] API instead: [`DtreeWorkload`] compiles the tree as
//! quantized nearest-path retrieval on a multi-bit MCAM, through the
//! full torch→cim→cam pipeline.
//!
//! ```text
//! cargo run --example dtree_acam --release
//! ```

use c4cam::arch::{ArchSpec, CamKind, MatchKind, Metric};
use c4cam::camsim::{CamMachine, SearchSpec};
use c4cam::driver::Experiment;
use c4cam::workloads::{DecisionTree, DtreeWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let features = 12;
    let depth = 5;
    let tree = DecisionTree::random(features, 4, depth, 2024);
    let rows = tree.to_rows();
    println!(
        "decision tree: {} features, depth {depth}, {} leaves -> {} ACAM rows",
        features,
        tree.leaves(),
        rows.len()
    );

    // One subarray holds the whole tree: rows = leaves, cols = features.
    let spec = ArchSpec::builder()
        .subarray(rows.len(), features)
        .hierarchy(1, 1, 1)
        .cam_kind(CamKind::Acam)
        .build()?;
    let mut machine = CamMachine::new(&spec);
    let sub = machine.alloc_chain()?;

    // Program the paths as range cells.
    let cells: Vec<Vec<c4cam::camsim::CamCell>> = rows.iter().map(|r| r.to_cells()).collect();
    machine.write_cells(sub, 0, &cells)?;

    // Classify samples: exactly one row matches each.
    let samples = tree.samples(500, 7);
    let mut agree = 0usize;
    for sample in &samples {
        let result = machine.search(
            sub,
            sample,
            SearchSpec::new(MatchKind::Exact, Metric::Euclidean),
        )?;
        let matches = result.matching_rows();
        assert_eq!(matches.len(), 1, "tree paths partition the space");
        let cam_class = rows[matches[0]].class;
        if cam_class == tree.classify(sample) {
            agree += 1;
        }
    }
    println!(
        "ACAM classification agrees with CPU on {agree}/{} samples",
        samples.len()
    );
    assert_eq!(agree, samples.len());

    let stats = machine.stats();
    println!(
        "\nper-sample search: {:.3} ns, {:.2} pJ  (single ACAM search replaces {} comparisons)",
        stats.latency_ns / samples.len() as f64,
        stats.energy_pj() / samples.len() as f64,
        depth
    );

    // The same application class through the compiled pipeline: the
    // tree's paths become quantized MCAM rows, classification becomes
    // nearest-path retrieval, and the driver reports phase-separated
    // statistics like any other workload.
    let workload = DtreeWorkload::new(features, 4, depth, 64, 2024);
    let spec = ArchSpec::builder()
        .subarray(32, 32)
        .hierarchy(2, 2, 4)
        .cam_kind(CamKind::Mcam)
        .bits_per_cell(2)
        .build()?;
    let out = Experiment::new(&workload).arch(spec).run()?;
    println!(
        "\ncompiled pipeline (2-bit MCAM nearest-path): {} paths, \
         {:.2} ns/query, {:.2} pJ/query, CAM==CPU on {:.0}% of samples",
        workload.tree().leaves(),
        out.latency_per_query_ns(),
        out.energy_per_query_pj(),
        out.accuracy() * 100.0
    );
    assert_eq!(out.accuracy(), 1.0, "nearest-path retrieval must match CPU");
    Ok(())
}
