//! Design-space exploration (paper §IV-C): sweep subarray sizes and
//! optimization configurations for the HDC workload without touching
//! the application code — the capability the paper's abstract
//! advertises ("quickly explore CAM configurations").
//!
//! ```text
//! cargo run --example design_space_exploration --release
//! ```

use c4cam::arch::Optimization;
use c4cam::driver::{paper_arch, run_hdc, HdcConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let queries = 16;
    let configs = [
        ("cam-base", Optimization::Base),
        ("cam-power", Optimization::Power),
        ("cam-density", Optimization::Density),
        ("cam-power+density", Optimization::PowerDensity),
    ];
    println!("HDC design-space exploration (10 classes x 8192 dims)\n");
    println!(
        "{:<18} {:>5} {:>10} {:>6} {:>12} {:>12} {:>12}",
        "configuration", "N", "subarrays", "banks", "lat/query ns", "E/query pJ", "power mW"
    );
    for (name, opt) in configs {
        for n in [16usize, 32, 64, 128, 256] {
            let config = HdcConfig::paper(paper_arch(n, opt, 1), queries);
            let out = run_hdc(&config)?;
            println!(
                "{:<18} {:>5} {:>10} {:>6} {:>12.2} {:>12.2} {:>12.3}",
                name,
                n,
                out.placement.physical_subarrays,
                out.placement.banks,
                out.latency_per_query_ns(),
                out.energy_per_query_pj(),
                out.query_phase.power_mw()
            );
        }
        println!();
    }
    println!("Same application, re-mapped by changing only the architecture spec.");
    Ok(())
}
