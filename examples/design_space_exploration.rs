//! Design-space exploration (paper §IV-C): sweep subarray sizes and
//! optimization configurations for the HDC workload without touching
//! the application code — the capability the paper's abstract
//! advertises ("quickly explore CAM configurations").
//!
//! This is a thin wrapper over [`SweepPlan`]: the same grid is
//! available from the command line as `c4cam sweep`
//! (`--format table|json|csv`, `--pareto` for the frontier).
//!
//! ```text
//! cargo run --example design_space_exploration --release
//! ```

use c4cam::sweep::SweepPlan;
use c4cam::workloads::HdcWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hdc = HdcWorkload::paper(16);
    // The default plan *is* the paper's §IV-C grid: square subarrays
    // 16..256 × all four optimization configurations.
    let outcome = SweepPlan::new(&hdc).run()?;

    println!("HDC design-space exploration (10 classes x 8192 dims)\n");
    println!(
        "{:<18} {:>5} {:>10} {:>6} {:>12} {:>12} {:>12}",
        "configuration", "N", "subarrays", "banks", "lat/query ns", "E/query pJ", "power mW"
    );
    let mut last_opt = None;
    for point in &outcome.points {
        if last_opt.is_some() && last_opt != Some(point.grid.optimization) {
            println!();
        }
        last_opt = Some(point.grid.optimization);
        let name = match point.grid.optimization {
            c4cam::arch::Optimization::Base => "cam-base",
            c4cam::arch::Optimization::Power => "cam-power",
            c4cam::arch::Optimization::Density => "cam-density",
            c4cam::arch::Optimization::PowerDensity => "cam-power+density",
        };
        println!(
            "{:<18} {:>5} {:>10} {:>6} {:>12.2} {:>12.2} {:>12.3}",
            name,
            point.grid.subarray.0,
            point.outcome.placement.physical_subarrays,
            point.outcome.placement.banks,
            point.latency_per_query_ns(),
            point.energy_per_query_pj(),
            point.power_mw()
        );
    }

    println!("\nPareto frontier (latency/energy/area):");
    for point in outcome.pareto_points() {
        println!(
            "  {}  {:.2} ns/query, {:.2} pJ/query, {} cells",
            point.grid,
            point.latency_per_query_ns(),
            point.energy_per_query_pj(),
            point.area_cells()
        );
    }
    println!("\nSame application, re-mapped by changing only the architecture spec.");
    Ok(())
}
