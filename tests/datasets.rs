//! Golden-file tests for the dataset subsystem: the committed
//! mini-MNIST fixture must decode byte-exactly (and stay in sync with
//! its generator), and every malformed-input path must surface the
//! specific `DatasetError` variant.

use c4cam::datasets::{
    encode_idx, mini_mnist, parse_idx, Dataset, DatasetError, DatasetFormat, IDX_IMAGES_FILE,
    IDX_LABELS_FILE,
};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/data/mini-mnist")
}

fn fixture_bytes(file: &str) -> Vec<u8> {
    std::fs::read(fixture_dir().join(file)).expect("committed fixture file")
}

#[test]
fn committed_fixture_is_byte_exactly_the_generator_output() {
    // The fixture was generated once and checked in; if either the
    // files or the generator drift, this fails and `cargo run
    // --example gen_mini_mnist` re-syncs them.
    let (images, labels) = mini_mnist::generate();
    assert_eq!(
        fixture_bytes(IDX_IMAGES_FILE),
        encode_idx(&images),
        "images.idx drifted from the generator"
    );
    assert_eq!(
        fixture_bytes(IDX_LABELS_FILE),
        encode_idx(&labels),
        "labels.idx drifted from the generator"
    );
}

#[test]
fn committed_fixture_decodes_byte_exactly() {
    let images = parse_idx(&fixture_bytes(IDX_IMAGES_FILE)).unwrap();
    let labels = parse_idx(&fixture_bytes(IDX_LABELS_FILE)).unwrap();
    assert_eq!(
        images.shape,
        vec![mini_mnist::SAMPLES, mini_mnist::SIDE, mini_mnist::SIDE]
    );
    assert_eq!(labels.shape, vec![mini_mnist::SAMPLES]);
    let (gen_images, gen_labels) = mini_mnist::generate();
    assert_eq!(images, gen_images);
    assert_eq!(labels, gen_labels);
    // A spot-checked sample: decoding is positionally exact.
    assert_eq!(images.sample(3), gen_images.sample(3));
    assert_eq!(labels.data[3], 3);
}

#[test]
fn fixture_loads_through_the_directory_path() {
    let d = Dataset::load(&fixture_dir(), None).unwrap();
    assert_eq!(d.samples(), mini_mnist::SAMPLES);
    assert_eq!(d.dims(), mini_mnist::SIDE * mini_mnist::SIDE);
    assert_eq!(d.classes(), mini_mnist::CLASSES);
    assert_eq!(d, mini_mnist::dataset());
    // Directory inference picks IDX; an explicit format agrees.
    assert_eq!(
        DatasetFormat::infer(&fixture_dir()),
        Some(DatasetFormat::Idx)
    );
    let explicit = Dataset::load(&fixture_dir(), Some(DatasetFormat::Idx)).unwrap();
    assert_eq!(explicit, d);
}

#[test]
fn corrupted_fixture_bytes_fail_with_the_specific_variant() {
    let good = fixture_bytes(IDX_IMAGES_FILE);

    // Truncated header: cut inside the dimension words.
    let e = parse_idx(&good[..9]).unwrap_err();
    assert!(matches!(e, DatasetError::TruncatedHeader { len: 9 }), "{e}");

    // Bad magic: nonzero first byte.
    let mut bad = good.clone();
    bad[0] = 0x1f;
    let e = parse_idx(&bad).unwrap_err();
    assert!(
        matches!(e, DatasetError::BadMagic { found: [0x1f, 0] }),
        "{e}"
    );

    // Unsupported element type (f32 = 0x0d).
    let mut bad = good.clone();
    bad[2] = 0x0d;
    let e = parse_idx(&bad).unwrap_err();
    assert!(matches!(e, DatasetError::UnsupportedType(0x0d)), "{e}");

    // Truncated payload: drop the last pixel.
    let e = parse_idx(&good[..good.len() - 1]).unwrap_err();
    assert!(
        matches!(
            e,
            DatasetError::Truncated {
                expected: 16384,
                found: 16383
            }
        ),
        "{e}"
    );

    // Trailing bytes after the declared shape.
    let mut bad = good.clone();
    bad.push(0);
    let e = parse_idx(&bad).unwrap_err();
    assert!(matches!(e, DatasetError::TrailingData { .. }), "{e}");
}

#[test]
fn mismatched_image_label_pair_is_rejected_on_load() {
    // A directory whose labels file declares fewer samples.
    let dir = std::env::temp_dir().join("c4cam-datasets-mismatch");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(IDX_IMAGES_FILE), fixture_bytes(IDX_IMAGES_FILE)).unwrap();
    let (_, labels) = mini_mnist::generate();
    let short = c4cam::datasets::IdxFile::new(vec![10], labels.data[..10].to_vec());
    std::fs::write(dir.join(IDX_LABELS_FILE), encode_idx(&short)).unwrap();
    let e = Dataset::load(&dir, None).unwrap_err();
    assert!(
        matches!(
            e,
            DatasetError::Mismatch {
                images: 256,
                labels: 10
            }
        ),
        "{e}"
    );
    // A directory missing the labels file reports the path.
    std::fs::remove_file(dir.join(IDX_LABELS_FILE)).unwrap();
    let e = Dataset::load(&dir, None).unwrap_err();
    assert!(
        matches!(&e, DatasetError::Io { path, .. } if path.contains(IDX_LABELS_FILE)),
        "{e}"
    );
}

#[test]
fn csv_files_load_and_fail_with_typed_errors() {
    let dir = std::env::temp_dir().join("c4cam-datasets-csv");
    std::fs::create_dir_all(&dir).unwrap();

    let ok = dir.join("ok.csv");
    std::fs::write(&ok, "0,1,2,3\n1,4,5,6\n0,1,2,2\n1,5,5,5\n").unwrap();
    let d = Dataset::load(&ok, None).unwrap();
    assert_eq!(d.samples(), 4);
    assert_eq!(d.dims(), 3);
    assert_eq!(d.classes(), 2);
    assert_eq!(d.name(), "ok.csv");
    assert_eq!(d.feature_range(), (1.0, 6.0));

    let ragged = dir.join("ragged.csv");
    std::fs::write(&ragged, "0,1,2,3\n1,4,5\n").unwrap();
    let e = Dataset::load(&ragged, None).unwrap_err();
    assert!(
        matches!(
            e,
            DatasetError::RaggedRow {
                line: 2,
                expected: 4,
                found: 3
            }
        ),
        "{e}"
    );

    let alpha = dir.join("alpha.csv");
    std::fs::write(&alpha, "0,1,2,3\n1,4,x,6\n").unwrap();
    let e = Dataset::load(&alpha, None).unwrap_err();
    assert!(
        matches!(&e, DatasetError::BadNumber { line: 2, text } if text == "x"),
        "{e}"
    );

    let empty = dir.join("empty.csv");
    std::fs::write(&empty, "\n\n").unwrap();
    let e = Dataset::load(&empty, None).unwrap_err();
    assert!(matches!(e, DatasetError::Empty), "{e}");
}

#[test]
fn csv_and_idx_agree_when_carrying_the_same_data() {
    // Render the first 40 fixture samples as CSV and reload: the
    // features and labels must survive the text round trip exactly
    // (bytes are integers, so no precision is lost).
    let d = mini_mnist::dataset();
    let mut text = String::new();
    for i in 0..40 {
        text.push_str(&d.label(i).to_string());
        for v in d.feature_row(i) {
            text.push_str(&format!(",{v}"));
        }
        text.push('\n');
    }
    let csv = Dataset::from_csv("round", &text).unwrap();
    assert_eq!(csv.samples(), 40);
    assert_eq!(csv.dims(), d.dims());
    for i in 0..40 {
        assert_eq!(csv.feature_row(i), d.feature_row(i), "sample {i}");
        assert_eq!(csv.label(i), d.label(i));
    }
}
