//! Integration tests of the `SweepPlan` design-space runner and the
//! `c4cam sweep` subcommand: grid points must reproduce individual
//! [`Experiment`] runs exactly, and the CLI's JSON/CSV reports must
//! parse and carry the same numbers.

use c4cam::cli::{execute, parse_args, Command};
use c4cam::driver::Experiment;
use c4cam::sweep::SweepPlan;
use c4cam::workloads::HdcWorkload;
use c4cam_arch::{ArchSpec, CamKind, Optimization};

fn small_hdc() -> HdcWorkload {
    HdcWorkload {
        classes: 4,
        dims: 128,
        queries: 4,
        flip_rate: 0.1,
        seed: 42,
    }
}

/// Rebuild the architecture a sweep grid point uses (the paper
/// hierarchy; kind follows bits).
fn grid_spec(n: usize, opt: Optimization, bits: u32) -> ArchSpec {
    ArchSpec::builder()
        .subarray(n, n)
        .hierarchy(4, 4, 8)
        .cam_kind(if bits > 1 {
            CamKind::Mcam
        } else {
            CamKind::Tcam
        })
        .bits_per_cell(bits)
        .optimization(opt)
        .build()
        .unwrap()
}

#[test]
fn sweep_points_equal_individual_experiment_runs() {
    let workload = small_hdc();
    let outcome = SweepPlan::new(&workload)
        .square_subarrays([16, 32])
        .optimizations([Optimization::Base, Optimization::Power])
        .bits([1, 2])
        .run()
        .unwrap();
    assert_eq!(outcome.points.len(), 8);
    for point in &outcome.points {
        let spec = grid_spec(
            point.grid.subarray.0,
            point.grid.optimization,
            point.grid.bits_per_cell,
        );
        let individual = Experiment::new(&workload)
            .arch(spec)
            .backend("tape")
            .run()
            .unwrap();
        assert_eq!(
            point.outcome.total, individual.total,
            "stats diverged at {}",
            point.grid
        );
        assert_eq!(point.outcome.predictions, individual.predictions);
        assert_eq!(
            point.outcome.placement.physical_subarrays,
            individual.placement.physical_subarrays
        );
    }
}

#[test]
fn sweep_engines_and_threads_agree() {
    let workload = small_hdc();
    let base = SweepPlan::new(&workload)
        .square_subarrays([16])
        .optimizations([Optimization::Base])
        .run()
        .unwrap();
    let walk = SweepPlan::new(&workload)
        .square_subarrays([16])
        .optimizations([Optimization::Base])
        .backends(["walk"])
        .run()
        .unwrap();
    let threaded = SweepPlan::new(&workload)
        .square_subarrays([16])
        .optimizations([Optimization::Base])
        .threads(4)
        .run()
        .unwrap();
    assert_eq!(base.points[0].outcome.total, walk.points[0].outcome.total);
    assert_eq!(
        base.points[0].outcome.predictions,
        threaded.points[0].outcome.predictions
    );
    assert_eq!(
        base.points[0].outcome.total.search_ops,
        threaded.points[0].outcome.total.search_ops
    );
}

// ---------------------------------------------------------------------
// A minimal JSON parser (no dependencies) so the CLI output is
// genuinely parsed, not just grepped.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(fields) => {
                &fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("missing key '{key}'"))
                    .1
            }
            other => panic!("not an object: {other:?}"),
        }
    }

    fn num(&self) -> f64 {
        match self {
            Json::Num(v) => *v,
            other => panic!("not a number: {other:?}"),
        }
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("not a string: {other:?}"),
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("not an array: {other:?}"),
        }
    }
}

fn parse_json(text: &str) -> Json {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&bytes, &mut pos);
    skip_ws(&bytes, &mut pos);
    assert_eq!(pos, bytes.len(), "trailing input after JSON value");
    value
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) {
    skip_ws(b, pos);
    assert!(*pos < b.len() && b[*pos] == c, "expected '{c}' at {pos}");
    *pos += 1;
}

fn parse_value(b: &[char], pos: &mut usize) -> Json {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Json::Obj(fields);
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos) {
                    Json::Str(s) => s,
                    other => panic!("object key must be a string, got {other:?}"),
                };
                expect(b, pos, ':');
                fields.push((key, parse_value(b, pos)));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Json::Obj(fields);
                    }
                    other => panic!("expected ',' or '}}', got {other:?}"),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Json::Arr(items);
            }
            loop {
                items.push(parse_value(b, pos));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Json::Arr(items);
                    }
                    other => panic!("expected ',' or ']', got {other:?}"),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            while *pos < b.len() && b[*pos] != '"' {
                if b[*pos] == '\\' {
                    *pos += 1;
                }
                s.push(b[*pos]);
                *pos += 1;
            }
            assert!(*pos < b.len(), "unterminated string");
            *pos += 1;
            Json::Str(s)
        }
        Some('t') => {
            assert_eq!(b[*pos..*pos + 4].iter().collect::<String>(), "true");
            *pos += 4;
            Json::Bool(true)
        }
        Some('f') => {
            assert_eq!(b[*pos..*pos + 5].iter().collect::<String>(), "false");
            *pos += 5;
            Json::Bool(false)
        }
        Some('n') => {
            assert_eq!(b[*pos..*pos + 4].iter().collect::<String>(), "null");
            *pos += 4;
            Json::Null
        }
        _ => {
            let start = *pos;
            while *pos < b.len() && "+-0123456789.eE".contains(b[*pos]) {
                *pos += 1;
            }
            let text: String = b[start..*pos].iter().collect();
            Json::Num(
                text.parse()
                    .unwrap_or_else(|_| panic!("bad number '{text}'")),
            )
        }
    }
}

#[test]
fn cli_sweep_json_parses_and_matches_individual_runs() {
    let args: Vec<String> = [
        "sweep",
        "--workload",
        "hdc",
        "--classes",
        "4",
        "--dims",
        "128",
        "--queries",
        "4",
        "--subarrays",
        "16,32",
        "--opts",
        "base,power",
        "--format",
        "json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let command = parse_args(&args).unwrap();
    assert!(matches!(command, Command::Sweep(_)));
    let output = execute(&command).unwrap();
    let json = parse_json(&output);
    assert_eq!(json.get("workload").str(), "hdc");
    let points = json.get("points").arr();
    assert_eq!(points.len(), 4, "2 sizes x 2 opts");

    // The CLI's hdc workload at these overrides keeps the paper's
    // flip-rate/seed; mirror it exactly.
    let workload = small_hdc();
    for point in points {
        let n = point.get("subarray_rows").num() as usize;
        assert_eq!(point.get("subarray_cols").num() as usize, n);
        let opt = Optimization::from_keyword(point.get("optimization").str()).unwrap();
        let bits = point.get("bits_per_cell").num() as u32;
        let individual = Experiment::new(&workload)
            .arch(grid_spec(n, opt, bits))
            .run()
            .unwrap();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
        assert!(
            close(
                point.get("latency_per_query_ns").num(),
                individual.latency_per_query_ns()
            ),
            "latency diverged at {n}x{n}/{opt:?}"
        );
        assert!(close(
            point.get("energy_per_query_pj").num(),
            individual.energy_per_query_pj()
        ));
        assert!(close(point.get("accuracy").num(), individual.accuracy()));
        assert_eq!(
            point.get("physical_subarrays").num() as usize,
            individual.placement.physical_subarrays
        );
        // The embedded query-phase stats are the PR 2 JSON plumbing.
        let stats = point.get("query_phase");
        assert!(close(
            stats.get("latency_ns").num(),
            individual.query_phase.latency_ns
        ));
        assert_eq!(
            stats.get("search_ops").num() as u64,
            individual.query_phase.search_ops
        );
    }
}

#[test]
fn cli_sweep_csv_has_stable_header_and_matching_rows() {
    let args: Vec<String> = [
        "sweep",
        "--workload",
        "hdc",
        "--classes",
        "4",
        "--dims",
        "128",
        "--queries",
        "4",
        "--subarrays",
        "32,64",
        "--opts",
        "base,power",
        "--format",
        "csv",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let output = execute(&parse_args(&args).unwrap()).unwrap();
    let mut lines = output.lines();
    let header = lines.next().unwrap();
    assert_eq!(
        header,
        "workload,subarray_rows,subarray_cols,optimization,technology,bits_per_cell,engine,\
         physical_subarrays,banks,latency_per_query_ns,energy_per_query_pj,power_mw,\
         area_cells,accuracy,pareto,fault_rate"
    );
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 4, "2x2 grid");
    let columns = header.split(',').count();
    for row in &rows {
        assert_eq!(row.split(',').count(), columns, "ragged row: {row}");
        assert!(row.starts_with("hdc,"), "{row}");
    }
    // The numbers agree with an individual run at the same config.
    let workload = small_hdc();
    let first: Vec<&str> = rows[0].split(',').collect();
    let individual = Experiment::new(&workload)
        .arch(grid_spec(32, Optimization::Base, 1))
        .run()
        .unwrap();
    let lat: f64 = first[9].parse().unwrap();
    assert!((lat - individual.latency_per_query_ns()).abs() < 1e-9);
}

#[test]
fn cli_sweep_pareto_filter_returns_a_subset() {
    let base: Vec<String> = [
        "sweep",
        "--workload",
        "hdc",
        "--classes",
        "4",
        "--dims",
        "128",
        "--queries",
        "4",
        "--subarrays",
        "16,32",
        "--opts",
        "base,power",
        "--format",
        "csv",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let all = execute(&parse_args(&base).unwrap()).unwrap();
    let mut pareto_args = base.clone();
    pareto_args.push("--pareto".to_string());
    let pareto = execute(&parse_args(&pareto_args).unwrap()).unwrap();
    let all_rows = all.lines().count() - 1;
    let pareto_rows = pareto.lines().count() - 1;
    assert!(pareto_rows >= 1 && pareto_rows <= all_rows);
    // Every pareto row appears among the full rows, flagged true.
    for row in pareto.lines().skip(1) {
        assert!(row.ends_with(",true,0"), "{row}");
        assert!(all.contains(row), "pareto row missing from full output");
    }
}
