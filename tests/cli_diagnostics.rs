//! Process-level regression tests for the `c4cam` binary's diagnostic
//! contract: reports on stdout, errors on stderr, exit code 2 for
//! usage errors (rejected at parse time) and 1 for execution failures.

use std::process::{Command, Output};

fn c4cam(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_c4cam"))
        .args(args)
        .output()
        .expect("spawn c4cam")
}

fn fixture_path() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data/mini-mnist").to_string()
}

#[test]
fn usage_errors_exit_2_with_stderr_only() {
    for args in [
        vec!["frobnicate"],
        vec![],
        vec!["run", "--arch", "a", "--source", "s", "--threads", "0"],
        vec!["sweep", "--bits", "9"],
        vec!["accuracy"],
        vec!["accuracy", "--dataset", "d", "--fault-rate", "1.5"],
        vec!["accuracy", "--dataset", "d", "--engine", "nonsense"],
        vec!["sweep", "--spare-rows", "2"],
    ] {
        let out = c4cam(&args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(out.stdout.is_empty(), "{args:?} wrote to stdout");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.starts_with("error: "), "{args:?}: {stderr}");
    }
}

#[test]
fn execution_failures_exit_1_with_stderr_only() {
    // Valid flags, but the dataset does not exist: the parse succeeds
    // and the execution fails.
    for args in [
        vec!["accuracy", "--dataset", "/nonexistent/dataset"],
        vec!["run", "--dataset", "/nonexistent/dataset"],
        vec![
            "run",
            "--arch",
            "/nonexistent/spec.txt",
            "--source",
            "/nonexistent/kernel.py",
        ],
    ] {
        let out = c4cam(&args);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(out.stdout.is_empty(), "{args:?} wrote to stdout");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.starts_with("error: "), "{args:?}: {stderr}");
    }
}

#[test]
fn successful_runs_exit_0_with_stdout_only() {
    let dataset = fixture_path();
    let out = c4cam(&[
        "accuracy",
        "--dataset",
        &dataset,
        "--limit",
        "4",
        "--bits",
        "1",
        "--format",
        "csv",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stderr.is_empty(), "clean runs keep stderr empty");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("task,dataset,"), "{stdout}");
    // Help is a successful command, not an error.
    let help = c4cam(&["help"]);
    assert_eq!(help.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&help.stdout).contains("usage:"));
}

#[test]
fn fault_injection_smoke_run_parses_and_reports() {
    // The CI smoke command: a seeded fault-rate accuracy run whose CSV
    // must parse with the appended fault columns populated.
    let dataset = fixture_path();
    let out = c4cam(&[
        "accuracy",
        "--dataset",
        &dataset,
        "--limit",
        "8",
        "--bits",
        "2",
        "--fault-rate",
        "0.01",
        "--fault-seed",
        "7",
        "--format",
        "csv",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    let header = lines.next().expect("header row");
    assert!(
        header.ends_with("fault_rate,fault_seed,fault_cells,fault_transients,rows_remapped"),
        "{header}"
    );
    let row: Vec<&str> = lines.next().expect("data row").split(',').collect();
    assert_eq!(row.len(), header.split(',').count(), "{stdout}");
    assert_eq!(row[14], "0.01", "{stdout}");
    assert_eq!(row[15], "7", "{stdout}");
    assert!(row[16].parse::<u64>().unwrap() > 0, "fault sites: {stdout}");
    // The seeded run is byte-reproducible.
    let again = c4cam(&[
        "accuracy",
        "--dataset",
        &dataset,
        "--limit",
        "8",
        "--bits",
        "2",
        "--fault-rate",
        "0.01",
        "--fault-seed",
        "7",
        "--format",
        "csv",
    ]);
    assert_eq!(out.stdout, again.stdout);
}
