//! End-to-end tests for the `C4CAM_KERNEL_TIER` environment override.
//!
//! The override is resolved once per process (a `OnceLock` latches the
//! first lookup), so each scenario runs in a *child* process: the
//! driver tests re-execute this test binary with `--exact --ignored`
//! pointing at an `#[ignore]`d scenario and the env var under test set
//! before the first search.

use c4cam::arch::{MatchKind, Metric};
use c4cam::camsim::{KernelTier, RowSelection, SearchScratch, Subarray};
use std::process::Command;

const ENV: &str = "C4CAM_KERNEL_TIER";

fn demo_subarray() -> (Subarray, Vec<f32>) {
    let mut s = Subarray::new(8, 70);
    let rows: Vec<Vec<f32>> = (0..6)
        .map(|r| (0..70).map(|c| ((r + c) % 2) as f32).collect())
        .collect();
    s.write_rows(0, &rows, 1).unwrap();
    let q: Vec<f32> = (0..70).map(|c| (c % 2) as f32).collect();
    (s, q)
}

fn search_all(s: &mut Subarray, q: &[f32]) -> Result<c4cam::camsim::SearchResult, String> {
    s.search(
        q,
        MatchKind::Best,
        Metric::Hamming,
        RowSelection::All,
        2.0,
        None,
        &mut SearchScratch::default(),
    )
    .cloned()
}

/// Child scenario: the env var holds a tier this host supports; the
/// search must succeed and stay bit-identical to the oracle.
#[test]
#[ignore = "driver-spawned child scenario"]
fn scenario_supported_tier_is_bit_identical() {
    let (mut s, q) = demo_subarray();
    let naive = s
        .search_naive(
            &q,
            MatchKind::Best,
            Metric::Hamming,
            RowSelection::All,
            2.0,
            None,
        )
        .unwrap()
        .clone();
    let packed = search_all(&mut s, &q).expect("env-selected tier must search");
    assert_eq!(naive.rows, packed.rows);
    assert_eq!(naive.matched, packed.matched);
    for (a, b) in naive.distances.iter().zip(&packed.distances) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Child scenario: the env var holds garbage; the search must fail
/// with the structured unknown-keyword error, not panic or fall back.
#[test]
#[ignore = "driver-spawned child scenario"]
fn scenario_unknown_keyword_is_rejected() {
    let (mut s, q) = demo_subarray();
    let err = search_all(&mut s, &q).expect_err("unknown tier keyword must fail");
    assert!(err.contains(ENV), "error names the env var: {err}");
    assert!(
        err.contains("unknown kernel tier 'turbo'"),
        "error names the bad keyword: {err}"
    );
}

/// Child scenario: the env var asks for a tier above the host's
/// capability; the search must fail with the unsupported-host error.
#[test]
#[ignore = "driver-spawned child scenario"]
fn scenario_unsupported_tier_is_rejected() {
    let (mut s, q) = demo_subarray();
    let err = search_all(&mut s, &q).expect_err("unsupported tier must fail");
    assert!(err.contains(ENV), "error names the env var: {err}");
    assert!(
        err.contains("not supported by this host"),
        "error explains the rejection: {err}"
    );
}

fn run_scenario(name: &str, tier: &str) {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args(["--exact", name, "--ignored"])
        .env(ENV, tier)
        .output()
        .expect("spawn child scenario");
    assert!(
        out.status.success(),
        "scenario {name} with {ENV}={tier} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn env_override_applies_every_supported_tier() {
    let best = KernelTier::detect();
    for tier in [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Avx512] {
        if tier <= best {
            run_scenario("scenario_supported_tier_is_bit_identical", tier.keyword());
        }
    }
}

#[test]
fn env_override_rejects_unknown_keywords() {
    run_scenario("scenario_unknown_keyword_is_rejected", "turbo");
}

#[test]
fn env_override_rejects_tiers_above_the_host() {
    // Only demonstrable on hosts that cannot run the top tier; the
    // pure `resolve_tier` unit tests cover the logic everywhere else.
    if KernelTier::detect() < KernelTier::Avx512 {
        run_scenario("scenario_unsupported_tier_is_rejected", "avx512");
    }
}
