//! Service-mode integration tests: dynamic batching bit-identity
//! against sequential per-request execution for every registered
//! backend, bounded-queue backpressure, compiled-plan cache behaviour
//! (second request skips Parse/Place/Compile), and the TCP server +
//! load generator end to end.

use c4cam::service::{reference_pool_classes, DatasetPlanSource};
use c4cam_datasets::mini_mnist;
use c4cam_hal::BackendRegistry;
use c4cam_server::json::Json;
use c4cam_server::protocol::PlanKey;
use c4cam_server::{
    loadgen, serve, Admission, AdmissionConfig, AdmitError, BatchSlice, LoadMode, LoadgenConfig,
    PlanCache, PlanSource, ServeConfig, ServeReport,
};
use c4cam_telemetry::{CollectingRecorder, Event, Telemetry};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

fn key(backend: &str) -> PlanKey {
    PlanKey {
        task: "hdc".to_string(),
        bits: 2,
        subarray: 32,
        backend: backend.to_string(),
    }
}

fn source_with(backend: &str, max_batch: usize, telemetry: Telemetry) -> DatasetPlanSource {
    DatasetPlanSource::new(mini_mnist::dataset(), key(backend), max_batch, 1, telemetry)
}

/// Submit every request, then drain and run the dispatcher inline:
/// deterministic coalescing regardless of wall-clock timing.
fn run_coalesced(
    admission: &Admission,
    source: &DatasetPlanSource,
    backend: &str,
    requests: &[Vec<usize>],
) -> Vec<BatchSlice> {
    let k = key(backend);
    let runner = source.compile(&k).unwrap();
    let tickets: Vec<_> = requests
        .iter()
        .map(|rows| {
            admission
                .submit(&k, Arc::clone(&runner), rows.clone())
                .unwrap()
        })
        .collect();
    admission.drain();
    admission.dispatch_loop(&Telemetry::disabled());
    tickets
        .into_iter()
        .map(|t| t.recv().expect("dispatcher answers every ticket").unwrap())
        .collect()
}

#[test]
fn coalesced_batches_match_sequential_per_request_for_every_backend() {
    // Interleavings with mixed request sizes, crossing batch
    // boundaries at both capacities below.
    let patterns: &[&[&[usize]]] = &[
        &[&[0], &[1, 2], &[3, 4, 5], &[6], &[7, 8]],
        &[&[7, 8], &[6], &[3, 4, 5], &[0], &[1, 2]],
        &[&[10, 11, 12, 13], &[14], &[15, 16], &[17, 18, 19]],
    ];
    for backend in BackendRegistry::global().names() {
        for capacity in [4, 8] {
            let source = source_with(backend, capacity, Telemetry::disabled());
            let runner = source.compile(&key(backend)).unwrap();
            for pattern in patterns {
                let requests: Vec<Vec<usize>> = pattern.iter().map(|r| r.to_vec()).collect();
                // Sequential reference: one device run per request.
                let sequential: Vec<_> = requests
                    .iter()
                    .map(|rows| runner.run_rows(rows).unwrap())
                    .collect();
                let admission = Admission::new(AdmissionConfig {
                    max_linger: Duration::from_secs(1),
                    queue_depth: 64,
                });
                let slices = run_coalesced(&admission, &source, backend, &requests);
                for (i, (slice, seq)) in slices.iter().zip(&sequential).enumerate() {
                    assert_eq!(
                        slice.predictions, seq.predictions,
                        "{backend} capacity {capacity} request {i}: predictions diverged"
                    );
                    assert_eq!(
                        slice.classes, seq.classes,
                        "{backend} capacity {capacity} request {i}: classes diverged"
                    );
                }
                // The controller actually coalesced: fewer batches
                // than requests whenever two requests fit together.
                let (batches, rows, max_requests) = admission.batch_stats();
                let total_rows: usize = requests.iter().map(Vec::len).sum();
                assert_eq!(rows as usize, total_rows);
                assert!(batches < requests.len() as u64, "{backend}: no coalescing");
                assert!(max_requests >= 2, "{backend}: no batch held two requests");
            }
        }
    }
}

#[test]
fn bounded_queue_rejects_structurally_instead_of_hanging() {
    let source = source_with("tape", 4, Telemetry::disabled());
    let k = key("tape");
    let runner = source.compile(&k).unwrap();
    let admission = Admission::new(AdmissionConfig {
        max_linger: Duration::from_secs(1),
        queue_depth: 2,
    });
    let t1 = admission.submit(&k, Arc::clone(&runner), vec![0]).unwrap();
    let t2 = admission.submit(&k, Arc::clone(&runner), vec![1]).unwrap();
    // Third submission: immediate structured rejection, no blocking.
    match admission.submit(&k, Arc::clone(&runner), vec![2]) {
        Err(AdmitError::Overloaded { depth }) => assert_eq!(depth, 2),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Oversize requests are rejected before touching the queue.
    match admission.submit(&k, Arc::clone(&runner), vec![0, 1, 2, 3, 4]) {
        Err(AdmitError::TooLarge { rows, capacity }) => {
            assert_eq!((rows, capacity), (5, 4));
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
    // The admitted requests still complete.
    admission.drain();
    admission.dispatch_loop(&Telemetry::disabled());
    assert!(t1.recv().unwrap().is_ok());
    assert!(t2.recv().unwrap().is_ok());
    // And post-drain submissions report the shutdown.
    match admission.submit(&k, runner, vec![0]) {
        Err(AdmitError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

#[test]
fn cached_plans_skip_parse_place_compile_on_later_requests() {
    let recorder = Arc::new(CollectingRecorder::new());
    let telemetry = Telemetry::new(Arc::clone(&recorder) as Arc<dyn c4cam_telemetry::Recorder>);
    let source = source_with("tape", 4, telemetry.clone());
    let cache = PlanCache::new(4);
    let k = key("tape");

    let span_count = |name: &str| {
        recorder
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Span(s) if s.name == name))
            .count()
    };

    let (runner, hit) = cache.get_or_compile(&k, &source).unwrap();
    assert!(!hit);
    runner.run_rows(&[0, 1]).unwrap();
    assert_eq!(span_count("Parse"), 1);
    assert_eq!(span_count("Place"), 1);
    assert_eq!(span_count("Compile"), 1);
    assert_eq!(span_count("Execute"), 1);

    // Second and third requests for the same key: execution only.
    for round in 2..=3 {
        let (runner, hit) = cache.get_or_compile(&k, &source).unwrap();
        assert!(hit, "round {round} should be a cache hit");
        runner.run_rows(&[2, 3]).unwrap();
        assert_eq!(span_count("Parse"), 1, "round {round} re-parsed");
        assert_eq!(span_count("Place"), 1, "round {round} re-placed");
        assert_eq!(span_count("Compile"), 1, "round {round} re-compiled");
        assert_eq!(span_count("Execute"), round);
    }

    // A different key pays its own pipeline exactly once.
    let (runner, hit) = cache.get_or_compile(&key("simd"), &source).unwrap();
    assert!(!hit);
    runner.run_rows(&[0]).unwrap();
    assert_eq!(span_count("Parse"), 2);
    assert_eq!(span_count("Compile"), 2);
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        Json::parse(response.trim()).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
    }
}

fn start_server(max_batch: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<ServeReport>) {
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            max_linger: Duration::from_millis(2),
            queue_depth: 256,
        },
        cache_capacity: 4,
        ..ServeConfig::default()
    };
    let source = source_with("tape", max_batch, Telemetry::disabled());
    let (tx, rx) = channel();
    let handle = std::thread::spawn(move || {
        serve(&cfg, Arc::new(source), |addr| tx.send(addr).unwrap()).unwrap()
    });
    (
        rx.recv_timeout(Duration::from_secs(60))
            .expect("server ready"),
        handle,
    )
}

#[test]
fn tcp_server_classifies_verifies_and_shuts_down_gracefully() {
    let (addr, handle) = start_server(4);
    let expected = reference_pool_classes(&mini_mnist::dataset(), &key("tape")).unwrap();
    let mut client = Client::connect(addr);

    // The default plan was precompiled at startup: first classify is
    // already a cache hit.
    let v = client.roundtrip(r#"{"id":1,"cmd":"classify","rows":[0,1,2]}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(v.get("cache_hit").and_then(Json::as_bool), Some(true));
    let classes: Vec<usize> = v
        .get("classes")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|c| c.as_u64().unwrap() as usize)
        .collect();
    assert_eq!(classes, expected[0..3], "CAM classes diverged from CPU");

    // info reports the pool and capacity the client needs.
    let info = client.roundtrip(r#"{"cmd":"info"}"#);
    assert_eq!(info.get("capacity").and_then(Json::as_u64), Some(4));
    assert_eq!(
        info.get("pool_size").and_then(Json::as_u64),
        Some(expected.len() as u64)
    );

    // Structured errors: malformed line, out-of-pool row, oversize
    // request — all answered, never a hang or a dropped connection.
    let bad = client.roundtrip("this is not json");
    assert_eq!(bad.get("error").and_then(Json::as_str), Some("bad_request"));
    let oob = client.roundtrip(r#"{"id":7,"cmd":"classify","rows":[9999]}"#);
    assert_eq!(oob.get("error").and_then(Json::as_str), Some("bad_request"));
    let big = client.roundtrip(r#"{"id":8,"cmd":"classify","rows":[0,1,2,3,4]}"#);
    assert_eq!(big.get("error").and_then(Json::as_str), Some("too_large"));

    // A per-request backend override compiles (miss) then caches.
    let miss = client.roundtrip(r#"{"id":9,"cmd":"classify","rows":[5],"backend":"simd"}"#);
    assert_eq!(miss.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(miss.get("cache_hit").and_then(Json::as_bool), Some(false));
    let hit = client.roundtrip(r#"{"id":10,"cmd":"classify","rows":[5],"backend":"simd"}"#);
    assert_eq!(hit.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(
        hit.get("classes").and_then(Json::as_arr).unwrap()[0].as_u64(),
        Some(expected[5] as u64)
    );

    let stats = client.roundtrip(r#"{"cmd":"stats"}"#);
    assert!(stats.get("requests").and_then(Json::as_u64).unwrap() >= 3);
    assert!(stats.get("batches").and_then(Json::as_u64).unwrap() >= 1);

    // Graceful shutdown by admin request: the server drains and the
    // serve() call returns its report with exit status for the CLI.
    let bye = client.roundtrip(r#"{"cmd":"shutdown"}"#);
    assert_eq!(bye.get("shutting_down").and_then(Json::as_bool), Some(true));
    let report = handle.join().unwrap();
    assert_eq!(report.requests, 3, "{report:?}");
    // Default 'tape' plan + simd override = exactly two compiles.
    assert_eq!(report.cache_misses, 2, "{report:?}");
    assert!(report.cache_hits >= 2, "{report:?}");
    assert!(report.rejected >= 3, "{report:?}");
}

#[test]
fn loadgen_sustains_throughput_with_exact_agreement() {
    let (addr, handle) = start_server(8);
    let expected = reference_pool_classes(&mini_mnist::dataset(), &key("tape")).unwrap();
    let pool_size = expected.len();
    let report = loadgen(&LoadgenConfig {
        addr: addr.to_string(),
        requests: 48,
        concurrency: 4,
        rows_per_request: 1,
        mode: LoadMode::Closed,
        pool_size,
        expected_classes: Some(expected),
        shutdown_after: true,
    })
    .unwrap();
    assert_eq!(report.ok, 48, "{}", report.summary());
    assert_eq!(report.errors, 0, "{}", report.summary());
    assert_eq!(report.overloaded, 0, "{}", report.summary());
    assert!(report.qps > 0.0, "{}", report.summary());
    assert_eq!(report.agreement, Some(1.0), "{}", report.summary());
    assert!(report.p50_us <= report.p90_us && report.p90_us <= report.p99_us);
    assert!(report.cache_hit_rate > 0.99, "{}", report.summary());
    let server = handle.join().unwrap();
    assert_eq!(server.requests, 48, "{server:?}");
    assert_eq!(server.batched_rows, 48, "{server:?}");
}

#[test]
fn open_loop_loadgen_reports_latency_under_scheduled_arrivals() {
    let (addr, handle) = start_server(8);
    let info_pool = c4cam_server::probe_info(&addr.to_string()).unwrap();
    assert_eq!(info_pool.1, 8, "capacity from info");
    let report = loadgen(&LoadgenConfig {
        addr: addr.to_string(),
        requests: 16,
        concurrency: 2,
        rows_per_request: 2,
        mode: LoadMode::Open { rate: 400.0 },
        pool_size: info_pool.0,
        expected_classes: None,
        shutdown_after: true,
    })
    .unwrap();
    assert_eq!(report.ok, 16, "{}", report.summary());
    assert_eq!(report.agreement, None);
    assert!(report.qps > 0.0);
    // 16 requests at 400/s need at least ~37 ms of wall clock.
    assert!(report.wall_s >= 0.035, "{}", report.summary());
    let server = handle.join().unwrap();
    assert_eq!(server.requests, 16);
    assert_eq!(server.batched_rows, 32, "2 rows per request");
}
