//! Golden telemetry tests: the Chrome trace-event export for a
//! deterministic mini-MNIST HDC run (manual clock, sequential tape
//! backend) is pinned byte-exact against a committed fixture, and the
//! emitted JSON is validated with a dependency-free parser.
//!
//! Regenerate the fixture after an intentional span-taxonomy or
//! exporter-format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test telemetry_golden
//! ```

use c4cam::arch::{ArchSpec, Optimization};
use c4cam::datasets::{Dataset, DatasetTask, DatasetWorkload};
use c4cam::driver::{build_arch, Experiment};
use c4cam::telemetry::clock::ManualClock;
use c4cam::telemetry::export::{chrome_trace, json_lines};
use c4cam::telemetry::{cat, CollectingRecorder, Event, Phase, Telemetry};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/mini_mnist_hdc_telemetry.json")
}

fn mini_mnist_hdc() -> DatasetWorkload {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/data/mini-mnist");
    let dataset = Dataset::load(&fixture, None).expect("committed fixture");
    DatasetWorkload::new(dataset, DatasetTask::Hdc, Some(2)).expect("fixture covers all classes")
}

fn spec() -> ArchSpec {
    build_arch((32, 32), (2, 2, 4), Optimization::Base, 1).unwrap()
}

/// Run the experiment on a manual clock: every `now_ns` call advances
/// time by exactly 1 µs, so the recorded events — and therefore the
/// exported trace — are bit-identical on every run.
fn record_events() -> Vec<Event> {
    let recorder = Arc::new(CollectingRecorder::with_clock(Box::new(ManualClock::new(
        1_000,
    ))));
    let telemetry = Telemetry::new(Arc::clone(&recorder) as _);
    Experiment::new(&mini_mnist_hdc())
        .arch(spec())
        .backend("tape")
        .threads(1)
        .telemetry(telemetry)
        .run()
        .unwrap();
    recorder.events()
}

fn read_golden() -> String {
    std::fs::read_to_string(golden_path())
        .expect("committed golden telemetry trace (regenerate with UPDATE_GOLDEN=1)")
}

#[test]
fn chrome_trace_export_is_byte_exact_against_the_committed_golden() {
    let text = chrome_trace(&record_events());
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path(), &text).unwrap();
    }
    let golden = read_golden();
    assert_eq!(
        text, golden,
        "telemetry export drifted from tests/golden/mini_mnist_hdc_telemetry.json; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn recorded_events_cover_the_full_span_taxonomy() {
    let events = record_events();
    let spans: Vec<_> = events.iter().filter_map(Event::as_span).collect();
    // All four pipeline phases, in chronological order on the main lane.
    let phase_names: Vec<&str> = spans
        .iter()
        .filter(|s| s.cat == cat::PHASE)
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(phase_names, Phase::ALL.map(|p| p.name()).to_vec());
    let phase_starts: Vec<u64> = spans
        .iter()
        .filter(|s| s.cat == cat::PHASE)
        .map(|s| s.start_ns)
        .collect();
    assert!(
        phase_starts.windows(2).all(|w| w[0] < w[1]),
        "phases out of order: {phase_starts:?}"
    );
    // The backend span and sampled per-op children, with simulator
    // attribution on the search ops.
    assert!(spans
        .iter()
        .any(|s| s.cat == cat::BACKEND && s.name == "backend:tape"));
    let searches: Vec<_> = spans
        .iter()
        .filter(|s| s.cat == cat::OP && s.name == "cam.search")
        .collect();
    assert!(!searches.is_empty(), "no per-op search spans");
    for s in &searches {
        let arg = |key: &str| -> f64 {
            s.args
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| match v {
                    c4cam::telemetry::ArgValue::Int(i) => *i as f64,
                    c4cam::telemetry::ArgValue::Num(n) => *n,
                    c4cam::telemetry::ArgValue::Str(_) => panic!("numeric arg expected"),
                })
                .unwrap_or_else(|| panic!("missing arg {key}"))
        };
        // Latency can be deferred to a parallel-scope pop (`max` of
        // the lane latencies), so only energy and the searched-word
        // count are attributable per op unconditionally.
        assert!(arg("sim_latency_ns") >= 0.0);
        assert!(arg("sim_energy_fj") > 0.0);
        assert!(arg("searched_words") > 0.0);
    }
    // The post-run counters carry the simulator totals.
    let counters: Vec<&'static str> = events
        .iter()
        .filter_map(|e| match e {
            Event::Counter { name, .. } => Some(*name),
            _ => None,
        })
        .collect();
    for name in [
        "sim.latency_ns",
        "sim.energy_fj",
        "sim.search_ops",
        "sim.searched_words",
    ] {
        assert!(counters.contains(&name), "missing counter {name}");
    }
}

#[test]
fn json_lines_export_matches_the_event_stream() {
    let events = record_events();
    let text = json_lines(&events);
    assert_eq!(text.lines().count(), events.len());
    for line in text.lines() {
        parse_json(line);
    }
    assert!(text.lines().any(|l| l.contains("\"name\":\"Execute\"")));
}

#[test]
fn golden_chrome_trace_is_valid_perfetto_loadable_json() {
    let golden = read_golden();
    let root = parse_json(&golden);
    let Json::Obj(fields) = &root else {
        panic!("trace root must be an object")
    };
    assert_eq!(
        fields
            .iter()
            .find(|(k, _)| k == "displayTimeUnit")
            .map(|(_, v)| v),
        Some(&Json::Str("ms".to_string()))
    );
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents array");
    let Json::Arr(events) = events else {
        panic!("traceEvents must be an array")
    };
    assert!(!events.is_empty());
    let mut phase_names = Vec::new();
    for event in events {
        let Json::Obj(e) = event else {
            panic!("trace event must be an object")
        };
        let field = |key: &str| e.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let ph = match field("ph") {
            Some(Json::Str(s)) => s.as_str(),
            other => panic!("event without ph: {other:?}"),
        };
        assert!(matches!(ph, "X" | "C" | "i"), "unexpected ph {ph}");
        assert!(
            matches!(field("ts"), Some(Json::Num(_))),
            "ts must be a number"
        );
        assert_eq!(field("pid"), Some(&Json::Num(1.0)));
        if ph == "X" {
            assert!(matches!(field("dur"), Some(Json::Num(_))));
            if field("cat") == Some(&Json::Str("phase".to_string())) {
                if let Some(Json::Str(name)) = field("name") {
                    phase_names.push(name.clone());
                }
            }
        }
    }
    assert_eq!(
        phase_names,
        vec!["Parse", "Place", "Compile", "Execute"],
        "golden trace must carry all four pipeline phases"
    );
}

// ---------------------------------------------------------------------
// Dependency-free JSON validation (mirrors tests/sweep.rs).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn parse_json(text: &str) -> Json {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&bytes, &mut pos);
    skip_ws(&bytes, &mut pos);
    assert_eq!(pos, bytes.len(), "trailing input after JSON value");
    value
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) {
    skip_ws(b, pos);
    assert!(*pos < b.len() && b[*pos] == c, "expected '{c}' at {pos}");
    *pos += 1;
}

fn parse_value(b: &[char], pos: &mut usize) -> Json {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Json::Obj(fields);
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos) {
                    Json::Str(s) => s,
                    other => panic!("object key must be a string, got {other:?}"),
                };
                expect(b, pos, ':');
                fields.push((key, parse_value(b, pos)));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Json::Obj(fields);
                    }
                    other => panic!("expected ',' or '}}', got {other:?}"),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Json::Arr(items);
            }
            loop {
                items.push(parse_value(b, pos));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Json::Arr(items);
                    }
                    other => panic!("expected ',' or ']', got {other:?}"),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            while *pos < b.len() && b[*pos] != '"' {
                if b[*pos] == '\\' {
                    *pos += 1;
                }
                s.push(b[*pos]);
                *pos += 1;
            }
            assert!(*pos < b.len(), "unterminated string");
            *pos += 1;
            Json::Str(s)
        }
        Some('t') => {
            assert_eq!(b[*pos..*pos + 4].iter().collect::<String>(), "true");
            *pos += 4;
            Json::Bool(true)
        }
        Some('f') => {
            assert_eq!(b[*pos..*pos + 5].iter().collect::<String>(), "false");
            *pos += 5;
            Json::Bool(false)
        }
        Some('n') => {
            assert_eq!(b[*pos..*pos + 4].iter().collect::<String>(), "null");
            *pos += 4;
            Json::Null
        }
        _ => {
            let start = *pos;
            while *pos < b.len() && "+-0123456789.eE".contains(b[*pos]) {
                *pos += 1;
            }
            assert!(*pos > start, "unexpected character at {pos}");
            Json::Num(
                b[start..*pos]
                    .iter()
                    .collect::<String>()
                    .parse()
                    .expect("number"),
            )
        }
    }
}
