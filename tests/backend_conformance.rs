//! Cross-backend differential conformance suite: every backend
//! registered in the [`BackendRegistry`] must reproduce the walker
//! oracle's predictions bit-exactly over the full workload ×
//! bits-per-cell grid, and must honor its declared stats contract.
//!
//! The suite iterates the registry, so adding a backend extends the
//! coverage without editing a single test here — a new backend either
//! conforms or these tests name it in the failure message.

use c4cam::arch::Optimization;
use c4cam::driver::{build_arch, Experiment, RunOutcome};
use c4cam::hal::{BackendRegistry, FaultConfig, StatsContract};
use c4cam::telemetry::clock::ManualClock;
use c4cam::telemetry::{cat, CollectingRecorder, Event, Telemetry};
use c4cam::workloads::{DtreeWorkload, HdcWorkload, KnnWorkload, Workload};
use std::sync::Arc;

/// The conformance workloads: one per compiled kernel family (HDC
/// nearest-prototype, kNN nearest-sample, decision-tree path match),
/// sized to exercise multi-subarray placements without being slow.
fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(HdcWorkload {
            classes: 5,
            dims: 96,
            queries: 6,
            flip_rate: 0.1,
            seed: 7,
        }),
        Box::new(KnnWorkload {
            patterns: 40,
            dims: 64,
            queries: 5,
            k: 3,
            noise: 0.2,
            seed: 11,
        }),
        Box::new(DtreeWorkload::new(10, 4, 4, 6, 2024)),
    ]
}

const BITS: [u32; 3] = [1, 2, 4];

fn run(workload: &dyn Workload, backend: &str, bits: u32) -> RunOutcome {
    let spec = build_arch((32, 32), (2, 2, 4), Optimization::Base, bits).unwrap();
    Experiment::new(workload)
        .arch(spec)
        .backend(backend)
        .run()
        .unwrap()
}

#[test]
fn every_backend_matches_the_walk_oracle_over_the_grid() {
    let registry = BackendRegistry::global();
    for workload in workloads() {
        for bits in BITS {
            let oracle = run(workload.as_ref(), "walk", bits);
            for backend in registry.all() {
                let name = backend.name();
                let outcome = run(workload.as_ref(), name, bits);
                assert_eq!(
                    outcome.predictions,
                    oracle.predictions,
                    "{name} diverged from walk on {}/{bits}b",
                    workload.name()
                );
                assert_eq!(outcome.labels, oracle.labels, "{name}");
                assert_eq!(outcome.queries, oracle.queries, "{name}");
                match backend.capabilities().stats {
                    StatsContract::DeviceExact => {
                        assert_eq!(
                            outcome.total,
                            oracle.total,
                            "{name} total stats diverged on {}/{bits}b",
                            workload.name()
                        );
                        assert_eq!(outcome.setup, oracle.setup, "{name}");
                        assert_eq!(outcome.query_phase, oracle.query_phase, "{name}");
                    }
                    StatsContract::Estimated => {
                        // Estimated backends still owe plausible,
                        // self-consistent numbers.
                        assert!(
                            outcome.total.latency_ns >= outcome.query_phase.latency_ns,
                            "{name}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn stats_contract_invariants_hold_for_every_backend() {
    // Regardless of contract flavor, a run that stored rows and
    // searched them reports nonzero work and positive latency/energy.
    let registry = BackendRegistry::global();
    for workload in workloads() {
        for backend in registry.all() {
            let name = backend.name();
            let outcome = run(workload.as_ref(), name, 1);
            assert!(outcome.total.search_ops > 0, "{name}: no searches");
            assert!(
                outcome.total.searched_words > 0,
                "{name}: zero searched_words"
            );
            assert!(outcome.total.write_ops > 0, "{name}: no writes");
            assert!(outcome.total.latency_ns > 0.0, "{name}: zero latency");
            assert!(outcome.total.total_energy_fj() > 0.0, "{name}: zero energy");
            assert!(
                outcome.query_phase.latency_ns > 0.0,
                "{name}: empty query phase"
            );
        }
    }
}

#[test]
fn latency_is_monotone_in_the_query_count_for_every_backend() {
    // More queries = strictly more query-phase work, whatever the cost
    // model: the stats contract requires latency monotonicity.
    let registry = BackendRegistry::global();
    let mk = |queries| HdcWorkload {
        classes: 5,
        dims: 96,
        queries,
        flip_rate: 0.1,
        seed: 7,
    };
    let (few, many) = (mk(2), mk(8));
    for backend in registry.all() {
        let name = backend.name();
        let small = run(&few, name, 1);
        let large = run(&many, name, 1);
        assert!(
            large.query_phase.latency_ns > small.query_phase.latency_ns,
            "{name}: latency not monotone in queries ({} vs {})",
            small.query_phase.latency_ns,
            large.query_phase.latency_ns
        );
        assert!(
            large.total.search_ops > small.total.search_ops,
            "{name}: search_ops not monotone"
        );
    }
}

#[test]
fn telemetry_recording_never_perturbs_outputs_or_stats() {
    // The recorder is an observer: with a live recorder attached,
    // every backend must reproduce the telemetry-off run bit-exactly
    // — outputs, labels, and all three stats blocks — while actually
    // recording the Execute phase and its backend span.
    let workload = HdcWorkload {
        classes: 5,
        dims: 96,
        queries: 6,
        flip_rate: 0.1,
        seed: 7,
    };
    for backend in BackendRegistry::global().all() {
        let name = backend.name();
        let plain = run(&workload, name, 2);
        let recorder = Arc::new(CollectingRecorder::with_clock(Box::new(ManualClock::new(
            1_000,
        ))));
        let spec = build_arch((32, 32), (2, 2, 4), Optimization::Base, 2).unwrap();
        let traced = Experiment::new(&workload)
            .arch(spec)
            .backend(name)
            .telemetry(Telemetry::new(Arc::clone(&recorder) as _))
            .run()
            .unwrap();
        assert_eq!(traced.predictions, plain.predictions, "{name}");
        assert_eq!(traced.labels, plain.labels, "{name}");
        assert_eq!(traced.total, plain.total, "{name} total stats");
        assert_eq!(traced.setup, plain.setup, "{name} setup stats");
        assert_eq!(traced.query_phase, plain.query_phase, "{name} query stats");
        let events = recorder.events();
        let spans: Vec<_> = events.iter().filter_map(Event::as_span).collect();
        assert!(
            spans
                .iter()
                .any(|s| s.cat == cat::PHASE && s.name == "Execute"),
            "{name}: no Execute phase span recorded"
        );
        assert!(
            spans
                .iter()
                .any(|s| s.cat == cat::BACKEND && s.name == format!("backend:{name}")),
            "{name}: no backend span recorded"
        );
    }
}

#[test]
fn sharded_runs_record_worker_lane_spans_without_perturbing_outputs() {
    // Worker shards record their spans on lanes 1..=threads; the
    // sharded result must still match the telemetry-off sequential run.
    let workload = HdcWorkload {
        classes: 5,
        dims: 96,
        queries: 8,
        flip_rate: 0.1,
        seed: 7,
    };
    let plain = run(&workload, "tape", 1);
    let recorder = Arc::new(CollectingRecorder::new());
    let spec = build_arch((32, 32), (2, 2, 4), Optimization::Base, 1).unwrap();
    let traced = Experiment::new(&workload)
        .arch(spec)
        .backend("tape")
        .threads(4)
        .telemetry(Telemetry::new(Arc::clone(&recorder) as _))
        .run()
        .unwrap();
    assert_eq!(traced.predictions, plain.predictions);
    assert_eq!(traced.total.search_ops, plain.total.search_ops);
    let events = recorder.events();
    let shard_spans: Vec<_> = events
        .iter()
        .filter_map(Event::as_span)
        .filter(|s| s.cat == cat::SHARD)
        .collect();
    assert!(!shard_spans.is_empty(), "no shard spans recorded");
    for s in &shard_spans {
        assert!(s.tid >= 1, "shard span on the main lane: {}", s.name);
        assert!(s.name.starts_with("shard-"), "{}", s.name);
    }
}

#[test]
fn fault_rate_zero_is_bit_identical_to_the_oracle_on_every_backend() {
    // The resilient-execution acceptance bar: installing the fault
    // hooks at rate 0 must not perturb a single output bit or — for
    // DeviceExact backends — a single stats field, on any registered
    // backend.
    let registry = BackendRegistry::global();
    for workload in workloads() {
        for bits in [1, 2] {
            let oracle = run(workload.as_ref(), "walk", bits);
            for backend in registry.all() {
                let name = backend.name();
                let spec = build_arch((32, 32), (2, 2, 4), Optimization::Base, bits).unwrap();
                let outcome = Experiment::new(workload.as_ref())
                    .arch(spec)
                    .backend(name)
                    .faults(FaultConfig::with_rate(0.0, 7))
                    .run()
                    .unwrap();
                assert_eq!(
                    outcome.predictions,
                    oracle.predictions,
                    "{name} perturbed outputs at fault rate 0 on {}/{bits}b",
                    workload.name()
                );
                if backend.capabilities().stats == StatsContract::DeviceExact {
                    assert_eq!(outcome.total, oracle.total, "{name} total stats");
                    assert_eq!(outcome.setup, oracle.setup, "{name} setup stats");
                    assert_eq!(
                        outcome.query_phase, oracle.query_phase,
                        "{name} query stats"
                    );
                }
            }
        }
    }
}

#[test]
fn seeded_fault_injection_is_deterministic_across_backends_and_threads() {
    // Property (hand-rolled over a seed × rate grid, no external
    // proptest dependency): for any seed and rate, the fault sites,
    // fault events, and outputs are a pure function of (model, seed,
    // geometry) — identical across every backend, across repeated
    // runs, and across thread counts.
    let workload = HdcWorkload {
        classes: 5,
        dims: 96,
        queries: 6,
        flip_rate: 0.1,
        seed: 7,
    };
    for seed in [1u64, 9, 42] {
        for rate in [0.01, 0.05] {
            let mut faults = FaultConfig::with_rate(rate, seed);
            faults.resilience.spare_rows = 2;
            let run_with = |engine: &str, threads: usize| {
                let spec = build_arch((32, 32), (2, 2, 4), Optimization::Base, 2).unwrap();
                Experiment::new(&workload)
                    .arch(spec)
                    .backend(engine)
                    .threads(threads)
                    .faults(faults.clone())
                    .run()
                    .unwrap()
            };
            let reference = run_with("walk", 1);
            let again = run_with("walk", 1);
            assert_eq!(reference.predictions, again.predictions, "seed {seed}");
            assert_eq!(reference.total, again.total, "seed {seed} not reproducible");
            for (engine, threads) in [
                ("tape", 1),
                ("tape", 4),
                ("simd", 1),
                ("simd", 4),
                ("trace", 1),
            ] {
                let outcome = run_with(engine, threads);
                assert_eq!(
                    outcome.predictions, reference.predictions,
                    "{engine}/{threads} diverged at seed {seed} rate {rate}"
                );
                assert_eq!(
                    (
                        outcome.total.fault_cells,
                        outcome.total.fault_transients,
                        outcome.total.rows_remapped
                    ),
                    (
                        reference.total.fault_cells,
                        reference.total.fault_transients,
                        reference.total.rows_remapped
                    ),
                    "{engine}/{threads} fault events diverged at seed {seed} rate {rate}"
                );
            }
        }
    }
}

#[test]
fn threaded_backends_reproduce_sequential_outputs() {
    // supports_threads is a promise: sharded execution must keep the
    // outputs bit-identical and the operation counts exact.
    let registry = BackendRegistry::global();
    let workload = HdcWorkload {
        classes: 5,
        dims: 96,
        queries: 8,
        flip_rate: 0.1,
        seed: 7,
    };
    let spec = build_arch((32, 32), (2, 2, 4), Optimization::Base, 2).unwrap();
    for backend in registry.all() {
        let name = backend.name();
        if !backend.capabilities().supports_threads {
            // Single-threaded backends must refuse, not silently run.
            let err = Experiment::new(&workload)
                .arch(spec.clone())
                .backend(name)
                .threads(4)
                .run()
                .unwrap_err();
            assert!(err.to_string().contains(name), "{err}");
            continue;
        }
        let sequential = Experiment::new(&workload)
            .arch(spec.clone())
            .backend(name)
            .run()
            .unwrap();
        let sharded = Experiment::new(&workload)
            .arch(spec.clone())
            .backend(name)
            .threads(4)
            .run()
            .unwrap();
        assert_eq!(sharded.predictions, sequential.predictions, "{name}");
        assert_eq!(
            sharded.total.search_ops, sequential.total.search_ops,
            "{name}"
        );
        assert_eq!(
            sharded.total.searched_words, sequential.total.searched_words,
            "{name}"
        );
    }
}
