//! Property-based tests (proptest) on the core invariants:
//! printer/parser round-trips, simulator-vs-reference search semantics,
//! partition/mapping equivalence, and cost-model monotonicity.

use c4cam::arch::{ArchSpec, MatchKind, Metric, Optimization};
use c4cam::camsim::{CamMachine, RowSelection, SearchSpec};
use c4cam::compiler::mapping::{place, MappingProblem};
use c4cam::ir::builder::{build_func, OpBuilder};
use c4cam::ir::parse::parse_module;
use c4cam::ir::print::print_module;
use c4cam::ir::{Attribute, Module};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// IR printer/parser round-trip
// ---------------------------------------------------------------------

fn arb_attr() -> impl Strategy<Value = Attribute> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Attribute::Int),
        (-1e9f64..1e9).prop_map(Attribute::Float),
        any::<bool>().prop_map(Attribute::Bool),
        "[a-z][a-z0-9_]{0,8}".prop_map(Attribute::Str),
        Just(Attribute::Unit),
        proptest::collection::vec(-100f32..100.0, 0..6)
            .prop_map(|v| Attribute::dense_f32(vec![v.len() as i64], v)),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Attribute::Array)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn printed_modules_reparse_identically(
        attrs in proptest::collection::vec(("[a-z][a-z0-9]{0,6}", arb_attr()), 0..5),
        shape in proptest::collection::vec(1i64..64, 1..3),
        nops in 1usize..6,
    ) {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let ty = m.tensor_ty(&shape, f32t);
        let (_, entry) = build_func(&mut m, "f", &[ty], &[ty]);
        let mut value = m.block(entry).args[0];
        for i in 0..nops {
            let mut b = OpBuilder::at_end(&mut m, entry);
            let op = if i == 0 {
                let attr_vec: Vec<(&str, Attribute)> = attrs
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.clone()))
                    .collect();
                b.op("test.attrs", &[value], &[ty], attr_vec)
            } else {
                b.op("test.chain", &[value, value], &[ty], vec![])
            };
            value = m.result(op, 0);
        }
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[value], &[], vec![]);

        let text = print_module(&m);
        let reparsed = parse_module(&text).expect("reparse");
        prop_assert_eq!(print_module(&reparsed), text);
    }

    // -----------------------------------------------------------------
    // Simulator search semantics vs a direct reference scan
    // -----------------------------------------------------------------

    #[test]
    fn exact_search_equals_reference_scan(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u8..2, 8), 1..12),
        query in proptest::collection::vec(0u8..2, 8),
    ) {
        let spec = ArchSpec::builder().subarray(16, 8).build().unwrap();
        let mut machine = CamMachine::new(&spec);
        let sub = machine.alloc_chain().unwrap();
        let data: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| r.iter().map(|&b| f32::from(b)).collect())
            .collect();
        machine.write_rows(sub, 0, &data).unwrap();
        let q: Vec<f32> = query.iter().map(|&b| f32::from(b)).collect();
        let result = machine
            .search(sub, &q, SearchSpec::new(MatchKind::Exact, Metric::Hamming))
            .unwrap();
        let expected: Vec<usize> = data
            .iter()
            .enumerate()
            .filter(|(_, r)| r.as_slice() == q.as_slice())
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(result.matching_rows(), expected);
    }

    #[test]
    fn best_match_is_argmin_of_hamming(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u8..2, 12), 2..10),
        query in proptest::collection::vec(0u8..2, 12),
    ) {
        let spec = ArchSpec::builder().subarray(16, 12).build().unwrap();
        let mut machine = CamMachine::new(&spec);
        let sub = machine.alloc_chain().unwrap();
        let data: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| r.iter().map(|&b| f32::from(b)).collect())
            .collect();
        machine.write_rows(sub, 0, &data).unwrap();
        let q: Vec<f32> = query.iter().map(|&b| f32::from(b)).collect();
        let result = machine
            .search(sub, &q, SearchSpec::new(MatchKind::Best, Metric::Hamming))
            .unwrap();
        let dist = |r: &Vec<f32>| r.iter().zip(&q).filter(|(a, b)| a != b).count();
        let min = data.iter().map(dist).min().unwrap();
        let expected: Vec<usize> = data
            .iter()
            .enumerate()
            .filter(|(_, r)| dist(r) == min)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(result.best_rows(), expected);
    }

    #[test]
    fn selective_window_equals_restricted_scan(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u8..2, 8), 4..12),
        query in proptest::collection::vec(0u8..2, 8),
        start in 0usize..8,
        len in 1usize..6,
    ) {
        let spec = ArchSpec::builder().subarray(16, 8).build().unwrap();
        let mut machine = CamMachine::new(&spec);
        let sub = machine.alloc_chain().unwrap();
        let data: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| r.iter().map(|&b| f32::from(b)).collect())
            .collect();
        machine.write_rows(sub, 0, &data).unwrap();
        let q: Vec<f32> = query.iter().map(|&b| f32::from(b)).collect();
        let result = machine
            .search(
                sub,
                &q,
                SearchSpec::new(MatchKind::Threshold, Metric::Hamming)
                    .with_threshold(2.0)
                    .with_selection(RowSelection::Window { start, len }),
            )
            .unwrap();
        let window_end = (start + len).min(data.len());
        let expected: Vec<usize> = (start.min(data.len())..window_end)
            .filter(|&i| {
                data[i].iter().zip(&q).filter(|(a, b)| a != b).count() <= 2
            })
            .collect();
        prop_assert_eq!(result.matching_rows(), expected);
    }

    // -----------------------------------------------------------------
    // Mapping invariants
    // -----------------------------------------------------------------

    #[test]
    fn placement_covers_all_tiles(
        stored in 1usize..600,
        dims in 1usize..4000,
        n in prop_oneof![Just(16usize), Just(32), Just(64), Just(128)],
        opt in prop_oneof![
            Just(Optimization::Base),
            Just(Optimization::Power),
            Just(Optimization::Density),
            Just(Optimization::PowerDensity),
        ],
    ) {
        let spec = ArchSpec::builder()
            .subarray(n, n)
            .hierarchy(4, 4, 8)
            .optimization(opt)
            .build()
            .unwrap();
        let p = place(&spec, &MappingProblem {
            stored_rows: stored,
            feature_dims: dims,
            queries: 1,
        }).unwrap();
        // Capacity: physical subarrays × batches cover all logical tiles.
        prop_assert!(p.physical_subarrays * p.batches_per_subarray >= p.logical_tiles);
        // No overshoot by more than one batch's worth.
        prop_assert!((p.physical_subarrays - 1) * p.batches_per_subarray < p.logical_tiles);
        // Rows fit the subarray.
        prop_assert!(p.rows_used <= n);
        prop_assert!(p.rows_used * p.batches_per_subarray <= n);
        // Banks provide enough subarray slots.
        prop_assert!(p.banks * spec.subarrays_per_bank() >= p.physical_subarrays);
        // Padded rows cover the stored set.
        prop_assert!(p.padded_rows >= stored);
    }

    #[test]
    fn search_latency_monotonic_in_columns(
        c1 in 16usize..256,
        c2 in 16usize..256,
    ) {
        let tech = c4cam::arch::tech::TechnologyModel::fefet_45nm();
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(tech.search_latency_ns(lo, 1) <= tech.search_latency_ns(hi, 1));
    }

    // -----------------------------------------------------------------
    // End-to-end: random geometry, device == host reference
    //
    // Contract (see DESIGN.md §4 and the `cam_map` docs): the device
    // executes dot similarity as a symbol-match count — the Hamming
    // complement — exactly as the FeFET CAM hardware of [22] does. That
    // ranking equals true dot-product ranking iff the stored rows are
    // norm-balanced (the HDC setting: random hypervectors are balanced
    // by construction). So:
    //   * for balanced stored rows, device == torch-level host output;
    //   * for arbitrary rows, device == the min-Hamming reference.
    // -----------------------------------------------------------------

    #[test]
    fn device_matches_host_for_random_geometries(
        classes in 2usize..8,
        dims_factor in 1usize..12,
        nq in 1usize..4,
        n in prop_oneof![Just(16usize), Just(32)],
        opt in prop_oneof![
            Just(Optimization::Base),
            Just(Optimization::Power),
            Just(Optimization::Density),
        ],
        seed in 0u64..1000,
    ) {
        use c4cam::compiler::dialects::torch;
        use c4cam::compiler::pipeline::C4camPipeline;
        use c4cam::ir::Module;
        use c4cam::runtime::{Executor, Value};
        use c4cam::tensor::Tensor;

        let dims = dims_factor * 17; // deliberately non-divisible sizes
        let ones = dims / 2 + 1;
        let mut m = Module::new();
        torch::build_hdc_dot_with(&mut m, nq as i64, classes as i64, dims as i64, 1, true);

        // Deterministic xorshift.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Balanced stored rows: exactly `ones` ones each (random HVs are
        // balanced; this makes match-count ranking ≡ dot ranking).
        let mut stored = Vec::with_capacity(classes * dims);
        for _ in 0..classes {
            let mut row = vec![0.0f32; dims];
            let mut placed = 0usize;
            while placed < ones {
                let pos = (next() as usize) % dims;
                if row[pos] == 0.0 {
                    row[pos] = 1.0;
                    placed += 1;
                }
            }
            stored.extend(row);
        }
        let stored = Tensor::from_vec(vec![classes, dims], stored).unwrap();
        let queries =
            Tensor::from_vec(vec![nq, dims], (0..nq * dims).map(|_| (next() & 1) as f32).collect())
                .unwrap();
        let args = [Value::Tensor(queries.clone()), Value::Tensor(stored.clone())];

        let golden = Executor::new(&m).run("forward", &args).unwrap();

        let spec = ArchSpec::builder()
            .subarray(n, n)
            .hierarchy(2, 2, 4)
            .optimization(opt)
            .build()
            .unwrap();
        let compiled = C4camPipeline::new(spec.clone()).compile(m).unwrap();
        let mut machine = CamMachine::new(&spec);
        let out = Executor::with_machine(&compiled.module, &mut machine)
            .run("forward", &args)
            .unwrap();
        let device_idx = out[1].as_tensor().unwrap().data().to_vec();
        prop_assert_eq!(&device_idx, golden[1].as_tensor().unwrap().data());

        // Independent min-Hamming reference (holds for ANY data).
        for (q, &idx) in device_idx.iter().enumerate() {
            let qrow = queries.row(q).unwrap();
            let best = (0..classes)
                .map(|c| Tensor::hamming_distance(qrow, stored.row(c).unwrap()).unwrap())
                .enumerate()
                .min_by_key(|&(i, d)| (d, i))
                .map(|(i, _)| i)
                .unwrap();
            prop_assert_eq!(idx as usize, best);
        }

        // Accounting sanity: the device did real work and time advanced.
        let stats = machine.stats();
        prop_assert!(stats.search_ops > 0);
        prop_assert!(stats.latency_ns > 0.0);
        prop_assert!(stats.total_energy_fj() > 0.0);
    }

    #[test]
    fn device_matches_hamming_reference_for_unbalanced_rows(
        classes in 2usize..6,
        dims_factor in 1usize..8,
        seed in 0u64..500,
    ) {
        use c4cam::compiler::dialects::torch;
        use c4cam::compiler::pipeline::C4camPipeline;
        use c4cam::ir::Module;
        use c4cam::runtime::{Executor, Value};
        use c4cam::tensor::Tensor;

        let dims = dims_factor * 13;
        let mut m = Module::new();
        torch::build_hdc_dot_with(&mut m, 1, classes as i64, dims as i64, 1, true);
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next_bit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 1) as f32
        };
        // Unbalanced random rows: dot and Hamming rankings may differ;
        // the device contract is min-Hamming.
        let stored = Tensor::from_vec(
            vec![classes, dims],
            (0..classes * dims).map(|_| next_bit()).collect(),
        )
        .unwrap();
        let queries =
            Tensor::from_vec(vec![1, dims], (0..dims).map(|_| next_bit()).collect()).unwrap();
        let args = [Value::Tensor(queries.clone()), Value::Tensor(stored.clone())];

        let spec = ArchSpec::builder()
            .subarray(16, 16)
            .hierarchy(2, 2, 4)
            .build()
            .unwrap();
        let compiled = C4camPipeline::new(spec.clone()).compile(m).unwrap();
        let mut machine = CamMachine::new(&spec);
        let out = Executor::with_machine(&compiled.module, &mut machine)
            .run("forward", &args)
            .unwrap();
        let device_idx = out[1].as_tensor().unwrap().data()[0] as usize;
        let qrow = queries.row(0).unwrap();
        let best = (0..classes)
            .map(|c| Tensor::hamming_distance(qrow, stored.row(c).unwrap()).unwrap())
            .enumerate()
            .min_by_key(|&(i, d)| (d, i))
            .map(|(i, _)| i)
            .unwrap();
        prop_assert_eq!(device_idx, best);
    }

    #[test]
    fn arch_spec_text_round_trips(
        rows in 1usize..512,
        cols in 1usize..512,
        mats in 1usize..8,
        arrays in 1usize..8,
        subs in 1usize..16,
        banks in proptest::option::of(1usize..64),
        bits in 1u32..5,
    ) {
        // The full multi-bit range 1..=4 (the paper's multi-bit HDC
        // variants); TCAM caps at 2 bits per cell, so wider cells
        // require the MCAM kind — which must itself round-trip.
        let mut builder = ArchSpec::builder()
            .subarray(rows, cols)
            .hierarchy(mats, arrays, subs)
            .bits_per_cell(bits);
        if bits > 2 {
            builder = builder.cam_kind(c4cam::arch::CamKind::Mcam);
        }
        if let Some(b) = banks {
            builder = builder.banks(b);
        }
        let spec = builder.build().unwrap();
        prop_assert_eq!(spec.bits_per_cell, bits);
        let text = spec.to_text();
        let reparsed = c4cam::arch::parse_spec(&text).unwrap();
        prop_assert_eq!(spec, reparsed);
    }
}
