//! Property tests (vendored proptest): for randomly shaped hdc- and
//! knn-style modules, EVERY backend registered in the HAL must produce
//! bit-identical results to the tree-walking interpreter; the
//! device-exact backends (`tape`, `trace`) must also report identical
//! energy/latency statistics, and every thread-capable backend must
//! reproduce the outputs exactly when the query loop is sharded.

use c4cam::arch::{ArchSpec, Optimization};
use c4cam::compiler::dialects::{cim, torch};
use c4cam::compiler::pipeline::C4camPipeline;
use c4cam::hal::{BackendRegistry, ExecOptions, StatsContract};
use c4cam::ir::Module;
use c4cam::runtime::Value;
use c4cam::tensor::Tensor;
use proptest::prelude::*;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

fn random_binary(rows: usize, cols: usize, next: &mut impl FnMut() -> u64) -> Tensor {
    Tensor::from_vec(
        vec![rows, cols],
        (0..rows * cols).map(|_| (next() & 1) as f32).collect(),
    )
    .unwrap()
}

/// Compile for `spec`, run the walker oracle, then every registered
/// backend (sequential and, where supported, sharded), and assert the
/// equivalence contract.
fn check_engines(m: Module, func: &str, spec: &ArchSpec, args: &[Value]) {
    let compiled = C4camPipeline::new(spec.clone()).compile(m).unwrap();

    let registry = BackendRegistry::global();
    let oracle = registry
        .get("walk")
        .unwrap()
        .compile(&compiled.module, func, spec)
        .unwrap()
        .execute(args, &ExecOptions::sequential())
        .unwrap();

    for backend in registry.all() {
        let name = backend.name();
        let plan = backend.compile(&compiled.module, func, spec).unwrap();
        let exec = plan.execute(args, &ExecOptions::sequential()).unwrap();
        assert_eq!(oracle.outputs.len(), exec.outputs.len(), "{name}");
        for (w, t) in oracle.outputs.iter().zip(&exec.outputs) {
            assert_eq!(
                w.snapshot_tensor().unwrap().data(),
                t.snapshot_tensor().unwrap().data(),
                "{name} output diverged"
            );
        }
        match backend.capabilities().stats {
            StatsContract::DeviceExact => {
                assert_eq!(oracle.stats, exec.stats, "{name} stats diverged");
            }
            StatsContract::Estimated => {
                assert!(exec.stats.search_ops > 0, "{name}");
                assert!(exec.stats.searched_words > 0, "{name}");
                assert!(exec.stats.latency_ns > 0.0, "{name}");
            }
        }

        if !backend.capabilities().supports_threads {
            continue;
        }
        let sharded = plan
            .execute(args, &ExecOptions::sequential().with_threads(3))
            .unwrap();
        for (w, s) in oracle.outputs.iter().zip(&sharded.outputs) {
            assert_eq!(
                w.snapshot_tensor().unwrap().data(),
                s.snapshot_tensor().unwrap().data(),
                "{name} sharded output diverged"
            );
        }
        let (a, b) = (&exec.stats, &sharded.stats);
        assert_eq!(a.search_ops, b.search_ops, "{name}");
        assert_eq!(a.read_ops, b.read_ops, "{name}");
        assert_eq!(a.merge_ops, b.merge_ops, "{name}");
        assert_eq!(a.write_ops, b.write_ops, "{name}");
        assert!(
            (a.latency_ns - b.latency_ns).abs() <= 1e-6 * a.latency_ns.max(1.0),
            "{name}"
        );
        assert!(
            (a.total_energy_fj() - b.total_energy_fj()).abs()
                <= 1e-6 * a.total_energy_fj().max(1.0),
            "{name}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hdc_shaped_modules_execute_identically(
        classes in 2usize..7,
        dims_factor in 1usize..10,
        nq in 1usize..5,
        n in prop_oneof![Just(16usize), Just(32)],
        opt in prop_oneof![
            Just(Optimization::Base),
            Just(Optimization::Power),
            Just(Optimization::Density),
            Just(Optimization::PowerDensity),
        ],
        seed in 0u64..1000,
    ) {
        let dims = dims_factor * 19; // non-divisible sizes welcome
        let mut m = Module::new();
        torch::build_hdc_dot_with(&mut m, nq as i64, classes as i64, dims as i64, 1, true);
        let mut next = xorshift(seed);
        let stored = random_binary(classes, dims, &mut next);
        let queries = random_binary(nq, dims, &mut next);
        let args = [Value::Tensor(queries), Value::Tensor(stored)];
        let spec = ArchSpec::builder()
            .subarray(n, n)
            .hierarchy(2, 2, 4)
            .optimization(opt)
            .build()
            .unwrap();
        check_engines(m, "forward", &spec, &args);
    }

    #[test]
    fn knn_shaped_modules_execute_identically(
        patterns in 4usize..50,
        dims_factor in 1usize..6,
        nq in 1usize..5,
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        let dims = dims_factor * 23;
        let k = k.min(patterns);
        let mut m = Module::new();
        cim::build_similarity_kernel(
            &mut m, "knn", "eucl",
            patterns as i64, dims as i64, nq as i64, k as i64, false,
        );
        let mut next = xorshift(seed);
        let stored = random_binary(patterns, dims, &mut next);
        let queries = random_binary(nq, dims, &mut next);
        let args = [Value::Tensor(stored), Value::Tensor(queries)];
        let spec = ArchSpec::builder()
            .subarray(16, 16)
            .hierarchy(2, 2, 4)
            .build()
            .unwrap();
        check_engines(m, "knn", &spec, &args);
    }
}
