//! Property tests (vendored proptest): for randomly shaped hdc- and
//! knn-style modules, the flat-tape engine must produce bit-identical
//! results *and* identical energy/latency statistics to the
//! tree-walking interpreter, and the sharded tape must reproduce the
//! outputs exactly with equal operation counts.

use c4cam::arch::{ArchSpec, Optimization};
use c4cam::camsim::CamMachine;
use c4cam::compiler::dialects::{cim, torch};
use c4cam::compiler::pipeline::C4camPipeline;
use c4cam::engine::Tape;
use c4cam::ir::Module;
use c4cam::runtime::{Executor, Value};
use c4cam::tensor::Tensor;
use proptest::prelude::*;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

fn random_binary(rows: usize, cols: usize, next: &mut impl FnMut() -> u64) -> Tensor {
    Tensor::from_vec(
        vec![rows, cols],
        (0..rows * cols).map(|_| (next() & 1) as f32).collect(),
    )
    .unwrap()
}

/// Compile for `spec`, run walker + tape + sharded tape, and assert the
/// equivalence contract.
fn check_engines(m: Module, func: &str, spec: &ArchSpec, args: &[Value]) {
    let compiled = C4camPipeline::new(spec.clone()).compile(m).unwrap();

    let mut walk_machine = CamMachine::new(spec);
    let walk_out = Executor::with_machine(&compiled.module, &mut walk_machine)
        .run(func, args)
        .unwrap();

    let tape = Tape::compile(&compiled.module, func).unwrap();
    let mut tape_machine = CamMachine::new(spec);
    let tape_out = tape.run(&mut tape_machine, args).unwrap();

    assert_eq!(walk_out.len(), tape_out.len());
    for (w, t) in walk_out.iter().zip(&tape_out) {
        assert_eq!(
            w.snapshot_tensor().unwrap().data(),
            t.snapshot_tensor().unwrap().data(),
            "tape output diverged"
        );
    }
    assert_eq!(walk_machine.stats(), tape_machine.stats(), "stats diverged");

    let mut shard_machine = CamMachine::new(spec);
    let shard_out = tape.run_batched(&mut shard_machine, args, 3).unwrap();
    for (w, s) in walk_out.iter().zip(&shard_out) {
        assert_eq!(
            w.snapshot_tensor().unwrap().data(),
            s.snapshot_tensor().unwrap().data(),
            "sharded output diverged"
        );
    }
    let (a, b) = (walk_machine.stats(), shard_machine.stats());
    assert_eq!(a.search_ops, b.search_ops);
    assert_eq!(a.read_ops, b.read_ops);
    assert_eq!(a.merge_ops, b.merge_ops);
    assert_eq!(a.write_ops, b.write_ops);
    assert!((a.latency_ns - b.latency_ns).abs() <= 1e-6 * a.latency_ns.max(1.0));
    assert!(
        (a.total_energy_fj() - b.total_energy_fj()).abs() <= 1e-6 * a.total_energy_fj().max(1.0)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hdc_shaped_modules_execute_identically(
        classes in 2usize..7,
        dims_factor in 1usize..10,
        nq in 1usize..5,
        n in prop_oneof![Just(16usize), Just(32)],
        opt in prop_oneof![
            Just(Optimization::Base),
            Just(Optimization::Power),
            Just(Optimization::Density),
            Just(Optimization::PowerDensity),
        ],
        seed in 0u64..1000,
    ) {
        let dims = dims_factor * 19; // non-divisible sizes welcome
        let mut m = Module::new();
        torch::build_hdc_dot_with(&mut m, nq as i64, classes as i64, dims as i64, 1, true);
        let mut next = xorshift(seed);
        let stored = random_binary(classes, dims, &mut next);
        let queries = random_binary(nq, dims, &mut next);
        let args = [Value::Tensor(queries), Value::Tensor(stored)];
        let spec = ArchSpec::builder()
            .subarray(n, n)
            .hierarchy(2, 2, 4)
            .optimization(opt)
            .build()
            .unwrap();
        check_engines(m, "forward", &spec, &args);
    }

    #[test]
    fn knn_shaped_modules_execute_identically(
        patterns in 4usize..50,
        dims_factor in 1usize..6,
        nq in 1usize..5,
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        let dims = dims_factor * 23;
        let k = k.min(patterns);
        let mut m = Module::new();
        cim::build_similarity_kernel(
            &mut m, "knn", "eucl",
            patterns as i64, dims as i64, nq as i64, k as i64, false,
        );
        let mut next = xorshift(seed);
        let stored = random_binary(patterns, dims, &mut next);
        let queries = random_binary(nq, dims, &mut next);
        let args = [Value::Tensor(stored), Value::Tensor(queries)];
        let spec = ArchSpec::builder()
            .subarray(16, 16)
            .hierarchy(2, 2, 4)
            .build()
            .unwrap();
        check_engines(m, "knn", &spec, &args);
    }
}
