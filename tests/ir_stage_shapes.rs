//! Structural (FileCheck-style) tests: the IR after each stage must
//! exhibit the structures the paper's listings show (Fig. 4b, 5a, 5c,
//! 5d, 6).

use c4cam::arch::{ArchSpec, Optimization};
use c4cam::compiler::dialects::torch;
use c4cam::compiler::pipeline::{C4camPipeline, PipelineOptions, Target};
use c4cam::ir::print::print_module;
use c4cam::ir::Module;

fn snapshots(opt: Optimization, target: Target) -> Vec<(String, String)> {
    let mut m = Module::new();
    torch::build_hdc_dot(&mut m, 2, 10, 1024, 1);
    let spec = ArchSpec::builder()
        .subarray(32, 32)
        .hierarchy(4, 4, 8)
        .optimization(opt)
        .build()
        .unwrap();
    C4camPipeline::new(spec)
        .with_options(PipelineOptions {
            keep_snapshots: true,
            target,
            ..PipelineOptions::default()
        })
        .compile(m)
        .unwrap()
        .snapshots
}

fn stage<'a>(snaps: &'a [(String, String)], name: &str) -> &'a str {
    &snaps
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("missing stage {name}"))
        .1
}

#[test]
fn torch_stage_matches_fig4b() {
    let snaps = snapshots(Optimization::Base, Target::CamDevice);
    let text = stage(&snaps, "torch");
    // Fig. 4b: transpose → mm → topk over tensor<10x8192>-style types.
    assert!(text.contains("torch.transpose"));
    assert!(text.contains("torch.matmul"));
    assert!(text.contains("torch.topk"));
    assert!(text.contains("tensor<10x1024xf32>"));
    assert!(
        text.contains("tensor<1024x10xf32>"),
        "transposed weight type"
    );
}

#[test]
fn cim_stage_matches_fig5a() {
    let snaps = snapshots(Optimization::Base, Target::CamDevice);
    let text = stage(&snaps, "torch-to-cim");
    // Fig. 5a: one acquire/execute/release triple per op.
    assert_eq!(text.matches("cim.acquire").count(), 3);
    assert_eq!(text.matches("\"cim.execute\"").count(), 3);
    assert_eq!(text.matches("cim.release").count(), 3);
    assert!(text.contains("cim.transpose"));
    assert!(text.contains("cim.matmul"));
    assert!(text.contains("cim.topk"));
    assert!(!text.contains("torch."), "torch fully converted");
}

#[test]
fn fused_stage_matches_fig5c() {
    let snaps = snapshots(Optimization::Base, Target::CamDevice);
    let text = stage(&snaps, "cim-fuse-ops");
    // Fig. 5c: a single execute holding cim.similarity.
    assert_eq!(text.matches("\"cim.execute\"").count(), 1);
    assert!(text.contains("cim.similarity"));
    assert!(text.contains("metric = \"dot\""));
    assert!(!text.contains("cim.matmul"), "ops rewritten away");
}

#[test]
fn partitioned_stage_matches_fig5d() {
    let snaps = snapshots(Optimization::Base, Target::HostLoops);
    let text = stage(&snaps, "cim-partition");
    // Fig. 5d: an scf.for over tiles with slice extraction and merges.
    assert!(text.contains("\"scf.for\""));
    assert!(text.contains("tensor.extract_slice"));
    assert!(text.contains("cim.similarity_scores"));
    assert!(text.contains("cim.merge_partial"));
    assert!(text.contains("cim.reduce"));
    assert!(text.contains("tensor<10x32xf32>"), "subarray-sized slices");
}

#[test]
fn mapped_stage_matches_fig6() {
    let snaps = snapshots(Optimization::Base, Target::CamDevice);
    let text = stage(&snaps, "cam-map");
    // Fig. 6: nested parallel loops with per-level allocation and the
    // write/search/read/merge sequence on !cam handles.
    for needle in [
        "\"scf.parallel\"",
        "cam.alloc_bank",
        "cam.alloc_mat",
        "cam.alloc_array",
        "cam.alloc_subarray",
        "!cam.bank_id",
        "!cam.mat_id",
        "!cam.array_id",
        "!cam.subarray_id",
        "cam.write_value",
        "cam.search",
        "cam.read",
        "cam.merge_partial_subarray",
        "cam.reduce",
    ] {
        assert!(text.contains(needle), "missing {needle}");
    }
    // Base config: everything parallel — 4 levels × 2 nests.
    assert_eq!(text.matches("\"scf.parallel\"").count(), 8);
    assert!(text.contains("kind = \"best\""));
    assert!(text.contains("metric = \"dot\""));
}

#[test]
fn power_config_serializes_innermost_loop() {
    let snaps = snapshots(Optimization::Power, Target::CamDevice);
    let text = stage(&snaps, "cam-map");
    assert_eq!(
        text.matches("\"scf.parallel\"").count(),
        6,
        "subarray loops become scf.for under cam-power"
    );
}

#[test]
fn density_config_emits_selective_search_with_batches() {
    let snaps = snapshots(Optimization::Density, Target::CamDevice);
    let text = stage(&snaps, "cam-map");
    assert!(text.contains("selective = true"));
    assert!(text.contains("broadcast_share"));
}

#[test]
fn all_stages_round_trip_through_the_parser() {
    for target in [Target::CamDevice, Target::HostLoops] {
        for (name, text) in snapshots(Optimization::Base, target) {
            let reparsed = c4cam::ir::parse::parse_module(&text)
                .unwrap_or_else(|e| panic!("stage {name} failed to reparse: {e}"));
            assert_eq!(
                print_module(&reparsed),
                text,
                "stage {name} not stable under round-trip"
            );
        }
    }
}
