//! End-to-end equivalence: every lowering stage must compute the same
//! function. The torch-level host execution is the golden reference;
//! the cim stage, the partitioned host-loops stage, and the fully
//! lowered cam stage (on the simulator) must agree.
//!
//! The fully lowered stage is additionally executed by *both* device
//! engines — the tree-walking `Executor` (oracle) and the flat-tape VM,
//! sequential and sharded — and the engines must agree bit-for-bit on
//! outputs and (for the sequential tape) on energy/latency statistics,
//! across all four workload shapes: hdc, knn, dtree, and gpu.

use c4cam::arch::{ArchSpec, Optimization};
use c4cam::camsim::CamMachine;
use c4cam::compiler::dialects::torch;
use c4cam::compiler::pipeline::{C4camPipeline, PipelineOptions, Target};
use c4cam::engine::Tape;
use c4cam::ir::Module;
use c4cam::runtime::{Executor, Value};
use c4cam::tensor::Tensor;

/// Run the lowered device module on the walker (oracle), the sequential
/// tape engine, and the sharded tape engine; assert the tape matches the
/// walker bit-for-bit (outputs *and* stats) and the sharded run matches
/// outputs exactly with equal op counts.
fn assert_engines_agree(
    module: &Module,
    spec: &ArchSpec,
    func: &str,
    args: &[Value],
) -> Vec<Value> {
    let mut walk_machine = CamMachine::new(spec);
    let walk_out = Executor::with_machine(module, &mut walk_machine)
        .run(func, args)
        .unwrap();

    let tape = Tape::compile(module, func).unwrap();
    let mut tape_machine = CamMachine::new(spec);
    let tape_out = tape.run(&mut tape_machine, args).unwrap();

    assert_eq!(walk_out.len(), tape_out.len(), "engine result arity");
    for (i, (w, t)) in walk_out.iter().zip(&tape_out).enumerate() {
        assert_eq!(
            w.snapshot_tensor().unwrap().data(),
            t.snapshot_tensor().unwrap().data(),
            "tape result {i} diverged from walker"
        );
    }
    assert_eq!(
        walk_machine.stats(),
        tape_machine.stats(),
        "tape stats diverged from walker"
    );

    let mut shard_machine = CamMachine::new(spec);
    let shard_out = tape.run_batched(&mut shard_machine, args, 4).unwrap();
    for (i, (w, s)) in walk_out.iter().zip(&shard_out).enumerate() {
        assert_eq!(
            w.snapshot_tensor().unwrap().data(),
            s.snapshot_tensor().unwrap().data(),
            "sharded result {i} diverged from walker"
        );
    }
    let (walk, shard) = (walk_machine.stats(), shard_machine.stats());
    assert_eq!(walk.search_ops, shard.search_ops);
    assert_eq!(walk.read_ops, shard.read_ops);
    assert_eq!(walk.merge_ops, shard.merge_ops);
    assert!(
        (walk.latency_ns - shard.latency_ns).abs() <= 1e-6 * walk.latency_ns.max(1.0),
        "sharded latency diverged: {} vs {}",
        walk.latency_ns,
        shard.latency_ns
    );
    walk_out
}

fn hdc_inputs(nq: usize, classes: usize, dims: usize, seed: u64) -> (Tensor, Tensor) {
    let mut stored = Vec::with_capacity(classes * dims);
    for c in 0..classes {
        for d in 0..dims {
            let h = (c as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((d as u64).wrapping_mul(seed | 1));
            stored.push(f32::from(u8::from(h % 7 < 3)));
        }
    }
    let mut queries = Vec::with_capacity(nq * dims);
    for q in 0..nq {
        let class = q % classes;
        for d in 0..dims {
            let h = (class as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((d as u64).wrapping_mul(seed | 1));
            let base = u8::from(h % 7 < 3);
            let flip = u8::from(d % 53 == q); // a little per-query noise
            queries.push(f32::from(base ^ flip));
        }
    }
    (
        Tensor::from_vec(vec![classes, dims], stored).unwrap(),
        Tensor::from_vec(vec![nq, dims], queries).unwrap(),
    )
}

fn spec(n: usize, opt: Optimization) -> ArchSpec {
    ArchSpec::builder()
        .subarray(n, n)
        .hierarchy(2, 2, 4)
        .optimization(opt)
        .build()
        .unwrap()
}

fn run_all_stages(nq: usize, classes: usize, dims: usize, opt: Optimization, n: usize) {
    let mut m = Module::new();
    torch::build_hdc_dot_with(&mut m, nq as i64, classes as i64, dims as i64, 1, true);
    let (stored, queries) = hdc_inputs(nq, classes, dims, 11);
    let args = [Value::Tensor(queries), Value::Tensor(stored)];

    // Golden: torch level on the host.
    let golden = Executor::new(&m).run("forward", &args).unwrap();
    let golden_idx = golden[1].as_tensor().unwrap().clone();

    // Host loops path (partitioned cim).
    let host = C4camPipeline::new(spec(n, opt))
        .with_options(PipelineOptions {
            target: Target::HostLoops,
            ..PipelineOptions::default()
        })
        .compile(m.clone())
        .unwrap();
    let host_out = Executor::new(&host.module).run("forward", &args).unwrap();
    assert_eq!(
        host_out[1].as_tensor().unwrap().data(),
        golden_idx.data(),
        "host-loops path diverged (N={n}, {opt:?})"
    );

    // Device path: walker, tape and sharded tape must all agree.
    let s = spec(n, opt);
    let device = C4camPipeline::new(s.clone()).compile(m).unwrap();
    let device_out = assert_engines_agree(&device.module, &s, "forward", &args);
    assert_eq!(
        device_out[1].as_tensor().unwrap().data(),
        golden_idx.data(),
        "device path diverged (N={n}, {opt:?})"
    );
}

#[test]
fn hdc_equivalence_base_config() {
    run_all_stages(3, 5, 256, Optimization::Base, 16);
}

#[test]
fn hdc_equivalence_across_subarray_sizes() {
    for n in [16, 32, 64] {
        run_all_stages(2, 4, 128, Optimization::Base, n);
    }
}

#[test]
fn hdc_equivalence_power_config() {
    run_all_stages(3, 5, 256, Optimization::Power, 16);
}

#[test]
fn hdc_equivalence_density_config() {
    // density packs 3 batches per 16-row subarray for 5 stored rows.
    run_all_stages(3, 5, 256, Optimization::Density, 16);
}

#[test]
fn hdc_equivalence_power_density_config() {
    run_all_stages(3, 5, 256, Optimization::PowerDensity, 16);
}

#[test]
fn hdc_equivalence_non_divisible_dims() {
    // 200 dims on 16-col subarrays → 13 chunks with a ragged tail.
    run_all_stages(2, 4, 200, Optimization::Base, 16);
    run_all_stages(2, 4, 200, Optimization::Density, 16);
}

#[test]
fn knn_equivalence_with_row_groups() {
    // 50 stored rows on 16-row subarrays → 4 row groups.
    let mut m = Module::new();
    c4cam::compiler::dialects::cim::build_similarity_kernel(
        &mut m, "knn", "eucl", 50, 96, 3, 2, false,
    );
    let mut stored = Vec::new();
    for p in 0..50 {
        for d in 0..96 {
            stored.push(f32::from(u8::from((d * 5 + p * 11) % 7 < 3)));
        }
    }
    let stored = Tensor::from_vec(vec![50, 96], stored).unwrap();
    let queries = stored.slice2d(10, 0, 3, 96).unwrap();
    let args = [Value::Tensor(stored), Value::Tensor(queries)];

    let golden = Executor::new(&m).run("knn", &args).unwrap();

    let s = spec(16, Optimization::Base);
    let device = C4camPipeline::new(s.clone()).compile(m).unwrap();
    let out = assert_engines_agree(&device.module, &s, "knn", &args);
    assert_eq!(
        out[1].as_tensor().unwrap().data(),
        golden[1].as_tensor().unwrap().data(),
        "KNN indices diverged"
    );
    // Euclidean distances are exact across the stack.
    let g = golden[0].as_tensor().unwrap().data();
    let d = out[0].as_tensor().unwrap().data();
    for (a, b) in g.iter().zip(d) {
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }
}

#[test]
fn canonicalized_pipeline_is_equivalent() {
    let mut m = Module::new();
    torch::build_hdc_dot_with(&mut m, 3, 5, 256, 1, true);
    let (stored, queries) = hdc_inputs(3, 5, 256, 23);
    let args = [Value::Tensor(queries), Value::Tensor(stored)];
    let golden = Executor::new(&m).run("forward", &args).unwrap();

    let s = spec(16, Optimization::Base);
    let compiled = C4camPipeline::new(s.clone())
        .with_options(PipelineOptions {
            canonicalize: true,
            ..PipelineOptions::default()
        })
        .compile(m)
        .unwrap();
    // The canonicalizer must collapse at least the single-trip bank
    // loop or fold offsets — the module shrinks.
    let text = c4cam::ir::print::print_module(&compiled.module);
    assert!(
        !text.contains("arith.addi") || text.len() < 100_000,
        "canonicalized module should be simplified"
    );
    let mut machine = CamMachine::new(&s);
    let out = Executor::with_machine(&compiled.module, &mut machine)
        .run("forward", &args)
        .unwrap();
    assert_eq!(
        out[1].as_tensor().unwrap().data(),
        golden[1].as_tensor().unwrap().data(),
        "canonicalized device path diverged"
    );
}

#[test]
fn wta_window_preserves_results_when_wide_enough() {
    let mut m = Module::new();
    torch::build_hdc_dot_with(&mut m, 2, 4, 128, 1, true);
    let (stored, queries) = hdc_inputs(2, 4, 128, 5);
    let args = [Value::Tensor(queries), Value::Tensor(stored)];
    let golden = Executor::new(&m).run("forward", &args).unwrap();

    let s = spec(16, Optimization::Base);
    let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
    // A window as wide as the subarray cannot saturate anything.
    let mut machine = CamMachine::new(&s);
    machine.set_wta_window(Some(16));
    let out = Executor::with_machine(&compiled.module, &mut machine)
        .run("forward", &args)
        .unwrap();
    assert_eq!(
        out[1].as_tensor().unwrap().data(),
        golden[1].as_tensor().unwrap().data()
    );
}

#[test]
fn dtree_workload_engines_agree() {
    // The decision-tree workload ([`DtreeWorkload`]), expressed as
    // nearest-path-row retrieval: each root-to-leaf path becomes a
    // stored row of interval midpoints (don't-care features sit at the
    // domain center), and a sample classifies by minimum Euclidean
    // distance. Features are quantized to the 2-bit MCAM level grid so
    // the host reference and the (exact multi-bit Euclidean) device
    // agree. This exercises the eucl metric, multi-bit cells, and k=1
    // reduction through both engines.
    use c4cam::workloads::{DtreeWorkload, Workload};
    let s = ArchSpec::builder()
        .subarray(16, 16)
        .hierarchy(2, 2, 4)
        .bits_per_cell(2)
        .cam_kind(c4cam::arch::CamKind::Mcam)
        .build()
        .unwrap();
    let workload = DtreeWorkload::new(8, 3, 4, 5, 77);
    let built = workload.build_module(&s);
    let inputs = workload.inputs(&s);
    let args = [Value::Tensor(inputs.stored), Value::Tensor(inputs.queries)];
    let golden = Executor::new(&built.module).run("dtree", &args).unwrap();
    // The host golden's top-1 is exactly the workload's ground truth.
    let golden_idx: Vec<usize> = golden[1]
        .as_tensor()
        .unwrap()
        .data()
        .iter()
        .map(|&v| v as usize)
        .collect();
    assert_eq!(golden_idx, inputs.labels, "labels must match CPU golden");

    let device = C4camPipeline::new(s.clone())
        .compile(built.module.clone())
        .unwrap();
    let out = assert_engines_agree(&device.module, &s, "dtree", &args);
    assert_eq!(
        out[1].as_tensor().unwrap().data(),
        golden[1].as_tensor().unwrap().data(),
        "dtree indices diverged"
    );
}

#[test]
fn gpu_workload_engines_agree() {
    // The GPU-comparison workload shape (§IV-B,
    // [`GpuComparisonWorkload`]): the paper's 10-class HDC classifier
    // with largest-dot selection, scaled down in dims.
    use c4cam::workloads::{GpuComparisonWorkload, HdcWorkload, Workload};
    let s = spec(32, Optimization::Base);
    let workload = GpuComparisonWorkload {
        hdc: HdcWorkload {
            classes: 10,
            dims: 512,
            queries: 6,
            flip_rate: 0.1,
            seed: 42,
        },
        gpu: c4cam::workloads::GpuModel::rtx6000(),
    };
    let built = workload.build_module(&s);
    let inputs = workload.inputs(&s);
    // HDC-shaped torch kernels take (queries, stored).
    let args = [Value::Tensor(inputs.queries), Value::Tensor(inputs.stored)];
    let golden = Executor::new(&built.module).run("forward", &args).unwrap();

    let device = C4camPipeline::new(s.clone())
        .compile(built.module.clone())
        .unwrap();
    let out = assert_engines_agree(&device.module, &s, "forward", &args);
    assert_eq!(
        out[1].as_tensor().unwrap().data(),
        golden[1].as_tensor().unwrap().data(),
        "gpu-workload indices diverged"
    );
}

#[test]
fn dataset_workload_engines_agree_on_the_fixture() {
    // Real data through the full stack: the committed mini-MNIST
    // fixture, adapted by `DatasetWorkload`, must classify identically
    // on the walker, the sequential tape, and the sharded tape — and
    // the CAM result must equal the CPU reference classifier row for
    // row (the reductions are exact over the integer level grid, so
    // agreement is exact, not approximate).
    use c4cam::datasets::{Dataset, DatasetTask, DatasetWorkload};
    use c4cam::workloads::{nearest_rows_cpu, Workload};
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/data/mini-mnist");
    let dataset = Dataset::load(&fixture, None).unwrap();
    for (task, bits) in [
        (DatasetTask::Hdc, 1u32),
        (DatasetTask::Hdc, 2),
        (DatasetTask::Knn, 2),
    ] {
        let s = ArchSpec::builder()
            .subarray(16, 16)
            .hierarchy(2, 2, 4)
            .bits_per_cell(bits)
            .cam_kind(if bits > 1 {
                c4cam::arch::CamKind::Mcam
            } else {
                c4cam::arch::CamKind::Tcam
            })
            .build()
            .unwrap();
        let workload = DatasetWorkload::new(dataset.clone(), task, Some(10)).unwrap();
        let built = workload.build_module(&s);
        let inputs = workload.inputs(&s);
        let cpu = nearest_rows_cpu(&inputs.stored, &inputs.queries);
        let args = [Value::Tensor(inputs.stored), Value::Tensor(inputs.queries)];

        let device = C4camPipeline::new(s.clone())
            .compile(built.module.clone())
            .unwrap();
        let out = assert_engines_agree(&device.module, &s, built.func, &args);
        let device_idx: Vec<usize> = out[1]
            .as_tensor()
            .unwrap()
            .data()
            .iter()
            .map(|&v| v as usize)
            .collect();
        assert_eq!(
            device_idx, cpu,
            "{task:?}/{bits}b: CAM must equal the CPU reference"
        );
    }
}

#[test]
fn multibit_mcam_equivalence() {
    let s = ArchSpec::builder()
        .subarray(16, 16)
        .hierarchy(2, 2, 4)
        .bits_per_cell(2)
        .cam_kind(c4cam::arch::CamKind::Mcam)
        .build()
        .unwrap();
    let mut m = Module::new();
    torch::build_hdc_dot_with(&mut m, 2, 4, 128, 1, true);
    // Multi-bit patterns: levels 0..=3.
    let mut stored = Vec::new();
    for c in 0..4 {
        for d in 0..128 {
            stored.push(((d * 3 + c * 5) % 4) as f32);
        }
    }
    let stored = Tensor::from_vec(vec![4, 128], stored).unwrap();
    let queries = stored.slice2d(1, 0, 2, 128).unwrap();
    let args = [Value::Tensor(queries), Value::Tensor(stored)];
    let golden = Executor::new(&m).run("forward", &args).unwrap();
    let device = C4camPipeline::new(s.clone()).compile(m).unwrap();
    let mut machine = CamMachine::new(&s);
    let out = Executor::with_machine(&device.module, &mut machine)
        .run("forward", &args)
        .unwrap();
    assert_eq!(
        out[1].as_tensor().unwrap().data(),
        golden[1].as_tensor().unwrap().data()
    );
}
