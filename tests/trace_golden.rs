//! Golden-trace tests: the `trace` backend's serialized op trace for
//! the mini-MNIST HDC workload is pinned byte-exact against a
//! committed fixture, the fixture replays to the tape backend's
//! outputs and statistics, and corrupted traces fail with clear
//! errors.
//!
//! Regenerate the fixture after an intentional trace-format or
//! cost-model change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace_golden
//! ```

use c4cam::arch::{ArchSpec, Optimization};
use c4cam::camsim::CamMachine;
use c4cam::compiler::pipeline::C4camPipeline;
use c4cam::datasets::{Dataset, DatasetTask, DatasetWorkload};
use c4cam::driver::{build_arch, Experiment};
use c4cam::engine::Trace;
use c4cam::hal::{BackendRegistry, ExecOptions};
use c4cam::runtime::Value;
use c4cam::workloads::{ArgOrder, Workload};
use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/mini_mnist_hdc.trace")
}

fn mini_mnist_hdc() -> DatasetWorkload {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/data/mini-mnist");
    let dataset = Dataset::load(&fixture, None).expect("committed fixture");
    DatasetWorkload::new(dataset, DatasetTask::Hdc, Some(2)).expect("fixture covers all classes")
}

fn spec() -> ArchSpec {
    build_arch((32, 32), (2, 2, 4), Optimization::Base, 1).unwrap()
}

/// Record the trace through the driver, exactly as `c4cam run-dataset
/// --engine trace` would.
fn record_trace() -> String {
    let workload = mini_mnist_hdc();
    let outcome = Experiment::new(&workload)
        .arch(spec())
        .backend("trace")
        .run()
        .unwrap();
    outcome.trace.expect("trace backend always records")
}

fn read_golden() -> String {
    std::fs::read_to_string(golden_path())
        .expect("committed golden trace (regenerate with UPDATE_GOLDEN=1)")
}

#[test]
fn trace_emission_is_byte_exact_against_the_committed_golden() {
    let text = record_trace();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path(), &text).unwrap();
    }
    let golden = read_golden();
    assert_eq!(
        text, golden,
        "trace emission drifted from tests/golden/mini_mnist_hdc.trace; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_trace_parses_and_round_trips_byte_exact() {
    let golden = read_golden();
    let trace = Trace::parse(&golden).unwrap();
    assert!(!trace.is_empty());
    assert_eq!(trace.to_text(), golden, "parse → to_text is not lossless");
    // A second round trip is a fixed point.
    assert_eq!(Trace::parse(&trace.to_text()).unwrap(), trace);
}

#[test]
fn replaying_the_golden_trace_reproduces_tape_outputs_and_stats() {
    let workload = mini_mnist_hdc();
    let spec = spec();
    let built = workload.build_module(&spec);
    let compiled = C4camPipeline::new(spec.clone())
        .compile(built.module)
        .unwrap();
    let inputs = workload.inputs(&spec);
    let args = match built.arg_order {
        ArgOrder::QueriesThenStored => {
            vec![Value::Tensor(inputs.queries), Value::Tensor(inputs.stored)]
        }
        ArgOrder::StoredThenQueries => {
            vec![Value::Tensor(inputs.stored), Value::Tensor(inputs.queries)]
        }
    };
    let tape = BackendRegistry::global()
        .get("tape")
        .unwrap()
        .compile(&compiled.module, built.func, &spec)
        .unwrap()
        .execute(&args, &ExecOptions::sequential())
        .unwrap();

    let trace = Trace::parse(&read_golden()).unwrap();
    let mut machine = CamMachine::new(&spec);
    let replayed = trace.replay(&mut machine).unwrap();

    assert_eq!(replayed.len(), tape.outputs.len());
    for (r, t) in replayed.iter().zip(&tape.outputs) {
        assert_eq!(
            r.snapshot_tensor().unwrap().data(),
            t.snapshot_tensor().unwrap().data(),
            "replay diverged from the tape execution"
        );
    }
    assert_eq!(
        machine.stats(),
        tape.stats,
        "replay cost model diverged from the tape execution"
    );
}

#[test]
fn corrupted_traces_are_rejected_with_clear_errors() {
    let golden = read_golden();

    let empty = Trace::parse("").unwrap_err();
    assert!(empty.to_string().contains("empty trace"), "{empty}");

    let bad_magic = Trace::parse(&golden.replacen("c4cam-trace v1", "c4cam-trace v9", 1));
    let err = bad_magic.unwrap_err().to_string();
    assert!(err.contains("bad trace magic"), "{err}");

    // Drop the end marker (and anything after it).
    let truncated = golden.split("\nend").next().unwrap();
    let err = Trace::parse(truncated).unwrap_err().to_string();
    assert!(err.contains("missing end marker"), "{err}");

    let trailing = format!("{golden}bank\n");
    let err = Trace::parse(&trailing).unwrap_err().to_string();
    assert!(err.contains("content after end marker"), "{err}");

    let unknown = "c4cam-trace v1\nteleport 0\nend\n";
    let err = Trace::parse(unknown).unwrap_err().to_string();
    assert!(err.contains("unknown trace record"), "{err}");

    // Structurally valid text whose ops reference a subarray that was
    // never allocated must fail at replay time, not corrupt the device.
    let dangling = "c4cam-trace v1\nwrite 0 0 0\nend\n";
    let trace = Trace::parse(dangling).unwrap();
    let err = trace.replay(&mut CamMachine::new(&spec())).unwrap_err();
    assert!(
        err.to_string().contains("unallocated subarray"),
        "{}",
        err.to_string()
    );
}
