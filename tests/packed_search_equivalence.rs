//! Differential property tests for the packed match planes: for every
//! `MatchKind` × `Metric` × `bits_per_cell` ∈ {1, 2} and random row
//! windows (including don't-care-padded and wildcard rows), the packed
//! [`Subarray::search`] must be **bit-identical** to the retained
//! per-cell oracle [`Subarray::search_naive`] — row sets, match flags,
//! and the raw `f64` bits of every distance.

use c4cam::arch::{MatchKind, Metric};
use c4cam::camsim::{CamCell, KernelTier, RowSelection, SearchScratch, Subarray};
use proptest::prelude::*;

const COLS: usize = 70; // crosses a u64 plane-word boundary

/// Every kernel tier this host can run, plus `None` for the default
/// (auto-detected) dispatch path. Tiers above the host's capability
/// are skipped, not failed — the unit suite covers their rejection.
fn supported_tiers() -> Vec<Option<KernelTier>> {
    let best = KernelTier::detect();
    let mut tiers = vec![None];
    for t in [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Avx512] {
        if t <= best {
            tiers.push(Some(t));
        }
    }
    tiers
}

fn assert_bit_identical(s: &mut Subarray, q: &[f32], kind: MatchKind, metric: Metric) {
    for selection in [
        RowSelection::All,
        RowSelection::Window { start: 1, len: 4 },
        RowSelection::Window {
            start: 3,
            len: usize::MAX,
        },
    ] {
        for wta in [None, Some(2)] {
            let naive = s
                .search_naive(q, kind, metric, selection, 2.0, wta)
                .unwrap()
                .clone();
            for tier in supported_tiers() {
                let mut scratch = SearchScratch::default();
                scratch.set_kernel_tier(tier).unwrap();
                let packed = s
                    .search(q, kind, metric, selection, 2.0, wta, &mut scratch)
                    .unwrap();
                assert_eq!(
                    naive.rows, packed.rows,
                    "{kind:?}/{metric:?}/{selection:?}/tier={tier:?}"
                );
                assert_eq!(
                    naive.matched, packed.matched,
                    "{kind:?}/{metric:?}/{selection:?}/tier={tier:?}"
                );
                assert_eq!(naive.distances.len(), packed.distances.len());
                for (i, (a, b)) in naive.distances.iter().zip(&packed.distances).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "distance {i} diverged under {kind:?}/{metric:?}/{selection:?}/wta={wta:?}/tier={tier:?}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

fn kinds() -> [MatchKind; 3] {
    [MatchKind::Exact, MatchKind::Threshold, MatchKind::Best]
}

fn metrics() -> [Metric; 3] {
    [Metric::Hamming, Metric::Euclidean, Metric::Dot]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binary rows (`bits_per_cell` = 1) with ragged widths (don't-care
    /// padding) and 0/1 or arbitrary-float queries.
    #[test]
    fn packed_equals_naive_on_binary_rows(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u8..2, 1..COLS), 1..8),
        qbits in proptest::collection::vec(0u8..2, COLS),
        qfloat in proptest::collection::vec(-3.0f32..3.0, 1..COLS),
    ) {
        let mut s = Subarray::new(8, COLS);
        let data: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| r.iter().map(|&b| f32::from(b)).collect())
            .collect();
        s.write_rows(0, &data, 1).unwrap();
        let qb: Vec<f32> = qbits.iter().map(|&b| f32::from(b)).collect();
        for kind in kinds() {
            for metric in metrics() {
                assert_bit_identical(&mut s, &qb, kind, metric);
                assert_bit_identical(&mut s, &qfloat, kind, metric);
            }
        }
    }

    /// Multi-bit rows (`bits_per_cell` = 2, levels 0..=3) with integral
    /// and fractional queries: exercises the level plane, the
    /// exact-integer Euclidean accumulator, and its f64 fallback.
    #[test]
    fn packed_equals_naive_on_multibit_rows(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u8..4, 1..COLS), 1..8),
        qlvl in proptest::collection::vec(0u8..4, COLS),
        qfrac in proptest::collection::vec(-4.0f32..8.0, 1..COLS),
    ) {
        let mut s = Subarray::new(8, COLS);
        let data: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| r.iter().map(|&v| v as f32).collect())
            .collect();
        s.write_rows(0, &data, 2).unwrap();
        let qi: Vec<f32> = qlvl.iter().map(|&v| v as f32).collect();
        for kind in kinds() {
            for metric in metrics() {
                assert_bit_identical(&mut s, &qi, kind, metric);
                assert_bit_identical(&mut s, &qfrac, kind, metric);
            }
        }
    }

    /// Wildcard-cell rows mixing binary bits, explicit don't-cares,
    /// multi-bit levels and analog ranges: packed rows take the plane
    /// kernels, mixed/range rows take the per-cell fallback, and the
    /// combination must still match the oracle bit for bit.
    #[test]
    fn packed_equals_naive_on_wildcard_rows(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u8..6, 1..20), 1..8),
        q in proptest::collection::vec(-2.0f32..4.0, 1..20),
    ) {
        let mut s = Subarray::new(8, 20);
        let cells: Vec<Vec<CamCell>> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, &v)| match v {
                        0 => CamCell::Zero,
                        1 => CamCell::One,
                        2 => CamCell::DontCare,
                        3 => CamCell::Multi((i % 4) as u8),
                        4 => CamCell::Range(-0.5, 1.5),
                        _ => CamCell::Range(i as f32 * 0.25, i as f32 * 0.5 + 1.0),
                    })
                    .collect()
            })
            .collect();
        s.write_cells(0, &cells).unwrap();
        for kind in kinds() {
            for metric in metrics() {
                assert_bit_identical(&mut s, &q, kind, metric);
            }
        }
    }

    /// Sparse programming: only some rows valid, searched through random
    /// windows (clamped, possibly overflowing `start + len`).
    #[test]
    fn packed_equals_naive_on_sparse_windows(
        occupied in proptest::collection::vec(any::<bool>(), 8),
        start in 0usize..10,
        len in 0usize..12,
        q in proptest::collection::vec(0.0f32..2.0, 1..16),
    ) {
        let mut s = Subarray::new(8, 16);
        for (r, &on) in occupied.iter().enumerate() {
            if on {
                let row: Vec<f32> = (0..16).map(|c| ((c + r) % 2) as f32).collect();
                s.write_rows(r, &[row], 1).unwrap();
            }
        }
        let selection = RowSelection::Window { start, len };
        for kind in kinds() {
            for metric in metrics() {
                let naive = s
                    .search_naive(&q, kind, metric, selection, 1.0, None)
                    .unwrap()
                    .clone();
                for tier in supported_tiers() {
                    let mut scratch = SearchScratch::default();
                    scratch.set_kernel_tier(tier).unwrap();
                    let packed = s
                        .search(&q, kind, metric, selection, 1.0, None, &mut scratch)
                        .unwrap();
                    prop_assert_eq!(&naive.rows, &packed.rows);
                    prop_assert_eq!(&naive.matched, &packed.matched);
                    for (a, b) in naive.distances.iter().zip(&packed.distances) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
            }
        }
    }
}
