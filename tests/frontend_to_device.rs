//! Full front-to-back flow: TorchScript *source text* through the
//! frontend, the complete pass pipeline, and the CAM simulator — the
//! end-to-end path of the paper's Fig. 3.

use c4cam::arch::ArchSpec;
use c4cam::camsim::CamMachine;
use c4cam::compiler::pipeline::C4camPipeline;
use c4cam::frontend::{parse_torchscript, FrontendConfig};
use c4cam::runtime::{Executor, Value};
use c4cam::tensor::Tensor;

const HDC_SOURCE: &str = r#"
def forward(self, input: Tensor) -> Tensor:
    others = self.weight.transpose(-2, -1)
    matmul = torch.matmul(input, (others))
    values, indices = torch.ops.aten.topk(matmul, 1, largest=True)
    return values, indices
"#;

fn class_patterns(classes: usize, dims: usize) -> Tensor {
    let mut stored = Vec::with_capacity(classes * dims);
    for c in 0..classes {
        for d in 0..dims {
            stored.push(f32::from(u8::from((d * 13 + c * 29) % 11 < 4)));
        }
    }
    Tensor::from_vec(vec![classes, dims], stored).unwrap()
}

#[test]
fn torchscript_source_to_cam_simulator() {
    let config = FrontendConfig::new()
        .input(vec![4, 192])
        .parameter("weight", vec![6, 192]);
    let lowered = parse_torchscript(HDC_SOURCE, &config).unwrap();

    let spec = ArchSpec::builder()
        .subarray(32, 32)
        .hierarchy(2, 2, 4)
        .build()
        .unwrap();

    let stored = class_patterns(6, 192);
    let mut queries = Tensor::zeros(vec![4, 192]);
    for q in 0..4 {
        let row = stored.slice2d(q + 1, 0, 1, 192).unwrap();
        queries.insert2d(&row, q, 0).unwrap();
    }
    let args = [Value::Tensor(queries), Value::Tensor(stored)];

    // Host reference straight from the frontend output.
    let host = Executor::new(&lowered.module)
        .run("forward", &args)
        .unwrap();
    let host_idx = host[1].as_tensor().unwrap().clone();
    assert_eq!(host_idx.data(), &[1.0, 2.0, 3.0, 4.0]);

    // Device execution after full lowering.
    let compiled = C4camPipeline::new(spec.clone())
        .compile(lowered.module)
        .unwrap();
    let mut machine = CamMachine::new(&spec);
    let out = Executor::with_machine(&compiled.module, &mut machine)
        .run("forward", &args)
        .unwrap();
    assert_eq!(out[1].as_tensor().unwrap().data(), host_idx.data());
    let stats = machine.stats();
    assert!(stats.search_ops >= 4 * 6, "one search per query per chunk");
    assert!(stats.total_energy_fj() > 0.0);
}

#[test]
fn knn_source_with_operators_to_device() {
    let src = r#"
def knn(self, query: Tensor) -> Tensor:
    diff = self.patterns - query
    dist = torch.norm(diff)
    values, indices = torch.topk(dist, 3, largest=False)
    return values, indices
"#;
    let config = FrontendConfig::new()
        .input(vec![1, 96])
        .parameter("patterns", vec![20, 96]);
    let lowered = parse_torchscript(src, &config).unwrap();
    assert_eq!(lowered.arg_order, vec!["query", "self.patterns"]);

    let stored = class_patterns(20, 96);
    let query = stored.slice2d(7, 0, 1, 96).unwrap();
    let args = [Value::Tensor(query), Value::Tensor(stored)];

    let host = Executor::new(&lowered.module).run("knn", &args).unwrap();
    assert_eq!(host[1].as_tensor().unwrap().data()[0], 7.0);

    let spec = ArchSpec::builder()
        .subarray(16, 16)
        .hierarchy(2, 2, 4)
        .build()
        .unwrap();
    let compiled = C4camPipeline::new(spec.clone())
        .compile(lowered.module)
        .unwrap();
    let mut machine = CamMachine::new(&spec);
    let out = Executor::with_machine(&compiled.module, &mut machine)
        .run("knn", &args)
        .unwrap();
    assert_eq!(
        out[1].as_tensor().unwrap().data(),
        host[1].as_tensor().unwrap().data()
    );
}

#[test]
fn arch_spec_file_drives_compilation() {
    // The architecture arrives as the paper's spec *file*, not code.
    let spec_text = "
cam_kind: tcam
bits_per_cell: 1
rows_per_subarray: 16
cols_per_subarray: 16
subarrays_per_array: 4
arrays_per_mat: 2
mats_per_bank: 2
banks: auto
optimization: power
";
    let spec = c4cam::arch::parse_spec(spec_text).unwrap();
    let config = FrontendConfig::new()
        .input(vec![2, 64])
        .parameter("weight", vec![4, 64]);
    let lowered = parse_torchscript(HDC_SOURCE, &config).unwrap();
    let compiled = C4camPipeline::new(spec.clone())
        .compile(lowered.module)
        .unwrap();
    let text = c4cam::ir::print::print_module(&compiled.module);
    // power optimization serializes the subarray loop.
    assert!(text.contains("scf.for"));
    assert!(text.contains("cam.search"));
}
