//! Property-based tests for the dataset subsystem: the quantizer's
//! level-alphabet guarantees across every supported `bits_per_cell`,
//! and byte-exact IDX encode/decode round trips on arbitrary shapes.

use c4cam::datasets::{encode_idx, parse_idx, IdxFile, Quantizer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // -----------------------------------------------------------------
    // Quantizer: levels always fit the alphabet, quantization is
    // monotone, and the level grid is a fixed point — for every cell
    // width the spec accepts (1..=4 bits).
    // -----------------------------------------------------------------

    #[test]
    fn quantizer_levels_fit_the_alphabet(
        bits in 1u32..5,
        lo in -1e3f64..1e3,
        width in 1e-3f64..1e6,
        values in proptest::collection::vec(-2e6f64..2e6, 1..32),
    ) {
        let q = Quantizer::with_range(bits, lo, lo + width).unwrap();
        prop_assert_eq!(q.levels(), 1u32 << bits);
        for &v in &values {
            let level = q.quantize(v);
            prop_assert!(level < (1u32 << bits), "level {} at {} bits", level, bits);
        }
    }

    #[test]
    fn quantization_is_monotone(
        bits in 1u32..5,
        lo in -1e3f64..1e3,
        width in 1e-3f64..1e6,
        a in -2e6f64..2e6,
        b in -2e6f64..2e6,
    ) {
        let q = Quantizer::with_range(bits, lo, lo + width).unwrap();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            q.quantize(small) <= q.quantize(large),
            "q({}) = {} > q({}) = {}",
            small, q.quantize(small), large, q.quantize(large)
        );
    }

    #[test]
    fn dequantize_then_quantize_is_the_identity_on_levels(
        bits in 1u32..5,
        lo in -1e3f64..1e3,
        width in 1e-3f64..1e6,
    ) {
        let q = Quantizer::with_range(bits, lo, lo + width).unwrap();
        for level in 0..q.levels() {
            let v = q.dequantize(level);
            prop_assert!(v.is_finite());
            prop_assert!(v >= lo && v <= lo + width, "{} outside the domain", v);
            prop_assert_eq!(q.quantize(v), level, "bits {}, level {}", bits, level);
        }
    }

    #[test]
    fn quantize_row_matches_scalar_quantization(
        bits in 1u32..5,
        row in proptest::collection::vec(0f64..256.0, 1..64),
    ) {
        let q = Quantizer::with_range(bits, 0.0, 255.0).unwrap();
        let quantized = q.quantize_row(&row);
        prop_assert_eq!(quantized.len(), row.len());
        for (&v, &level) in row.iter().zip(&quantized) {
            prop_assert_eq!(level, q.quantize(v) as f32);
        }
    }

    // -----------------------------------------------------------------
    // IDX container: encode/parse is a byte-exact round trip.
    // -----------------------------------------------------------------

    #[test]
    fn idx_encode_parse_round_trips(
        shape in proptest::collection::vec(1usize..6, 1..4),
        seed in 0u64..10_000,
    ) {
        let n: usize = shape.iter().product();
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let data: Vec<u8> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect();
        let file = IdxFile::new(shape, data);
        let bytes = encode_idx(&file);
        let parsed = parse_idx(&bytes).unwrap();
        prop_assert_eq!(&parsed, &file);
        // Re-encoding the parse reproduces the bytes exactly.
        prop_assert_eq!(encode_idx(&parsed), bytes);
    }
}
