//! Command-line interface logic for the `c4cam` binary.
//!
//! ```text
//! c4cam compile --arch spec.txt --source kernel.py \
//!               --input 10x8192 --param weight=10x8192 \
//!               [--emit torch|cim|cim-fused|partitioned|cam] [--canonicalize]
//! c4cam run     --arch spec.txt --source kernel.py \
//!               --input 10x8192 --param weight=10x8192 \
//!               [--data input.csv --data weight.csv | --random-seed 42]
//! c4cam place   --arch spec.txt --stored-rows N --dims D [--queries Q]
//! c4cam run     --dataset DIR|FILE.csv [--dataset-format idx|csv]
//!               [--workload hdc|knn] [--limit N] [--arch spec.txt]
//! c4cam sweep   [--workload hdc|knn|dtree|gpu] [--subarrays 16,32,...]
//!               [--opts base,power,...] [--techs default,fefet-45nm,...]
//!               [--bits 1,2] [--pareto] [--format table|json|csv]
//!               [--dataset DIR|FILE.csv [--limit N]]
//!               [--fault-rate R,R,...] [--fault-seed N]
//! c4cam accuracy --dataset DIR|FILE.csv [--dataset-format idx|csv]
//!               [--workload hdc|knn] [--limit N] [--bits 1,2]
//!               [--subarray N] [--engine NAME] [--threads N]
//!               [--fault-rate R,R,...] [--fault-seed N]
//!               [--spare-rows N] [--vote K]
//!               [--format table|json|csv]
//! c4cam serve   --dataset DIR|FILE.csv [--workload hdc|knn] [--bits B]
//!               [--subarray N] [--engine NAME] [--threads N]
//!               [--host H] [--port P] [--max-batch N] [--linger-ms MS]
//!               [--queue-depth N] [--cache-cap N]
//! c4cam loadgen --addr HOST:PORT [--requests N] [--concurrency N]
//!               [--rows-per-request N] [--mode closed|open [--rate R]]
//!               [--verify-dataset DIR|FILE.csv] [--shutdown]
//!               [--out FILE.json]
//! ```
//!
//! `--engine` names resolve through [`c4cam_hal::BackendRegistry`]
//! (`simd`, `tape`, `trace`, `walk`); `sweep` accepts a
//! comma-separated list as an extra grid axis.
//!
//! The argument parsing and command execution live here (unit-tested);
//! `src/bin/c4cam.rs` is a thin wrapper.

use crate::accuracy::{evaluate_faulty, AccuracyReport, FaultKnobs};
use crate::benchgate::{run_bench_gate, BenchGateArgs};
use crate::driver::{build_arch, DriverError, Experiment, ParseKeywordError};
use crate::service::{reference_pool_classes, DatasetPlanSource};
use crate::sweep::SweepPlan;
use c4cam_arch::tech::TechnologyModel;
use c4cam_arch::{parse_spec, ArchSpec, Optimization};
use c4cam_camsim::ExecStats;
use c4cam_core::mapping::{place, MappingProblem};
use c4cam_core::pipeline::{C4camPipeline, PipelineOptions, Target};
use c4cam_datasets::{Dataset, DatasetFormat, DatasetTask, DatasetWorkload};
use c4cam_frontend::{parse_torchscript, FrontendConfig};
use c4cam_hal::{BackendRegistry, ExecOptions};
use c4cam_ir::print::print_module;
use c4cam_runtime::Value;
use c4cam_server::protocol::PlanKey;
use c4cam_server::{AdmissionConfig, LoadMode, LoadgenConfig, ServeConfig};
use c4cam_telemetry::export::{chrome_trace, json_lines};
use c4cam_telemetry::json::num_f32 as json_f32;
use c4cam_telemetry::log::LogLevel;
use c4cam_telemetry::metrics::MetricsReport;
use c4cam_telemetry::{log as tlog, CollectingRecorder, Phase, Telemetry};
use c4cam_tensor::Tensor;
use c4cam_workloads::{DtreeWorkload, GpuComparisonWorkload, HdcWorkload, KnnWorkload, Workload};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// CLI failure: bad arguments or a failing underlying stage.
#[derive(Debug)]
pub struct CliError {
    /// Description shown to the user.
    pub message: String,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

fn cli_err(message: impl fmt::Display) -> CliError {
    CliError {
        message: message.to_string(),
    }
}

impl From<DriverError> for CliError {
    fn from(e: DriverError) -> CliError {
        cli_err(e)
    }
}

/// Which IR stage `compile` emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitStage {
    /// The torch-dialect entry IR (Fig. 4b).
    Torch,
    /// After `torch-to-cim` (Fig. 5a).
    Cim,
    /// After `cim-fuse-ops` (Fig. 5c).
    CimFused,
    /// The host-loops partitioned form (Fig. 5d).
    Partitioned,
    /// The fully mapped cam form (Fig. 6) — default.
    Cam,
}

impl FromStr for EmitStage {
    type Err = ParseKeywordError;

    fn from_str(s: &str) -> Result<EmitStage, ParseKeywordError> {
        match s {
            "torch" => Ok(EmitStage::Torch),
            "cim" => Ok(EmitStage::Cim),
            "cim-fused" => Ok(EmitStage::CimFused),
            "partitioned" => Ok(EmitStage::Partitioned),
            "cam" => Ok(EmitStage::Cam),
            _ => Err(ParseKeywordError::new(
                "--emit stage",
                s,
                &["torch", "cim", "cim-fused", "partitioned", "cam"],
            )),
        }
    }
}

impl EmitStage {
    /// Parse from the `--emit` keyword (delegates to [`FromStr`]).
    pub fn from_keyword(s: &str) -> Option<EmitStage> {
        s.parse().ok()
    }

    fn snapshot_name(self) -> &'static str {
        match self {
            EmitStage::Torch => "torch",
            EmitStage::Cim => "torch-to-cim",
            EmitStage::CimFused => "cim-fuse-ops",
            EmitStage::Partitioned => "cim-partition",
            EmitStage::Cam => "cam-map",
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub enum Command {
    /// Compile and print IR.
    Compile(CompileArgs),
    /// Compile, execute on the simulator, print results and stats.
    Run(RunArgs),
    /// Run a dataset workload end-to-end on the simulator.
    RunDataset(DatasetRunArgs),
    /// Show the placement for a problem geometry.
    Place(PlaceArgs),
    /// Run a design-space sweep over a built-in or dataset workload.
    Sweep(SweepArgs),
    /// CAM-vs-CPU accuracy evaluation on a real dataset.
    Accuracy(AccuracyArgs),
    /// Start the resident service (`c4cam serve`).
    Serve(ServeArgs),
    /// Drive a running service and report throughput/latency.
    Loadgen(LoadgenArgs),
    /// Run the perf-regression gate against the committed baseline.
    BenchGate(BenchGateArgs),
    /// Print the usage text (also `--help` / `-h`).
    Help,
}

/// Arguments of `c4cam compile`.
#[derive(Debug, Clone)]
pub struct CompileArgs {
    /// Architecture spec file path.
    pub arch: String,
    /// TorchScript source file path.
    pub source: String,
    /// Positional input shapes.
    pub inputs: Vec<Vec<i64>>,
    /// `self.<name>` parameter shapes.
    pub params: Vec<(String, Vec<i64>)>,
    /// Stage to emit.
    pub emit: EmitStage,
    /// Run the canonicalizer.
    pub canonicalize: bool,
}

/// Output format of `run`/`place` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable text (default).
    #[default]
    Text,
    /// Machine-readable JSON for scripted DSE sweeps.
    Json,
}

impl FromStr for OutputFormat {
    type Err = ParseKeywordError;

    fn from_str(s: &str) -> Result<OutputFormat, ParseKeywordError> {
        match s {
            "text" => Ok(OutputFormat::Text),
            "json" => Ok(OutputFormat::Json),
            _ => Err(ParseKeywordError::new("--format", s, &["text", "json"])),
        }
    }
}

impl OutputFormat {
    /// Parse from the `--format` keyword (delegates to [`FromStr`]).
    pub fn from_keyword(s: &str) -> Option<OutputFormat> {
        s.parse().ok()
    }
}

/// Output format of `sweep` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepFormat {
    /// Aligned text table (default).
    #[default]
    Table,
    /// Machine-readable JSON.
    Json,
    /// CSV with a stable header row.
    Csv,
}

impl FromStr for SweepFormat {
    type Err = ParseKeywordError;

    fn from_str(s: &str) -> Result<SweepFormat, ParseKeywordError> {
        match s {
            "table" => Ok(SweepFormat::Table),
            "json" => Ok(SweepFormat::Json),
            "csv" => Ok(SweepFormat::Csv),
            _ => Err(ParseKeywordError::new(
                "--format",
                s,
                &["table", "json", "csv"],
            )),
        }
    }
}

/// How much of the collected metrics a command prints after its
/// report (`--metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// No metrics output (default).
    #[default]
    None,
    /// Phase breakdown plus the top ops by host time and sim energy.
    Summary,
    /// The summary plus per-op latency percentiles, shard utilization,
    /// and final counter values.
    Full,
}

impl FromStr for MetricsMode {
    type Err = ParseKeywordError;

    fn from_str(s: &str) -> Result<MetricsMode, ParseKeywordError> {
        match s {
            "none" => Ok(MetricsMode::None),
            "summary" => Ok(MetricsMode::Summary),
            "full" => Ok(MetricsMode::Full),
            _ => Err(ParseKeywordError::new(
                "--metrics",
                s,
                &["none", "summary", "full"],
            )),
        }
    }
}

/// Telemetry configuration shared by `run`, `sweep`, and `accuracy`:
/// the recorder is enabled exactly when a trace file or a metrics
/// report was requested, so the default run pays nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryArgs {
    /// Trace output path (`--trace-out`): Chrome trace-event JSON, or
    /// JSON-lines when the path ends in `.jsonl`.
    pub trace_out: Option<String>,
    /// Metrics report appended to the command output (`--metrics`).
    pub metrics: MetricsMode,
    /// Stderr diagnostics level (`--log-level`, overriding the
    /// `C4CAM_LOG` environment variable).
    pub log_level: Option<LogLevel>,
}

/// A live recorder for one command invocation: [`TelemetrySession::start`]
/// builds the [`Telemetry`] handle the pipeline records into, and
/// [`TelemetrySession::finish`] writes the trace file and appends the
/// requested metrics report to the command output.
struct TelemetrySession {
    recorder: Option<Arc<CollectingRecorder>>,
    telemetry: Telemetry,
    args: TelemetryArgs,
}

impl TelemetrySession {
    fn start(args: &TelemetryArgs) -> TelemetrySession {
        if let Some(level) = args.log_level {
            tlog::set_level(level);
        }
        let wanted = args.trace_out.is_some() || args.metrics != MetricsMode::None;
        let (recorder, telemetry) = if wanted {
            let recorder = Arc::new(CollectingRecorder::new());
            (
                Some(Arc::clone(&recorder)),
                Telemetry::new(recorder as Arc<dyn c4cam_telemetry::Recorder>),
            )
        } else {
            (None, Telemetry::default())
        };
        TelemetrySession {
            recorder,
            telemetry,
            args: args.clone(),
        }
    }

    /// Drain the recorder: write `--trace-out` (if requested) and
    /// append the `--metrics` report to `output`.
    fn finish(self, output: &mut String) -> Result<(), CliError> {
        let Some(recorder) = self.recorder else {
            return Ok(());
        };
        let events = recorder.events();
        if let Some(path) = &self.args.trace_out {
            let text = if path.ends_with(".jsonl") {
                json_lines(&events)
            } else {
                chrome_trace(&events)
            };
            std::fs::write(path, text)
                .map_err(|e| cli_err(format!("cannot write trace file '{path}': {e}")))?;
            tlog::summary(format_args!("wrote trace to {path}"));
        }
        let report = match self.args.metrics {
            MetricsMode::None => return Ok(()),
            MetricsMode::Summary => MetricsReport::from_events(&events).render_summary(5),
            MetricsMode::Full => MetricsReport::from_events(&events).render_full(5),
        };
        if !output.is_empty() && !output.ends_with('\n') {
            output.push('\n');
        }
        output.push('\n');
        output.push_str(report.trim_end_matches('\n'));
        Ok(())
    }
}

/// Arguments of `c4cam run`.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Compilation arguments.
    pub compile: CompileArgs,
    /// CSV files supplying the runtime arguments, in `arg_order`.
    pub data: Vec<String>,
    /// Seed for synthetic 0/1 data when no CSV files are given.
    pub random_seed: u64,
    /// Execution backend name (flat `tape` by default; `walk` is the
    /// oracle) — a [`c4cam_hal::BackendRegistry`] key.
    pub engine: String,
    /// Worker threads for the tape engine (`1` = sequential). With more
    /// than one thread the batch executor shards the query loop — or,
    /// for single-query workloads, the subarray groups within a query —
    /// across `std::thread` workers.
    pub threads: usize,
    /// Report format.
    pub format: OutputFormat,
    /// Tracing/metrics/logging configuration.
    pub telemetry: TelemetryArgs,
}

/// Arguments of `c4cam run --dataset`: execute a [`DatasetWorkload`]
/// through the experiment pipeline instead of compiling a TorchScript
/// source.
#[derive(Debug, Clone)]
pub struct DatasetRunArgs {
    /// Dataset path (IDX directory or CSV file).
    pub dataset: String,
    /// Explicit dataset format (inferred from the path when `None`).
    pub dataset_format: Option<DatasetFormat>,
    /// Task keyword (`hdc` = nearest prototype, `knn` = nearest
    /// training sample).
    pub task: String,
    /// Cap on executed queries.
    pub limit: Option<usize>,
    /// Optional architecture spec file (the default [`ArchSpec`]
    /// otherwise).
    pub arch: Option<String>,
    /// Execution backend name.
    pub engine: String,
    /// Worker threads.
    pub threads: usize,
    /// Report format.
    pub format: OutputFormat,
    /// Tracing/metrics/logging configuration.
    pub telemetry: TelemetryArgs,
}

/// Arguments of `c4cam accuracy`: one dataset evaluated at each
/// requested cell width, CAM vs. the CPU reference classifier.
#[derive(Debug, Clone)]
pub struct AccuracyArgs {
    /// Dataset path (IDX directory or CSV file).
    pub dataset: String,
    /// Explicit dataset format (inferred from the path when `None`).
    pub dataset_format: Option<DatasetFormat>,
    /// Task keyword (`hdc` or `knn`).
    pub task: String,
    /// Cap on executed queries.
    pub limit: Option<usize>,
    /// Cell widths to evaluate (one report row each).
    pub bits: Vec<u32>,
    /// Square subarray size of the evaluation architecture.
    pub subarray: usize,
    /// Execution backend name.
    pub engine: String,
    /// Worker threads.
    pub threads: usize,
    /// Fault rates to evaluate (one report row per bits × rate;
    /// `[0.0]` = no injection).
    pub fault_rates: Vec<f64>,
    /// Seed of the fault-site hash streams.
    pub fault_seed: u64,
    /// Spare rows reserved per subarray for stuck-row remapping.
    pub spare_rows: usize,
    /// k-modular redundant-search voting factor (1 = off).
    pub vote: usize,
    /// Report format.
    pub format: SweepFormat,
    /// Tracing/metrics/logging configuration.
    pub telemetry: TelemetryArgs,
}

/// Arguments of `c4cam serve`: the resident service over one dataset.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// Dataset path (IDX directory or CSV file).
    pub dataset: String,
    /// Explicit dataset format (inferred from the path when `None`).
    pub dataset_format: Option<DatasetFormat>,
    /// Default task keyword (`hdc` or `knn`).
    pub task: String,
    /// Default cell width in bits.
    pub bits: u32,
    /// Default square subarray size.
    pub subarray: usize,
    /// Default execution backend name.
    pub engine: String,
    /// Worker threads per plan execution.
    pub threads: usize,
    /// Bind host.
    pub host: String,
    /// Bind port (`0` = ephemeral; the bound address is printed on
    /// startup).
    pub port: u16,
    /// Maximum rows coalesced into one batch (the compiled capacity,
    /// clamped to the query-pool size).
    pub max_batch: usize,
    /// Longest a request waits for batch-mates, milliseconds.
    pub linger_ms: u64,
    /// Maximum queued requests before `overloaded` rejections.
    pub queue_depth: usize,
    /// Maximum compiled plans kept resident.
    pub cache_cap: usize,
    /// Tracing/metrics/logging configuration.
    pub telemetry: TelemetryArgs,
}

/// Arguments of `c4cam loadgen`: drive a running service.
#[derive(Debug, Clone)]
pub struct LoadgenArgs {
    /// Server address, `host:port`.
    pub addr: String,
    /// Total requests to send.
    pub requests: usize,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Query-pool rows per request.
    pub rows_per_request: usize,
    /// Arrival mode (`closed` or `open`).
    pub mode: String,
    /// Target request rate for open-loop mode, requests/second.
    pub rate: Option<f64>,
    /// Dataset path for exact verification against the CPU reference
    /// (must be the dataset the server loaded).
    pub verify_dataset: Option<String>,
    /// Explicit dataset format (inferred from the path when `None`).
    pub dataset_format: Option<DatasetFormat>,
    /// Task keyword of the server's default plan key.
    pub task: String,
    /// Cell width of the server's default plan key.
    pub bits: u32,
    /// Subarray size of the server's default plan key.
    pub subarray: usize,
    /// Send `{"cmd":"shutdown"}` after the run.
    pub shutdown: bool,
    /// Write the JSON report to this path.
    pub out: Option<String>,
}

/// Arguments of `c4cam sweep`: the grid dimensions plus the workload
/// shape overrides. Unset shape fields fall back to the selected
/// workload's paper defaults (see [`build_sweep_workload`]); with
/// `--dataset` the workload is a [`DatasetWorkload`] and the shape is
/// fixed by the data.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Workload keyword (`hdc`, `knn`, `dtree`, `gpu`; with
    /// [`SweepArgs::dataset`], the dataset task `hdc` or `knn`).
    pub workload: String,
    /// Dataset path: sweep a dataset-backed workload instead of a
    /// synthetic one.
    pub dataset: Option<String>,
    /// Explicit dataset format (inferred from the path when `None`).
    pub dataset_format: Option<DatasetFormat>,
    /// Cap on executed dataset queries.
    pub limit: Option<usize>,
    /// Queries to simulate per grid point.
    pub queries: Option<usize>,
    /// Stored classes (hdc/gpu/dtree) or patterns (knn).
    pub classes: Option<usize>,
    /// Feature dimensionality (dtree: feature count).
    pub dims: Option<usize>,
    /// Square subarray sizes to sweep.
    pub subarrays: Vec<usize>,
    /// Optimization configurations to sweep.
    pub opts: Vec<Optimization>,
    /// Technology names to sweep (`default`, `fefet-45nm`,
    /// `cmos-16nm`).
    pub techs: Vec<String>,
    /// Bits-per-cell values to sweep.
    pub bits: Vec<u32>,
    /// Execution backend names to sweep (an extra grid axis).
    pub engines: Vec<String>,
    /// Fault rates to sweep (an extra grid axis; `[0.0]` = none).
    pub fault_rates: Vec<f64>,
    /// Seed of the fault-site hash streams for faulty grid points.
    pub fault_seed: u64,
    /// Worker threads per grid point.
    pub threads: usize,
    /// Keep only the latency/energy/area Pareto frontier.
    pub pareto: bool,
    /// Report format.
    pub format: SweepFormat,
    /// Tracing/metrics/logging configuration.
    pub telemetry: TelemetryArgs,
}

impl Default for SweepArgs {
    /// The §IV-C default sweep: the paper HDC workload over all square
    /// subarray sizes and optimization configurations.
    fn default() -> SweepArgs {
        SweepArgs {
            workload: "hdc".to_string(),
            dataset: None,
            dataset_format: None,
            limit: None,
            queries: None,
            classes: None,
            dims: None,
            subarrays: crate::sweep::DEFAULT_SUBARRAY_SIZES.to_vec(),
            opts: crate::sweep::DEFAULT_OPTIMIZATIONS.to_vec(),
            techs: vec!["default".to_string()],
            bits: vec![1],
            engines: vec!["tape".to_string()],
            fault_rates: vec![0.0],
            fault_seed: 0,
            threads: 1,
            pareto: false,
            format: SweepFormat::Table,
            telemetry: TelemetryArgs::default(),
        }
    }
}

/// Arguments of `c4cam place`.
#[derive(Debug, Clone)]
pub struct PlaceArgs {
    /// Architecture spec file path.
    pub arch: String,
    /// Stored rows.
    pub stored_rows: usize,
    /// Feature dimensionality.
    pub dims: usize,
    /// Query count.
    pub queries: usize,
    /// Report format.
    pub format: OutputFormat,
}

/// Parse a shape literal like `10x8192`.
pub fn parse_shape(text: &str) -> Result<Vec<i64>, CliError> {
    let dims: Result<Vec<i64>, _> = text.split('x').map(str::parse).collect();
    match dims {
        Ok(d) if !d.is_empty() && d.iter().all(|&x| x > 0) => Ok(d),
        _ => Err(cli_err(format!(
            "invalid shape '{text}' (expected e.g. 10x8192)"
        ))),
    }
}

/// Parse the full argument vector (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter().peekable();
    let cmd = it.next().ok_or_else(|| cli_err(usage()))?;
    let mut arch = None;
    let mut source = None;
    let mut inputs = Vec::new();
    let mut params = Vec::new();
    let mut emit: Option<EmitStage> = None;
    let mut canonicalize = false;
    let mut data = Vec::new();
    let mut random_seed: Option<u64> = None;
    let mut stored_rows = None;
    let mut dims = None;
    let mut queries: Option<usize> = None;
    let mut classes: Option<usize> = None;
    let mut engine: Option<String> = None;
    let mut threads = 1usize;
    let mut format: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut subarrays: Option<Vec<usize>> = None;
    let mut opts: Option<Vec<Optimization>> = None;
    let mut techs: Option<Vec<String>> = None;
    let mut bits: Option<Vec<u32>> = None;
    let mut pareto = false;
    let mut dataset: Option<String> = None;
    let mut dataset_format: Option<DatasetFormat> = None;
    let mut limit: Option<usize> = None;
    let mut subarray: Option<usize> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics: Option<MetricsMode> = None;
    let mut log_level: Option<LogLevel> = None;
    let mut fault_rates: Option<Vec<f64>> = None;
    let mut fault_seed: Option<u64> = None;
    let mut spare_rows: Option<usize> = None;
    let mut vote: Option<usize> = None;
    let mut host: Option<String> = None;
    let mut port: Option<u16> = None;
    let mut max_batch: Option<usize> = None;
    let mut linger_ms: Option<u64> = None;
    let mut queue_depth: Option<usize> = None;
    let mut cache_cap: Option<usize> = None;
    let mut addr: Option<String> = None;
    let mut requests: Option<usize> = None;
    let mut concurrency: Option<usize> = None;
    let mut rows_per_request: Option<usize> = None;
    let mut mode: Option<String> = None;
    let mut rate: Option<f64> = None;
    let mut verify_dataset: Option<String> = None;
    let mut shutdown = false;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut short = false;

    let next_value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                      flag: &str|
     -> Result<String, CliError> {
        it.next()
            .cloned()
            .ok_or_else(|| cli_err(format!("{flag} requires a value")))
    };

    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--arch" => arch = Some(next_value(&mut it, flag)?),
            "--source" => source = Some(next_value(&mut it, flag)?),
            "--input" => inputs.push(parse_shape(&next_value(&mut it, flag)?)?),
            "--param" => {
                let v = next_value(&mut it, flag)?;
                let (name, shape) = v
                    .split_once('=')
                    .ok_or_else(|| cli_err("--param expects name=SHAPE"))?;
                params.push((name.to_string(), parse_shape(shape)?));
            }
            "--emit" => {
                let v = next_value(&mut it, flag)?;
                emit = Some(
                    EmitStage::from_keyword(&v)
                        .ok_or_else(|| cli_err(format!("unknown --emit stage '{v}'")))?,
                );
            }
            "--canonicalize" => canonicalize = true,
            "--data" => data.push(next_value(&mut it, flag)?),
            "--random-seed" => {
                random_seed = Some(
                    next_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| cli_err("--random-seed expects an integer"))?,
                );
            }
            "--stored-rows" => {
                stored_rows = Some(
                    next_value(&mut it, flag)?
                        .parse::<usize>()
                        .map_err(|_| cli_err("--stored-rows expects an integer"))?,
                );
            }
            "--dims" => {
                dims = Some(
                    next_value(&mut it, flag)?
                        .parse::<usize>()
                        .map_err(|_| cli_err("--dims expects an integer"))?,
                );
            }
            "--queries" => {
                queries = Some(
                    next_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| cli_err("--queries expects an integer"))?,
                );
            }
            "--classes" => {
                classes = Some(
                    next_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| cli_err("--classes expects an integer"))?,
                );
            }
            "--engine" => engine = Some(next_value(&mut it, flag)?),
            "--threads" => {
                threads = next_value(&mut it, flag)?
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t >= 1)
                    .ok_or_else(|| cli_err("--threads expects a positive integer"))?;
            }
            "--format" => format = Some(next_value(&mut it, flag)?),
            "--workload" => workload = Some(next_value(&mut it, flag)?),
            "--subarrays" => {
                subarrays = Some(parse_list(
                    &next_value(&mut it, flag)?,
                    "--subarrays",
                    |v| {
                        v.parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| cli_err(format!("invalid subarray size '{v}'")))
                    },
                )?);
            }
            "--opts" => {
                opts = Some(parse_list(&next_value(&mut it, flag)?, "--opts", |v| {
                    Optimization::from_keyword(v).ok_or_else(|| {
                        cli_err(format!(
                            "unknown optimization '{v}' (expected base|power|density|power+density)"
                        ))
                    })
                })?);
            }
            "--techs" => {
                let list = parse_list(&next_value(&mut it, flag)?, "--techs", |v| {
                    // Validate eagerly; the models are rebuilt at run time.
                    parse_tech(v).map(|_| v.to_string())
                })?;
                techs = Some(list);
            }
            "--bits" => {
                bits = Some(parse_list(&next_value(&mut it, flag)?, "--bits", |v| {
                    v.parse::<u32>()
                        .ok()
                        .filter(|&b| (1..=4).contains(&b))
                        .ok_or_else(|| cli_err(format!("invalid bits-per-cell '{v}' (1..=4)")))
                })?);
            }
            "--pareto" => pareto = true,
            "--dataset" => dataset = Some(next_value(&mut it, flag)?),
            "--dataset-format" => {
                dataset_format = Some(next_value(&mut it, flag)?.parse().map_err(cli_err)?);
            }
            "--limit" => {
                limit = Some(
                    next_value(&mut it, flag)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| cli_err("--limit expects a positive integer"))?,
                );
            }
            "--subarray" => {
                subarray = Some(
                    next_value(&mut it, flag)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| cli_err("--subarray expects a positive integer"))?,
                );
            }
            "--fault-rate" => {
                fault_rates = Some(parse_list(
                    &next_value(&mut it, flag)?,
                    "--fault-rate",
                    |v| {
                        v.parse::<f64>()
                            .ok()
                            .filter(|r| r.is_finite() && (0.0..=1.0).contains(r))
                            .ok_or_else(|| {
                                cli_err(format!("invalid fault rate '{v}' (expected 0.0..=1.0)"))
                            })
                    },
                )?);
            }
            "--fault-seed" => {
                fault_seed = Some(
                    next_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| cli_err("--fault-seed expects an integer"))?,
                );
            }
            "--spare-rows" => {
                spare_rows = Some(
                    next_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| cli_err("--spare-rows expects an integer"))?,
                );
            }
            "--vote" => {
                vote = Some(
                    next_value(&mut it, flag)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&k| k >= 1)
                        .ok_or_else(|| cli_err("--vote expects a positive integer"))?,
                );
            }
            "--host" => host = Some(next_value(&mut it, flag)?),
            "--port" => {
                port = Some(
                    next_value(&mut it, flag)?
                        .parse::<u16>()
                        .map_err(|_| cli_err("--port expects 0..=65535"))?,
                );
            }
            "--max-batch" => {
                max_batch = Some(
                    next_value(&mut it, flag)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| cli_err("--max-batch expects a positive integer"))?,
                );
            }
            "--linger-ms" => {
                linger_ms = Some(
                    next_value(&mut it, flag)?
                        .parse::<u64>()
                        .map_err(|_| cli_err("--linger-ms expects an integer"))?,
                );
            }
            "--queue-depth" => {
                queue_depth = Some(
                    next_value(&mut it, flag)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| cli_err("--queue-depth expects a positive integer"))?,
                );
            }
            "--cache-cap" => {
                cache_cap = Some(
                    next_value(&mut it, flag)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| cli_err("--cache-cap expects a positive integer"))?,
                );
            }
            "--addr" => addr = Some(next_value(&mut it, flag)?),
            "--requests" => {
                requests = Some(
                    next_value(&mut it, flag)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| cli_err("--requests expects a positive integer"))?,
                );
            }
            "--concurrency" => {
                concurrency = Some(
                    next_value(&mut it, flag)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| cli_err("--concurrency expects a positive integer"))?,
                );
            }
            "--rows-per-request" => {
                rows_per_request = Some(
                    next_value(&mut it, flag)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| cli_err("--rows-per-request expects a positive integer"))?,
                );
            }
            "--mode" => mode = Some(next_value(&mut it, flag)?),
            "--rate" => {
                rate = Some(
                    next_value(&mut it, flag)?
                        .parse::<f64>()
                        .ok()
                        .filter(|r| r.is_finite() && *r > 0.0)
                        .ok_or_else(|| cli_err("--rate expects a positive number"))?,
                );
            }
            "--verify-dataset" => verify_dataset = Some(next_value(&mut it, flag)?),
            "--shutdown" => shutdown = true,
            "--out" => out = Some(next_value(&mut it, flag)?),
            "--baseline" => baseline = Some(next_value(&mut it, flag)?),
            "--short" => short = true,
            "--trace-out" => trace_out = Some(next_value(&mut it, flag)?),
            "--metrics" => {
                metrics = Some(next_value(&mut it, flag)?.parse().map_err(cli_err)?);
            }
            "--log-level" => {
                log_level = Some(next_value(&mut it, flag)?.parse().map_err(cli_err)?);
            }
            other => return Err(cli_err(format!("unknown flag '{other}'\n{}", usage()))),
        }
    }

    let require = |opt: Option<String>, name: &str| {
        opt.ok_or_else(|| cli_err(format!("missing required {name}\n{}", usage())))
    };
    let out_format = |format: Option<String>| -> Result<OutputFormat, CliError> {
        match format {
            None => Ok(OutputFormat::default()),
            Some(v) => v.parse().map_err(cli_err),
        }
    };
    // Flags are parsed in one namespace; reject cross-command ones
    // explicitly so e.g. `sweep --arch spec.txt` cannot silently sweep
    // the built-in hierarchy instead of the user's spec. Flag groups:
    // compile-ish flags belong to compile/run/place, grid flags to
    // sweep (--bits also to accuracy), dataset flags to run/sweep/
    // accuracy, --subarray to accuracy alone.
    let reject = |groups: &[&[(bool, &str)]], cmd: &str| -> Result<(), CliError> {
        for &(given, flag) in groups.iter().copied().flatten() {
            if given {
                return Err(cli_err(format!("{flag} is not supported by '{cmd}'")));
            }
        }
        Ok(())
    };
    let compile_flags: &[(bool, &str)] = &[
        (arch.is_some(), "--arch"),
        (source.is_some(), "--source"),
        (!inputs.is_empty(), "--input"),
        (!params.is_empty(), "--param"),
        (!data.is_empty(), "--data"),
        (stored_rows.is_some(), "--stored-rows"),
    ];
    let sweep_only: &[(bool, &str)] = &[
        (subarrays.is_some(), "--subarrays"),
        (opts.is_some(), "--opts"),
        (techs.is_some(), "--techs"),
        (classes.is_some(), "--classes"),
        (pareto, "--pareto"),
    ];
    let dataset_flags: &[(bool, &str)] = &[
        (dataset.is_some(), "--dataset"),
        (dataset_format.is_some(), "--dataset-format"),
        (limit.is_some(), "--limit"),
    ];
    let bits_flag: &[(bool, &str)] = &[(bits.is_some(), "--bits")];
    let subarray_flag: &[(bool, &str)] = &[(subarray.is_some(), "--subarray")];
    let workload_flag: &[(bool, &str)] = &[(workload.is_some(), "--workload")];
    // Flags that configure source compilation / synthetic data — they
    // would be silently ignored everywhere else.
    let source_run_flags: &[(bool, &str)] = &[
        (emit.is_some(), "--emit"),
        (canonicalize, "--canonicalize"),
        (random_seed.is_some(), "--random-seed"),
    ];
    // Telemetry flags belong to the executing commands (run/sweep/
    // accuracy); compile and place never execute anything to trace.
    let telemetry_flags: &[(bool, &str)] = &[
        (trace_out.is_some(), "--trace-out"),
        (metrics.is_some(), "--metrics"),
        (log_level.is_some(), "--log-level"),
    ];
    // Fault injection is a sweep/accuracy concern; the resilience
    // levers (--spare-rows/--vote) are accuracy-only.
    let fault_axis_flags: &[(bool, &str)] = &[
        (fault_rates.is_some(), "--fault-rate"),
        (fault_seed.is_some(), "--fault-seed"),
    ];
    let resilience_flags: &[(bool, &str)] = &[
        (spare_rows.is_some(), "--spare-rows"),
        (vote.is_some(), "--vote"),
    ];
    // Service-mode flag groups: server knobs belong to `serve`, client
    // knobs to `loadgen`.
    let serve_flags: &[(bool, &str)] = &[
        (host.is_some(), "--host"),
        (port.is_some(), "--port"),
        (max_batch.is_some(), "--max-batch"),
        (linger_ms.is_some(), "--linger-ms"),
        (queue_depth.is_some(), "--queue-depth"),
        (cache_cap.is_some(), "--cache-cap"),
    ];
    let loadgen_flags: &[(bool, &str)] = &[
        (addr.is_some(), "--addr"),
        (requests.is_some(), "--requests"),
        (concurrency.is_some(), "--concurrency"),
        (rows_per_request.is_some(), "--rows-per-request"),
        (mode.is_some(), "--mode"),
        (rate.is_some(), "--rate"),
        (verify_dataset.is_some(), "--verify-dataset"),
        (shutdown, "--shutdown"),
        (out.is_some(), "--out"),
    ];
    // Gate knobs belong to `bench-gate` alone (--out is shared with
    // loadgen, so it lives in that group, not here).
    let gate_flags: &[(bool, &str)] = &[(baseline.is_some(), "--baseline"), (short, "--short")];
    match cmd.as_str() {
        "compile" | "place" => {
            reject(
                &[
                    sweep_only,
                    dataset_flags,
                    bits_flag,
                    subarray_flag,
                    workload_flag,
                    telemetry_flags,
                    fault_axis_flags,
                    resilience_flags,
                    serve_flags,
                    loadgen_flags,
                    gate_flags,
                ],
                cmd,
            )?;
            if cmd == "place" {
                reject(&[source_run_flags], cmd)?;
            }
        }
        "run" => {
            reject(
                &[
                    sweep_only,
                    bits_flag,
                    subarray_flag,
                    fault_axis_flags,
                    resilience_flags,
                    serve_flags,
                    loadgen_flags,
                    gate_flags,
                ],
                cmd,
            )?;
            if dataset.is_some() {
                // A dataset run replaces the TorchScript source; only
                // --arch carries over (the spec to simulate on).
                for (given, flag) in [
                    (source.is_some(), "--source"),
                    (!inputs.is_empty(), "--input"),
                    (!params.is_empty(), "--param"),
                    (!data.is_empty(), "--data"),
                    (stored_rows.is_some(), "--stored-rows"),
                    (emit.is_some(), "--emit"),
                    (canonicalize, "--canonicalize"),
                    (random_seed.is_some(), "--random-seed"),
                ] {
                    if given {
                        return Err(cli_err(format!(
                            "{flag} is not supported by 'run --dataset' (the dataset supplies the kernel and the data)"
                        )));
                    }
                }
            } else {
                reject(&[dataset_flags, workload_flag], "run (without --dataset)")?;
            }
        }
        "sweep" => {
            reject(
                &[
                    compile_flags,
                    subarray_flag,
                    source_run_flags,
                    resilience_flags,
                    serve_flags,
                    loadgen_flags,
                    gate_flags,
                ],
                cmd,
            )?;
            if dataset.is_some() && (classes.is_some() || dims.is_some() || queries.is_some()) {
                return Err(cli_err(
                    "--classes/--dims/--queries are not supported with 'sweep --dataset' \
                     (the dataset fixes the shape; use --limit to cap queries)",
                ));
            }
        }
        "accuracy" => reject(
            &[
                compile_flags,
                sweep_only,
                source_run_flags,
                serve_flags,
                loadgen_flags,
                gate_flags,
                &[(queries.is_some(), "--queries"), (dims.is_some(), "--dims")],
            ],
            cmd,
        )?,
        "serve" => reject(
            &[
                compile_flags,
                sweep_only,
                source_run_flags,
                fault_axis_flags,
                resilience_flags,
                loadgen_flags,
                gate_flags,
                &[
                    (queries.is_some(), "--queries"),
                    (dims.is_some(), "--dims"),
                    (format.is_some(), "--format"),
                    (
                        limit.is_some(),
                        "--limit (serve keeps the whole query pool addressable)",
                    ),
                ],
            ],
            cmd,
        )?,
        "loadgen" => reject(
            &[
                compile_flags,
                sweep_only,
                source_run_flags,
                fault_axis_flags,
                resilience_flags,
                serve_flags,
                telemetry_flags,
                gate_flags,
                &[
                    (dataset.is_some(), "--dataset (use --verify-dataset)"),
                    (limit.is_some(), "--limit"),
                    (engine.is_some(), "--engine"),
                    (queries.is_some(), "--queries"),
                    (dims.is_some(), "--dims"),
                    (format.is_some(), "--format"),
                ],
            ],
            cmd,
        )?,
        "bench-gate" => reject(
            &[
                compile_flags,
                sweep_only,
                dataset_flags,
                bits_flag,
                subarray_flag,
                workload_flag,
                source_run_flags,
                telemetry_flags,
                fault_axis_flags,
                resilience_flags,
                serve_flags,
                // Loadgen's client knobs, minus --out (the gate writes
                // its measurement artifact there too).
                &[
                    (addr.is_some(), "--addr"),
                    (requests.is_some(), "--requests"),
                    (concurrency.is_some(), "--concurrency"),
                    (rows_per_request.is_some(), "--rows-per-request"),
                    (mode.is_some(), "--mode"),
                    (rate.is_some(), "--rate"),
                    (verify_dataset.is_some(), "--verify-dataset"),
                    (shutdown, "--shutdown"),
                    (queries.is_some(), "--queries"),
                    (dims.is_some(), "--dims"),
                    (format.is_some(), "--format"),
                    (engine.is_some(), "--engine"),
                ],
            ],
            cmd,
        )?,
        _ => {}
    }
    // Resolve an --engine name through the backend registry; unknown
    // names fail with the registered list.
    let resolve_engine = |name: &str| -> Result<String, CliError> {
        BackendRegistry::global().get(name).map_err(cli_err)?;
        Ok(name.to_string())
    };
    // Threaded execution needs backends whose capabilities allow it.
    let check_threads = |names: &[String], threads: usize| -> Result<(), CliError> {
        if threads > 1 {
            for name in names {
                let backend = BackendRegistry::global().get(name).map_err(cli_err)?;
                if !backend.capabilities().supports_threads {
                    return Err(cli_err(format!(
                        "--threads requires a threaded backend \
                         (the {name} backend is single-threaded)"
                    )));
                }
            }
        }
        Ok(())
    };
    let telemetry = TelemetryArgs {
        trace_out,
        metrics: metrics.unwrap_or_default(),
        log_level,
    };
    match cmd.as_str() {
        "run" if dataset.is_some() => {
            let engine = resolve_engine(engine.as_deref().unwrap_or("tape"))?;
            check_threads(std::slice::from_ref(&engine), threads)?;
            Ok(Command::RunDataset(DatasetRunArgs {
                dataset: dataset.expect("guarded"),
                dataset_format,
                task: workload.unwrap_or_else(|| "hdc".to_string()),
                limit,
                arch,
                engine,
                threads,
                format: out_format(format)?,
                telemetry,
            }))
        }
        "compile" | "run" => {
            let compile = CompileArgs {
                arch: require(arch, "--arch")?,
                source: require(source, "--source")?,
                inputs,
                params,
                emit: emit.unwrap_or(EmitStage::Cam),
                canonicalize,
            };
            if cmd == "compile" {
                Ok(Command::Compile(compile))
            } else {
                let engine = resolve_engine(engine.as_deref().unwrap_or("tape"))?;
                check_threads(std::slice::from_ref(&engine), threads)?;
                Ok(Command::Run(RunArgs {
                    compile,
                    data,
                    random_seed: random_seed.unwrap_or(42),
                    engine,
                    threads,
                    format: out_format(format)?,
                    telemetry,
                }))
            }
        }
        "accuracy" => {
            let engine = resolve_engine(engine.as_deref().unwrap_or("tape"))?;
            check_threads(std::slice::from_ref(&engine), threads)?;
            Ok(Command::Accuracy(AccuracyArgs {
                dataset: require(dataset, "--dataset")?,
                dataset_format,
                task: workload.unwrap_or_else(|| "hdc".to_string()),
                limit,
                bits: bits.unwrap_or_else(|| vec![1, 2]),
                subarray: subarray.unwrap_or(32),
                engine,
                threads,
                fault_rates: fault_rates.unwrap_or_else(|| vec![0.0]),
                fault_seed: fault_seed.unwrap_or(0),
                spare_rows: spare_rows.unwrap_or(0),
                vote: vote.unwrap_or(1),
                format: match format {
                    None => SweepFormat::default(),
                    Some(v) => v.parse().map_err(cli_err)?,
                },
                telemetry,
            }))
        }
        "place" => Ok(Command::Place(PlaceArgs {
            arch: require(arch, "--arch")?,
            stored_rows: stored_rows.ok_or_else(|| cli_err("missing --stored-rows"))?,
            dims: dims.ok_or_else(|| cli_err("missing --dims"))?,
            queries: queries.unwrap_or(1),
            format: out_format(format)?,
        })),
        "sweep" => {
            // The sweep's --engine is a comma-separated list: an
            // extra grid axis.
            let engines = match engine {
                None => vec!["tape".to_string()],
                Some(list) => parse_list(&list, "--engine", |v| resolve_engine(v))?,
            };
            check_threads(&engines, threads)?;
            let defaults = SweepArgs::default();
            Ok(Command::Sweep(SweepArgs {
                workload: workload.unwrap_or(defaults.workload),
                dataset,
                dataset_format,
                limit,
                queries,
                classes,
                dims,
                subarrays: subarrays.unwrap_or(defaults.subarrays),
                opts: opts.unwrap_or(defaults.opts),
                techs: techs.unwrap_or(defaults.techs),
                bits: bits.unwrap_or(defaults.bits),
                engines,
                fault_rates: fault_rates.unwrap_or(defaults.fault_rates),
                fault_seed: fault_seed.unwrap_or(defaults.fault_seed),
                threads,
                pareto,
                format: match format {
                    None => SweepFormat::default(),
                    Some(v) => v.parse().map_err(cli_err)?,
                },
                telemetry,
            }))
        }
        "serve" => {
            let engine = resolve_engine(engine.as_deref().unwrap_or("tape"))?;
            check_threads(std::slice::from_ref(&engine), threads)?;
            // Serve takes one default cell width, not a grid axis.
            let bits = match bits {
                None => 2,
                Some(list) if list.len() == 1 => list[0],
                Some(_) => {
                    return Err(cli_err(
                        "serve expects a single --bits value (clients override per request)",
                    ))
                }
            };
            Ok(Command::Serve(ServeArgs {
                dataset: require(dataset, "--dataset")?,
                dataset_format,
                task: workload.unwrap_or_else(|| "hdc".to_string()),
                bits,
                subarray: subarray.unwrap_or(32),
                engine,
                threads,
                host: host.unwrap_or_else(|| "127.0.0.1".to_string()),
                port: port.unwrap_or(0),
                max_batch: max_batch.unwrap_or(16),
                linger_ms: linger_ms.unwrap_or(2),
                queue_depth: queue_depth.unwrap_or(256),
                cache_cap: cache_cap.unwrap_or(8),
                telemetry,
            }))
        }
        "loadgen" => {
            let mode = mode.unwrap_or_else(|| "closed".to_string());
            match mode.as_str() {
                "closed" => {
                    if rate.is_some() {
                        return Err(cli_err("--rate is only meaningful with --mode open"));
                    }
                }
                "open" => {
                    if rate.is_none() {
                        return Err(cli_err("--mode open requires --rate"));
                    }
                }
                other => {
                    return Err(cli_err(format!(
                        "unknown --mode '{other}' (expected closed|open)"
                    )))
                }
            }
            let bits = match bits {
                None => 2,
                Some(list) if list.len() == 1 => list[0],
                Some(_) => {
                    return Err(cli_err(
                        "loadgen expects a single --bits value (the server's default key)",
                    ))
                }
            };
            Ok(Command::Loadgen(LoadgenArgs {
                addr: require(addr, "--addr")?,
                requests: requests.unwrap_or(64),
                concurrency: concurrency.unwrap_or(4),
                rows_per_request: rows_per_request.unwrap_or(1),
                mode,
                rate,
                verify_dataset,
                dataset_format,
                task: workload.unwrap_or_else(|| "hdc".to_string()),
                bits,
                subarray: subarray.unwrap_or(32),
                shutdown,
                out,
            }))
        }
        "bench-gate" => Ok(Command::BenchGate(BenchGateArgs {
            baseline: baseline.unwrap_or_else(|| "BENCH_baseline.json".to_string()),
            short,
            out,
        })),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(cli_err(format!("unknown command '{other}'\n{}", usage()))),
    }
}

/// Parse a comma-separated list with a per-item parser; empty lists
/// and empty items are rejected.
fn parse_list<T>(
    text: &str,
    flag: &str,
    mut item: impl FnMut(&str) -> Result<T, CliError>,
) -> Result<Vec<T>, CliError> {
    let items: Vec<&str> = text.split(',').map(str::trim).collect();
    if items.iter().any(|s| s.is_empty()) {
        return Err(cli_err(format!(
            "{flag} expects a non-empty comma-separated list, got '{text}'"
        )));
    }
    items.into_iter().map(&mut item).collect()
}

/// Resolve a technology keyword to a model (`None` = spec default).
fn parse_tech(name: &str) -> Result<Option<TechnologyModel>, CliError> {
    match name {
        "default" => Ok(None),
        "fefet-45nm" | "fefet" => Ok(Some(TechnologyModel::fefet_45nm())),
        "cmos-16nm" | "cmos" => Ok(Some(TechnologyModel::cmos_tcam_16nm())),
        other => Err(cli_err(format!(
            "unknown technology '{other}' (expected default|fefet-45nm|cmos-16nm)"
        ))),
    }
}

/// Usage text. The `--engine` alternatives are generated from the
/// [`BackendRegistry`], so the help stays in sync with the registered
/// backends.
pub fn usage() -> String {
    let engines = BackendRegistry::global().names().join("|");
    format!(
        "usage:\n  c4cam compile --arch SPEC --source KERNEL.py --input SHAPE [--param name=SHAPE]... [--emit torch|cim|cim-fused|partitioned|cam] [--canonicalize]\n  c4cam run     --arch SPEC --source KERNEL.py --input SHAPE [--param name=SHAPE]... [--data file.csv]... [--random-seed N] [--engine {engines}] [--threads N] [--format text|json]\n  c4cam run     --dataset DIR|FILE.csv [--dataset-format idx|csv] [--workload hdc|knn] [--limit N] [--arch SPEC] [--engine {engines}] [--threads N] [--format text|json]\n  c4cam place   --arch SPEC --stored-rows N --dims D [--queries Q] [--format text|json]\n  c4cam sweep   [--workload hdc|knn|dtree|gpu] [--queries N] [--classes N] [--dims D] [--subarrays N,N,...] [--opts base,power,density,power+density] [--techs default,fefet-45nm,cmos-16nm] [--bits 1,2] [--engine {engines},...] [--threads N] [--pareto] [--format table|json|csv] [--dataset DIR|FILE.csv [--dataset-format idx|csv] [--limit N]] [--fault-rate R,R,...] [--fault-seed N]\n  c4cam accuracy --dataset DIR|FILE.csv [--dataset-format idx|csv] [--workload hdc|knn] [--limit N] [--bits 1,2] [--subarray N] [--engine {engines}] [--threads N] [--fault-rate R,R,...] [--fault-seed N] [--spare-rows N] [--vote K] [--format table|json|csv]\n  c4cam serve   --dataset DIR|FILE.csv [--dataset-format idx|csv] [--workload hdc|knn] [--bits B] [--subarray N] [--engine {engines}] [--threads N] [--host H] [--port P] [--max-batch N] [--linger-ms MS] [--queue-depth N] [--cache-cap N]\n  c4cam loadgen --addr HOST:PORT [--requests N] [--concurrency N] [--rows-per-request N] [--mode closed|open [--rate R]] [--verify-dataset DIR|FILE.csv [--dataset-format idx|csv] [--workload hdc|knn] [--bits B] [--subarray N]] [--shutdown] [--out FILE.json]\n  c4cam bench-gate [--baseline FILE.json] [--short] [--out FILE.json]\n  c4cam help\n\nbench gate:\n  bench-gate re-runs the search/engine microbenchmark workloads in-process and fails when any is more than 25% over the committed baseline (default BENCH_baseline.json), after scaling budgets by a host-calibration anchor; bless a new baseline with UPDATE_BASELINE=1 c4cam bench-gate; --short uses the small CI measurement window and --out writes the measurements as JSON\n\nservice mode:\n  serve loads the dataset and compiles the default plan once, then answers line-delimited JSON classify requests over TCP, coalescing concurrent requests into batched device runs; loadgen drives a running server and reports sustained qps and p50/p90/p99 latency (--verify-dataset checks every response against the CPU reference exactly)\n\nfault injection (sweep/accuracy):\n  --fault-rate R,R,...       seeded device fault rates to evaluate (stuck-at + drift + transient; 0 = off)\n  --fault-seed N             seed of the deterministic fault-site hash streams\n  --spare-rows N             spare rows per subarray for stuck-row remapping (accuracy only)\n  --vote K                   k-modular redundant-search voting (accuracy only)\n\ntelemetry (run/sweep/accuracy):\n  --trace-out PATH           write a Chrome trace-event JSON (load in Perfetto / chrome://tracing); a .jsonl extension selects JSON-lines instead\n  --metrics none|summary|full  append a per-phase/per-op metrics report to the output\n  --log-level off|summary|debug  stderr diagnostics (alias for the C4CAM_LOG environment variable)"
    )
}

fn load_arch(path: &str) -> Result<ArchSpec, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| cli_err(format!("cannot read arch spec '{path}': {e}")))?;
    parse_spec(&text).map_err(cli_err)
}

fn frontend_config(args: &CompileArgs) -> FrontendConfig {
    let mut config = FrontendConfig::new();
    for shape in &args.inputs {
        config = config.input(shape.clone());
    }
    for (name, shape) in &args.params {
        config = config.parameter(name, shape.clone());
    }
    config
}

fn compile_module(
    args: &CompileArgs,
) -> Result<(c4cam_frontend::LoweredFunction, ArchSpec), CliError> {
    let spec = load_arch(&args.arch)?;
    let source = std::fs::read_to_string(&args.source)
        .map_err(|e| cli_err(format!("cannot read source '{}': {e}", args.source)))?;
    let lowered = parse_torchscript(&source, &frontend_config(args)).map_err(cli_err)?;
    Ok((lowered, spec))
}

/// Execute `compile`, returning the emitted IR text.
pub fn run_compile(args: &CompileArgs) -> Result<String, CliError> {
    let (lowered, spec) = compile_module(args)?;
    let target = if args.emit == EmitStage::Partitioned {
        Target::HostLoops
    } else {
        Target::CamDevice
    };
    let compiled = C4camPipeline::new(spec)
        .with_options(PipelineOptions {
            keep_snapshots: true,
            target,
            canonicalize: args.canonicalize,
            ..PipelineOptions::default()
        })
        .compile(lowered.module)
        .map_err(cli_err)?;
    let wanted = args.emit.snapshot_name();
    // Canonicalize runs last: when requested together with the final
    // stage, emit the canonicalized module instead of the snapshot.
    if args.canonicalize && matches!(args.emit, EmitStage::Cam | EmitStage::Partitioned) {
        return Ok(print_module(&compiled.module));
    }
    compiled
        .snapshots
        .iter()
        .find(|(n, _)| n == wanted)
        .map(|(_, text)| text.clone())
        .ok_or_else(|| cli_err(format!("stage '{wanted}' not produced")))
}

/// Result of `run`: the function outputs plus simulator statistics.
#[derive(Debug)]
pub struct RunReport {
    /// One human-readable block per function result.
    pub outputs: Vec<String>,
    /// One JSON object (`{"shape": ..., "data": ...}`) per result.
    pub outputs_json: Vec<String>,
    /// Simulator statistics.
    pub stats: ExecStats,
}

impl RunReport {
    /// Render per the requested format.
    pub fn render(&self, format: OutputFormat) -> String {
        match format {
            OutputFormat::Text => {
                let mut out = String::new();
                for line in &self.outputs {
                    out.push_str(line);
                    out.push('\n');
                }
                out.push('\n');
                out.push_str(&self.stats.to_string());
                out
            }
            OutputFormat::Json => format!(
                "{{\"results\":[{}],\"stats\":{}}}",
                self.outputs_json.join(","),
                self.stats.to_json()
            ),
        }
    }
}

/// Execute `run`.
pub fn run_run(args: &RunArgs) -> Result<RunReport, CliError> {
    run_run_with_telemetry(args, &Telemetry::default())
}

/// [`run_run`] recording into `telemetry`: the TorchScript path has no
/// placement stage, so the phases are Parse (source → torch IR),
/// Compile (pipeline + backend plan), Execute.
fn run_run_with_telemetry(args: &RunArgs, telemetry: &Telemetry) -> Result<RunReport, CliError> {
    let span = telemetry.phase(Phase::Parse);
    let parsed = compile_module(&args.compile);
    span.finish();
    let (lowered, spec) = parsed?;
    let span = telemetry.phase(Phase::Compile);
    let compiled = C4camPipeline::new(spec.clone())
        .with_options(PipelineOptions {
            canonicalize: args.compile.canonicalize,
            ..PipelineOptions::default()
        })
        .compile(lowered.module.clone())
        .map_err(cli_err)?;
    let backend = BackendRegistry::global()
        .get(&args.engine)
        .map_err(cli_err)?;
    let plan = backend
        .compile(&compiled.module, &lowered.name, &spec)
        .map_err(cli_err)?;
    span.finish();

    // Assemble runtime arguments in arg_order.
    let m = &compiled.module;
    let func = m
        .lookup_symbol(&lowered.name)
        .ok_or_else(|| cli_err("compiled function vanished"))?;
    let entry = m.op(func).regions[0][0];
    let arg_values = m.block(entry).args.clone();
    let mut values = Vec::new();
    for (i, &v) in arg_values.iter().enumerate() {
        let shape: Vec<usize> = m
            .kind(m.value_type(v))
            .shape()
            .ok_or_else(|| cli_err("non-tensor function argument"))?
            .iter()
            .map(|&d| d as usize)
            .collect();
        let tensor = if let Some(path) = args.data.get(i) {
            read_csv_tensor(path, &shape)?
        } else {
            deterministic_tensor(&shape, args.random_seed.wrapping_add(i as u64))
        };
        values.push(Value::Tensor(tensor));
    }

    let span = telemetry.phase(Phase::Execute);
    let execution = plan
        .execute(
            &values,
            &ExecOptions::sequential()
                .with_threads(args.threads)
                .with_telemetry(telemetry.clone()),
        )
        .map_err(cli_err)?;
    span.finish();
    let out = execution.outputs;
    let outputs = out
        .iter()
        .enumerate()
        .map(|(i, v)| match v.snapshot_tensor() {
            Some(t) => format!("result[{i}] shape {:?}: {:?}", t.shape(), t.data()),
            None => format!("result[{i}]: {v}"),
        })
        .collect();
    let outputs_json = out
        .iter()
        .map(|v| match v.snapshot_tensor() {
            Some(t) => format!(
                "{{\"shape\":{:?},\"data\":[{}]}}",
                t.shape(),
                t.data()
                    .iter()
                    .map(|&x| json_f32(x))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            None => format!("{{\"value\":\"{v}\"}}"),
        })
        .collect();
    Ok(RunReport {
        outputs,
        outputs_json,
        stats: execution.stats,
    })
}

/// Execute `place`, returning the printable placement summary.
pub fn run_place(args: &PlaceArgs) -> Result<String, CliError> {
    let spec = load_arch(&args.arch)?;
    let p = place(
        &spec,
        &MappingProblem {
            stored_rows: args.stored_rows,
            feature_dims: args.dims,
            queries: args.queries,
        },
    )
    .map_err(cli_err)?;
    if args.format == OutputFormat::Json {
        return Ok(format!(
            concat!(
                "{{\"stored_rows\":{},\"dims\":{},\"queries\":{},\"placement\":{{",
                "\"rows_used\":{},\"row_groups\":{},\"col_chunks\":{},",
                "\"logical_tiles\":{},\"batches_per_subarray\":{},",
                "\"physical_subarrays\":{},\"banks\":{},\"padded_rows\":{}}}}}"
            ),
            args.stored_rows,
            args.dims,
            args.queries,
            p.rows_used,
            p.row_groups,
            p.col_chunks,
            p.logical_tiles,
            p.batches_per_subarray,
            p.physical_subarrays,
            p.banks,
            p.padded_rows,
        ));
    }
    Ok(format!(
        "placement for {} stored rows x {} dims ({} queries):\n\
         \x20 rows used per group : {}\n\
         \x20 row groups          : {}\n\
         \x20 column chunks       : {}\n\
         \x20 logical tiles       : {}\n\
         \x20 batches per subarray: {}\n\
         \x20 physical subarrays  : {}\n\
         \x20 banks               : {}",
        args.stored_rows,
        args.dims,
        args.queries,
        p.rows_used,
        p.row_groups,
        p.col_chunks,
        p.logical_tiles,
        p.batches_per_subarray,
        p.physical_subarrays,
        p.banks,
    ))
}

/// Deterministic 0/1 tensor for `--random-seed` runs.
fn deterministic_tensor(shape: &[usize], seed: u64) -> Tensor {
    let n: usize = shape.iter().product();
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let data: Vec<f32> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            f32::from(u8::from(state & 1 == 1))
        })
        .collect();
    Tensor::from_vec(shape.to_vec(), data).expect("shape")
}

/// Read a CSV of floats (rows = lines) into a tensor of `shape`.
fn read_csv_tensor(path: &str, shape: &[usize]) -> Result<Tensor, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| cli_err(format!("cannot read data file '{path}': {e}")))?;
    let mut data = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        for field in line.split(',') {
            let v: f32 = field
                .trim()
                .parse()
                .map_err(|_| cli_err(format!("{path}:{}: invalid number '{field}'", lineno + 1)))?;
            data.push(v);
        }
    }
    let expected: usize = shape.iter().product();
    if data.len() != expected {
        return Err(cli_err(format!(
            "{path}: expected {expected} values for shape {shape:?}, found {}",
            data.len()
        )));
    }
    Tensor::from_vec(shape.to_vec(), data).map_err(cli_err)
}

/// Parse a dataset task keyword (`hdc`/`knn`).
fn parse_task(s: &str) -> Result<DatasetTask, CliError> {
    match s {
        "hdc" => Ok(DatasetTask::Hdc),
        "knn" => Ok(DatasetTask::Knn),
        other => Err(cli_err(format!(
            "unknown dataset --workload '{other}' (expected hdc|knn)"
        ))),
    }
}

/// Load a dataset from disk and adapt it to a [`DatasetWorkload`].
fn load_dataset_workload(
    path: &str,
    format: Option<DatasetFormat>,
    task: &str,
    limit: Option<usize>,
) -> Result<DatasetWorkload, CliError> {
    let task = parse_task(task)?;
    let dataset = Dataset::load(std::path::Path::new(path), format).map_err(cli_err)?;
    DatasetWorkload::new(dataset, task, limit).map_err(cli_err)
}

/// Execute `run --dataset`: one experiment over the dataset workload.
pub fn run_dataset(args: &DatasetRunArgs) -> Result<String, CliError> {
    run_dataset_with_telemetry(args, &Telemetry::default())
}

fn run_dataset_with_telemetry(
    args: &DatasetRunArgs,
    telemetry: &Telemetry,
) -> Result<String, CliError> {
    let workload =
        load_dataset_workload(&args.dataset, args.dataset_format, &args.task, args.limit)?;
    let spec = match &args.arch {
        Some(path) => load_arch(path)?,
        None => ArchSpec::default(),
    };
    let outcome = Experiment::new(&workload)
        .arch(spec)
        .backend(args.engine.as_str())
        .threads(args.threads)
        .telemetry(telemetry.clone())
        .run()?;
    let accuracy = workload.class_accuracy(&outcome.predictions);
    Ok(match args.format {
        OutputFormat::Text => format!(
            "dataset {} ({}): {} stored rows x {} dims, {} queries\n\
             accuracy: {:.4}\n\n{}",
            workload.dataset().name(),
            workload.name(),
            workload.stored_rows(),
            workload.dims(),
            outcome.queries,
            accuracy,
            outcome.total
        ),
        OutputFormat::Json => format!(
            concat!(
                "{{\"dataset\":\"{}\",\"task\":\"{}\",\"stored_rows\":{},",
                "\"dims\":{},\"queries\":{},\"accuracy\":{},\"stats\":{}}}"
            ),
            crate::accuracy::json_escape(workload.dataset().name()),
            workload.name(),
            workload.stored_rows(),
            workload.dims(),
            outcome.queries,
            accuracy,
            outcome.total.to_json()
        ),
    })
}

/// Execute `accuracy`: evaluate the dataset at each requested cell
/// width and render the CAM-vs-CPU report.
pub fn run_accuracy(args: &AccuracyArgs) -> Result<String, CliError> {
    run_accuracy_with_telemetry(args, &Telemetry::default())
}

fn run_accuracy_with_telemetry(
    args: &AccuracyArgs,
    telemetry: &Telemetry,
) -> Result<String, CliError> {
    let workload =
        load_dataset_workload(&args.dataset, args.dataset_format, &args.task, args.limit)?;
    let mut rows = Vec::with_capacity(args.bits.len() * args.fault_rates.len());
    for &bits in &args.bits {
        let spec = build_arch(
            (args.subarray, args.subarray),
            (4, 4, 8),
            Optimization::Base,
            bits,
        )
        .map_err(cli_err)?;
        for &rate in &args.fault_rates {
            // Rate 0 with no resilience levers is the plain fault-free
            // path (bit-identical, no fault hooks installed).
            let knobs =
                (rate > 0.0 || args.spare_rows > 0 || args.vote > 1).then_some(FaultKnobs {
                    rate,
                    seed: args.fault_seed,
                    spare_rows: args.spare_rows,
                    vote: args.vote,
                });
            rows.push(evaluate_faulty(
                &workload,
                &spec,
                &args.engine,
                args.threads,
                knobs.as_ref(),
                telemetry,
            )?);
        }
    }
    let report = AccuracyReport { rows };
    let rendered = match args.format {
        SweepFormat::Table => report.to_table(),
        SweepFormat::Json => report.to_json(),
        SweepFormat::Csv => report.to_csv(),
    };
    // The binary prints with a trailing newline of its own.
    Ok(rendered.trim_end_matches('\n').to_string())
}

/// Execute `serve`: load the dataset, precompile the default plan,
/// and run the resident service until shutdown. The bound address is
/// printed (and flushed) the moment the listener is ready, so scripts
/// can start a client as soon as the line appears.
pub fn run_serve(args: &ServeArgs) -> Result<String, CliError> {
    run_serve_with_telemetry(args, &Telemetry::default())
}

fn run_serve_with_telemetry(args: &ServeArgs, telemetry: &Telemetry) -> Result<String, CliError> {
    let dataset =
        Dataset::load(std::path::Path::new(&args.dataset), args.dataset_format).map_err(cli_err)?;
    let defaults = PlanKey {
        task: args.task.clone(),
        bits: args.bits,
        subarray: args.subarray,
        backend: args.engine.clone(),
    };
    let source = DatasetPlanSource::new(
        dataset,
        defaults,
        args.max_batch,
        args.threads,
        telemetry.clone(),
    );
    let cfg = ServeConfig {
        host: args.host.clone(),
        port: args.port,
        admission: AdmissionConfig {
            max_linger: std::time::Duration::from_millis(args.linger_ms),
            queue_depth: args.queue_depth,
        },
        cache_capacity: args.cache_cap,
        telemetry: telemetry.clone(),
    };
    let report = c4cam_server::serve(&cfg, Arc::new(source), |bound| {
        use std::io::Write as _;
        println!("listening on {bound}");
        let _ = std::io::stdout().flush();
    })
    .map_err(cli_err)?;
    Ok(report.summary())
}

/// Execute `loadgen`: probe the server, drive it, and render the
/// report (optionally writing the JSON document to `--out`).
pub fn run_loadgen(args: &LoadgenArgs) -> Result<String, CliError> {
    let (pool_size, _capacity) = c4cam_server::probe_info(&args.addr).map_err(cli_err)?;
    let expected_classes = match &args.verify_dataset {
        Some(path) => {
            let dataset =
                Dataset::load(std::path::Path::new(path), args.dataset_format).map_err(cli_err)?;
            // The backend never affects the reference (quantization
            // depends on bits; the reduction is backend-independent).
            let key = PlanKey {
                task: args.task.clone(),
                bits: args.bits,
                subarray: args.subarray,
                backend: "cpu-reference".to_string(),
            };
            let classes = reference_pool_classes(&dataset, &key).map_err(cli_err)?;
            if classes.len() != pool_size {
                return Err(cli_err(format!(
                    "--verify-dataset has a query pool of {} rows but the server reports {}; \
                     point it at the dataset the server loaded",
                    classes.len(),
                    pool_size
                )));
            }
            Some(classes)
        }
        None => None,
    };
    let mode = match args.mode.as_str() {
        "open" => LoadMode::Open {
            rate: args.rate.expect("parser guarantees --rate with open"),
        },
        _ => LoadMode::Closed,
    };
    let cfg = LoadgenConfig {
        addr: args.addr.clone(),
        requests: args.requests,
        concurrency: args.concurrency,
        rows_per_request: args.rows_per_request,
        mode,
        pool_size,
        expected_classes,
        shutdown_after: args.shutdown,
    };
    let report = c4cam_server::loadgen(&cfg).map_err(cli_err)?;
    if let Some(path) = &args.out {
        std::fs::write(path, report.to_json() + "\n")
            .map_err(|e| cli_err(format!("cannot write report '{path}': {e}")))?;
        tlog::summary(format_args!("wrote load report to {path}"));
    }
    Ok(report.summary())
}

/// Build the workload a `sweep` invocation selects, applying the shape
/// overrides over the workload's paper defaults (dataset sweeps fix
/// the shape from the data).
pub fn build_sweep_workload(args: &SweepArgs) -> Result<Box<dyn Workload>, CliError> {
    if let Some(path) = &args.dataset {
        let w = load_dataset_workload(path, args.dataset_format, &args.workload, args.limit)?;
        return Ok(Box::new(w));
    }
    match args.workload.as_str() {
        "hdc" => {
            let mut w = HdcWorkload::paper(args.queries.unwrap_or(16));
            if let Some(classes) = args.classes {
                w.classes = classes;
            }
            if let Some(dims) = args.dims {
                w.dims = dims;
            }
            Ok(Box::new(w))
        }
        "knn" => {
            let mut w = KnnWorkload::paper(args.queries.unwrap_or(4));
            if let Some(patterns) = args.classes {
                w.patterns = patterns;
            }
            if let Some(dims) = args.dims {
                w.dims = dims;
            }
            Ok(Box::new(w))
        }
        "dtree" => Ok(Box::new(DtreeWorkload::new(
            args.dims.unwrap_or(12),
            args.classes.unwrap_or(4),
            5,
            args.queries.unwrap_or(8),
            2024,
        ))),
        "gpu" => {
            let mut w = GpuComparisonWorkload::paper(args.queries.unwrap_or(16));
            if let Some(classes) = args.classes {
                w.hdc.classes = classes;
            }
            if let Some(dims) = args.dims {
                w.hdc.dims = dims;
            }
            Ok(Box::new(w))
        }
        other => Err(cli_err(format!(
            "unknown --workload '{other}' (expected hdc|knn|dtree|gpu)"
        ))),
    }
}

/// Execute `sweep`, returning the rendered report.
pub fn run_sweep(args: &SweepArgs) -> Result<String, CliError> {
    run_sweep_with_telemetry(args, &Telemetry::default())
}

fn run_sweep_with_telemetry(args: &SweepArgs, telemetry: &Telemetry) -> Result<String, CliError> {
    let workload = build_sweep_workload(args)?;
    let technologies: Result<Vec<(String, Option<TechnologyModel>)>, CliError> = args
        .techs
        .iter()
        .map(|name| Ok((name.clone(), parse_tech(name)?)))
        .collect();
    let plan = SweepPlan::new(workload.as_ref())
        .square_subarrays(args.subarrays.iter().copied())
        .optimizations(args.opts.iter().copied())
        .technologies(technologies?)
        .bits(args.bits.iter().copied())
        .backends(args.engines.iter().cloned())
        .fault_rates(args.fault_rates.iter().copied())
        .fault_seed(args.fault_seed)
        .threads(args.threads)
        .telemetry(telemetry.clone());
    let outcome = plan.run()?;
    let rendered = match args.format {
        SweepFormat::Table => outcome.to_table(args.pareto),
        SweepFormat::Json => outcome.to_json(args.pareto),
        SweepFormat::Csv => outcome.to_csv(args.pareto),
    };
    // The binary prints with a trailing newline of its own.
    Ok(rendered.trim_end_matches('\n').to_string())
}

/// Dispatch a parsed command; returns the text to print. Commands that
/// execute (run/sweep/accuracy) record into a telemetry session
/// when `--trace-out`/`--metrics` ask for it; the trace file is
/// written and the metrics report appended before returning.
pub fn execute(command: &Command) -> Result<String, CliError> {
    let traced = |targs: &TelemetryArgs,
                  run: &dyn Fn(&Telemetry) -> Result<String, CliError>|
     -> Result<String, CliError> {
        let session = TelemetrySession::start(targs);
        let mut out = run(&session.telemetry)?;
        session.finish(&mut out)?;
        Ok(out)
    };
    match command {
        Command::Compile(args) => run_compile(args),
        Command::Run(args) => traced(&args.telemetry, &|t| {
            Ok(run_run_with_telemetry(args, t)?.render(args.format))
        }),
        Command::RunDataset(args) => {
            traced(&args.telemetry, &|t| run_dataset_with_telemetry(args, t))
        }
        Command::Place(args) => run_place(args),
        Command::Sweep(args) => traced(&args.telemetry, &|t| run_sweep_with_telemetry(args, t)),
        Command::Accuracy(args) => {
            traced(&args.telemetry, &|t| run_accuracy_with_telemetry(args, t))
        }
        Command::Serve(args) => traced(&args.telemetry, &|t| run_serve_with_telemetry(args, t)),
        Command::Loadgen(args) => run_loadgen(args),
        Command::BenchGate(args) => run_bench_gate(args).map_err(cli_err),
        Command::Help => Ok(usage()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("c4cam-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path.to_string_lossy().into_owned()
    }

    const KERNEL: &str = "
def forward(self, input: Tensor) -> Tensor:
    others = self.weight.transpose(-2, -1)
    matmul = torch.matmul(input, (others))
    values, indices = torch.ops.aten.topk(matmul, 1, largest=True)
    return values, indices
";

    const SPEC: &str = "
rows_per_subarray: 16
cols_per_subarray: 16
subarrays_per_array: 4
arrays_per_mat: 2
mats_per_bank: 2
";

    #[test]
    fn shape_parsing() {
        assert_eq!(parse_shape("10x8192").unwrap(), vec![10, 8192]);
        assert_eq!(parse_shape("7").unwrap(), vec![7]);
        assert!(parse_shape("").is_err());
        assert!(parse_shape("3x").is_err());
        assert!(parse_shape("0x4").is_err());
        assert!(parse_shape("axb").is_err());
    }

    #[test]
    fn arg_parsing_compile() {
        let cmd = parse_args(&strings(&[
            "compile",
            "--arch",
            "spec.txt",
            "--source",
            "k.py",
            "--input",
            "4x64",
            "--param",
            "weight=8x64",
            "--emit",
            "cim-fused",
            "--canonicalize",
        ]))
        .unwrap();
        match cmd {
            Command::Compile(c) => {
                assert_eq!(c.arch, "spec.txt");
                assert_eq!(c.inputs, vec![vec![4, 64]]);
                assert_eq!(c.params, vec![("weight".to_string(), vec![8, 64])]);
                assert_eq!(c.emit, EmitStage::CimFused);
                assert!(c.canonicalize);
            }
            other => panic!("expected compile, got {other:?}"),
        }
    }

    #[test]
    fn arg_parsing_errors() {
        assert!(parse_args(&strings(&["frobnicate"])).is_err());
        assert!(parse_args(&strings(&["compile", "--source", "k.py"])).is_err());
        assert!(parse_args(&strings(&["compile", "--arch"])).is_err());
        assert!(parse_args(&strings(&[
            "compile", "--arch", "a", "--source", "s", "--emit", "wasm"
        ]))
        .is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn compile_emits_each_stage() {
        let spec = write_temp("spec.txt", SPEC);
        let kernel = write_temp("kernel.py", KERNEL);
        for (emit, needle) in [
            (EmitStage::Torch, "torch.matmul"),
            (EmitStage::Cim, "cim.acquire"),
            (EmitStage::CimFused, "cim.similarity"),
            (EmitStage::Partitioned, "cim.similarity_scores"),
            (EmitStage::Cam, "cam.search"),
        ] {
            let args = CompileArgs {
                arch: spec.clone(),
                source: kernel.clone(),
                inputs: vec![vec![2, 64]],
                params: vec![("weight".to_string(), vec![4, 64])],
                emit,
                canonicalize: false,
            };
            let text = run_compile(&args).unwrap();
            assert!(text.contains(needle), "{emit:?} missing {needle}");
        }
    }

    #[test]
    fn run_with_synthetic_data_reports_stats() {
        let spec = write_temp("spec2.txt", SPEC);
        let kernel = write_temp("kernel2.py", KERNEL);
        let args = RunArgs {
            compile: CompileArgs {
                arch: spec,
                source: kernel,
                inputs: vec![vec![2, 64]],
                params: vec![("weight".to_string(), vec![4, 64])],
                emit: EmitStage::Cam,
                canonicalize: false,
            },
            data: vec![],
            random_seed: 7,
            engine: "tape".to_string(),
            threads: 1,
            format: OutputFormat::Text,
            telemetry: TelemetryArgs::default(),
        };
        let report = run_run(&args).unwrap();
        assert_eq!(report.outputs.len(), 2);
        assert!(report.stats.latency_ns > 0.0);
        assert!(report.render(OutputFormat::Text).contains("latency"));
    }

    #[test]
    fn run_report_renders_json() {
        let spec = write_temp("spec_json.txt", SPEC);
        let kernel = write_temp("kernel_json.py", KERNEL);
        let args = RunArgs {
            compile: CompileArgs {
                arch: spec,
                source: kernel,
                inputs: vec![vec![2, 64]],
                params: vec![("weight".to_string(), vec![4, 64])],
                emit: EmitStage::Cam,
                canonicalize: false,
            },
            data: vec![],
            random_seed: 7,
            engine: "tape".to_string(),
            threads: 1,
            format: OutputFormat::Json,
            telemetry: TelemetryArgs::default(),
        };
        let out = execute(&Command::Run(args)).unwrap();
        assert!(out.starts_with("{\"results\":["), "{out}");
        assert!(out.contains("\"stats\":{"), "{out}");
        assert!(out.contains("\"latency_ns\":"), "{out}");
        assert!(out.ends_with('}'), "{out}");
    }

    #[test]
    fn every_registered_engine_agrees_with_walk_on_cli_runs() {
        let spec = write_temp("spec_eng.txt", SPEC);
        let kernel = write_temp("kernel_eng.py", KERNEL);
        let mk = |engine: &str| RunArgs {
            compile: CompileArgs {
                arch: spec.clone(),
                source: kernel.clone(),
                inputs: vec![vec![2, 64]],
                params: vec![("weight".to_string(), vec![4, 64])],
                emit: EmitStage::Cam,
                canonicalize: false,
            },
            data: vec![],
            random_seed: 11,
            engine: engine.to_string(),
            threads: 1,
            format: OutputFormat::Text,
            telemetry: TelemetryArgs::default(),
        };
        let walk = run_run(&mk("walk")).unwrap();
        for name in BackendRegistry::global().names() {
            let report = run_run(&mk(name)).unwrap();
            assert_eq!(walk.outputs, report.outputs, "{name}");
        }
        // Device-exact backends report identical statistics too.
        let tape = run_run(&mk("tape")).unwrap();
        let trace = run_run(&mk("trace")).unwrap();
        assert_eq!(walk.stats, tape.stats);
        assert_eq!(walk.stats, trace.stats);
    }

    #[test]
    fn run_with_csv_data() {
        let spec = write_temp("spec3.txt", SPEC);
        let kernel = write_temp("kernel3.py", KERNEL);
        // queries: 2 rows of 8; weight: 4 rows of 8.
        let q = write_temp("q.csv", "1,0,1,0,1,0,1,0\n0,1,0,1,0,1,0,1\n");
        let w = write_temp(
            "w.csv",
            "1,0,1,0,1,0,1,0\n0,1,0,1,0,1,0,1\n1,1,1,1,0,0,0,0\n0,0,0,0,1,1,1,1\n",
        );
        let args = RunArgs {
            compile: CompileArgs {
                arch: spec,
                source: kernel,
                inputs: vec![vec![2, 8]],
                params: vec![("weight".to_string(), vec![4, 8])],
                emit: EmitStage::Cam,
                canonicalize: false,
            },
            data: vec![q, w],
            random_seed: 0,
            engine: "tape".to_string(),
            threads: 1,
            format: OutputFormat::Text,
            telemetry: TelemetryArgs::default(),
        };
        let report = run_run(&args).unwrap();
        // Query 0 == weight row 0, query 1 == weight row 1.
        assert!(
            report.outputs[1].contains("[0.0, 1.0]"),
            "{:?}",
            report.outputs
        );
    }

    #[test]
    fn csv_shape_mismatch_is_reported() {
        let path = write_temp("bad.csv", "1,2,3\n");
        let e = read_csv_tensor(&path, &[2, 2]).unwrap_err();
        assert!(e.message.contains("expected 4"), "{e}");
    }

    #[test]
    fn place_reports_table1_numbers() {
        let spec = write_temp(
            "spec4.txt",
            "
rows_per_subarray: 32
cols_per_subarray: 32
subarrays_per_array: 8
arrays_per_mat: 4
mats_per_bank: 4
optimization: density
",
        );
        let out = run_place(&PlaceArgs {
            arch: spec.clone(),
            stored_rows: 10,
            dims: 8192,
            queries: 1,
            format: OutputFormat::Text,
        })
        .unwrap();
        assert!(out.contains("physical subarrays  : 86"), "{out}");
        let json = run_place(&PlaceArgs {
            arch: spec,
            stored_rows: 10,
            dims: 8192,
            queries: 1,
            format: OutputFormat::Json,
        })
        .unwrap();
        assert!(json.contains("\"physical_subarrays\":86"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    }

    #[test]
    fn threads_flag_parses_and_is_validated() {
        let cmd = parse_args(&strings(&[
            "run",
            "--arch",
            "a",
            "--source",
            "s",
            "--threads",
            "4",
        ]))
        .unwrap();
        match cmd {
            Command::Run(r) => {
                assert_eq!(r.threads, 4);
                assert_eq!(r.engine, "tape");
            }
            other => panic!("expected run, got {other:?}"),
        }
        // Zero or garbage thread counts are rejected.
        assert!(parse_args(&strings(&[
            "run",
            "--arch",
            "a",
            "--source",
            "s",
            "--threads",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&strings(&[
            "run",
            "--arch",
            "a",
            "--source",
            "s",
            "--threads",
            "many"
        ]))
        .is_err());
        // The walker oracle is single-threaded.
        assert!(parse_args(&strings(&[
            "run",
            "--arch",
            "a",
            "--source",
            "s",
            "--engine",
            "walk",
            "--threads",
            "2"
        ]))
        .is_err());
    }

    #[test]
    fn sharded_cli_run_matches_sequential() {
        let spec = write_temp("spec_thr.txt", SPEC);
        let kernel = write_temp("kernel_thr.py", KERNEL);
        let mk = |threads| RunArgs {
            compile: CompileArgs {
                arch: spec.clone(),
                source: kernel.clone(),
                inputs: vec![vec![2, 64]],
                params: vec![("weight".to_string(), vec![4, 64])],
                emit: EmitStage::Cam,
                canonicalize: false,
            },
            data: vec![],
            random_seed: 11,
            engine: "tape".to_string(),
            threads,
            format: OutputFormat::Text,
            telemetry: TelemetryArgs::default(),
        };
        let seq = run_run(&mk(1)).unwrap();
        let par = run_run(&mk(4)).unwrap();
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.stats.search_ops, par.stats.search_ops);
        assert!(
            (seq.stats.latency_ns - par.stats.latency_ns).abs()
                <= 1e-6 * seq.stats.latency_ns.max(1.0)
        );
    }

    #[test]
    fn sweep_args_parse_with_defaults() {
        let cmd = parse_args(&strings(&["sweep"])).unwrap();
        match cmd {
            Command::Sweep(s) => {
                assert_eq!(s.workload, "hdc");
                assert_eq!(s.subarrays, vec![16, 32, 64, 128, 256]);
                assert_eq!(s.opts.len(), 4);
                assert_eq!(s.techs, vec!["default".to_string()]);
                assert_eq!(s.bits, vec![1]);
                assert_eq!(s.engines, vec!["tape".to_string()]);
                assert_eq!(s.format, SweepFormat::Table);
                assert!(!s.pareto);
                assert_eq!(s.queries, None);
            }
            other => panic!("expected sweep, got {other:?}"),
        }
    }

    #[test]
    fn sweep_args_parse_with_overrides() {
        let cmd = parse_args(&strings(&[
            "sweep",
            "--workload",
            "knn",
            "--queries",
            "8",
            "--subarrays",
            "32,64",
            "--opts",
            "base,power+density",
            "--techs",
            "default,cmos-16nm",
            "--bits",
            "1,2",
            "--engine",
            "tape,simd",
            "--threads",
            "2",
            "--pareto",
            "--format",
            "csv",
        ]))
        .unwrap();
        match cmd {
            Command::Sweep(s) => {
                assert_eq!(s.workload, "knn");
                assert_eq!(s.queries, Some(8));
                assert_eq!(s.subarrays, vec![32, 64]);
                assert_eq!(s.opts, vec![Optimization::Base, Optimization::PowerDensity]);
                assert_eq!(s.techs.len(), 2);
                assert_eq!(s.bits, vec![1, 2]);
                assert_eq!(s.engines, vec!["tape".to_string(), "simd".to_string()]);
                assert_eq!(s.threads, 2);
                assert!(s.pareto);
                assert_eq!(s.format, SweepFormat::Csv);
            }
            other => panic!("expected sweep, got {other:?}"),
        }
    }

    #[test]
    fn cross_command_flags_are_rejected() {
        // sweep-only flags on run/place, and run/place flags on sweep.
        assert!(parse_args(&strings(&[
            "run", "--arch", "a", "--source", "s", "--pareto"
        ]))
        .is_err());
        assert!(parse_args(&strings(&[
            "place",
            "--arch",
            "a",
            "--stored-rows",
            "4",
            "--dims",
            "8",
            "--subarrays",
            "64"
        ]))
        .is_err());
        let e = parse_args(&strings(&["sweep", "--arch", "spec.txt"])).unwrap_err();
        assert!(e.message.contains("not supported by 'sweep'"), "{e}");
        assert!(parse_args(&strings(&["sweep", "--stored-rows", "4"])).is_err());
    }

    #[test]
    fn sweep_arg_errors_are_caught_at_parse_time() {
        // Bad list items, bad formats, bad keywords.
        assert!(parse_args(&strings(&["sweep", "--subarrays", "32,,64"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--subarrays", "0"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--opts", "fastest"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--techs", "sram-7nm"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--bits", "9"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--format", "yaml"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--threads", "0"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--engine", "walk", "--threads", "2"])).is_err());
        // Unknown workloads surface at execution time (workload
        // construction), with the keyword list in the message.
        let bad = SweepArgs {
            workload: "resnet".to_string(),
            ..SweepArgs::default()
        };
        let e = run_sweep(&bad).unwrap_err();
        assert!(e.message.contains("hdc|knn|dtree|gpu"), "{e}");
    }

    #[test]
    fn sweep_format_keywords_parse() {
        assert_eq!("table".parse::<SweepFormat>().unwrap(), SweepFormat::Table);
        assert_eq!("json".parse::<SweepFormat>().unwrap(), SweepFormat::Json);
        assert_eq!("csv".parse::<SweepFormat>().unwrap(), SweepFormat::Csv);
        let e = "yaml".parse::<SweepFormat>().unwrap_err();
        assert_eq!(
            e.to_string(),
            "unknown --format 'yaml' (expected table|json|csv)"
        );
    }

    #[test]
    fn emit_and_output_format_from_keyword_delegate_to_fromstr() {
        assert_eq!(EmitStage::from_keyword("cam"), Some(EmitStage::Cam));
        assert_eq!(EmitStage::from_keyword("wasm"), None);
        assert_eq!(
            "wasm".parse::<EmitStage>().unwrap_err().to_string(),
            "unknown --emit stage 'wasm' (expected torch|cim|cim-fused|partitioned|cam)"
        );
        assert_eq!(OutputFormat::from_keyword("json"), Some(OutputFormat::Json));
        assert_eq!(
            OutputFormat::from_keyword("csv"),
            None,
            "run/place are text|json"
        );
        assert_eq!(
            "csv".parse::<OutputFormat>().unwrap_err().to_string(),
            "unknown --format 'csv' (expected text|json)"
        );
    }

    fn fixture_path() -> String {
        concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data/mini-mnist").to_string()
    }

    #[test]
    fn accuracy_args_parse_with_defaults_and_overrides() {
        let cmd = parse_args(&strings(&["accuracy", "--dataset", "d"])).unwrap();
        match cmd {
            Command::Accuracy(a) => {
                assert_eq!(a.dataset, "d");
                assert_eq!(a.dataset_format, None);
                assert_eq!(a.task, "hdc");
                assert_eq!(a.limit, None);
                assert_eq!(a.bits, vec![1, 2]);
                assert_eq!(a.subarray, 32);
                assert_eq!(a.engine, "tape");
                assert_eq!(a.threads, 1);
                assert_eq!(a.format, SweepFormat::Table);
            }
            other => panic!("expected accuracy, got {other:?}"),
        }
        let cmd = parse_args(&strings(&[
            "accuracy",
            "--dataset",
            "d.csv",
            "--dataset-format",
            "csv",
            "--workload",
            "knn",
            "--limit",
            "16",
            "--bits",
            "1,4",
            "--subarray",
            "64",
            "--engine",
            "walk",
            "--threads",
            "1",
            "--format",
            "csv",
        ]))
        .unwrap();
        match cmd {
            Command::Accuracy(a) => {
                assert_eq!(a.dataset_format, Some(DatasetFormat::Csv));
                assert_eq!(a.task, "knn");
                assert_eq!(a.limit, Some(16));
                assert_eq!(a.bits, vec![1, 4]);
                assert_eq!(a.subarray, 64);
                assert_eq!(a.engine, "walk");
                assert_eq!(a.format, SweepFormat::Csv);
            }
            other => panic!("expected accuracy, got {other:?}"),
        }
    }

    #[test]
    fn source_run_flags_are_rejected_where_silently_ignored() {
        // --random-seed/--emit/--canonicalize configure source
        // compilation and synthetic data; commands that cannot honor
        // them must reject instead of silently ignoring.
        assert!(parse_args(&strings(&["sweep", "--random-seed", "7"])).is_err());
        assert!(parse_args(&strings(&["accuracy", "--dataset", "d", "--emit", "cam"])).is_err());
        assert!(parse_args(&strings(&["accuracy", "--dataset", "d", "--canonicalize"])).is_err());
        assert!(parse_args(&strings(&[
            "place",
            "--arch",
            "a",
            "--stored-rows",
            "4",
            "--dims",
            "8",
            "--random-seed",
            "7"
        ]))
        .is_err());
        assert!(parse_args(&strings(&["run", "--dataset", "d", "--random-seed", "7"])).is_err());
        assert!(parse_args(&strings(&["run", "--dataset", "d", "--stored-rows", "4"])).is_err());
        // The defaults still apply when the flags are absent.
        match parse_args(&strings(&["run", "--arch", "a", "--source", "s"])).unwrap() {
            Command::Run(r) => {
                assert_eq!(r.random_seed, 42);
                assert_eq!(r.compile.emit, EmitStage::Cam);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn accuracy_arg_errors_are_caught() {
        // Missing the dataset, bad formats, bad values, foreign flags.
        assert!(parse_args(&strings(&["accuracy"])).is_err());
        assert!(parse_args(&strings(&[
            "accuracy",
            "--dataset",
            "d",
            "--dataset-format",
            "npz"
        ]))
        .is_err());
        assert!(parse_args(&strings(&["accuracy", "--dataset", "d", "--limit", "0"])).is_err());
        assert!(parse_args(&strings(&["accuracy", "--dataset", "d", "--bits", "5"])).is_err());
        assert!(parse_args(&strings(&["accuracy", "--dataset", "d", "--subarray", "0"])).is_err());
        assert!(parse_args(&strings(&[
            "accuracy",
            "--dataset",
            "d",
            "--arch",
            "spec.txt"
        ]))
        .is_err());
        assert!(parse_args(&strings(&["accuracy", "--dataset", "d", "--pareto"])).is_err());
        assert!(parse_args(&strings(&[
            "accuracy",
            "--dataset",
            "d",
            "--engine",
            "walk",
            "--threads",
            "2"
        ]))
        .is_err());
        // Dataset flags stay off the other commands.
        assert!(parse_args(&strings(&[
            "place",
            "--arch",
            "a",
            "--stored-rows",
            "4",
            "--dims",
            "8",
            "--dataset",
            "d"
        ]))
        .is_err());
        assert!(parse_args(&strings(&[
            "run", "--arch", "a", "--source", "s", "--limit", "4"
        ]))
        .is_err());
        assert!(parse_args(&strings(&[
            "run",
            "--arch",
            "a",
            "--source",
            "s",
            "--subarray",
            "4"
        ]))
        .is_err());
        // An unknown task surfaces at execution time with the keyword
        // list.
        let e = run_accuracy(&AccuracyArgs {
            dataset: fixture_path(),
            dataset_format: None,
            task: "dtree".to_string(),
            limit: Some(4),
            bits: vec![1],
            subarray: 32,
            engine: "tape".to_string(),
            threads: 1,
            fault_rates: vec![0.0],
            fault_seed: 0,
            spare_rows: 0,
            vote: 1,
            format: SweepFormat::Table,
            telemetry: TelemetryArgs::default(),
        })
        .unwrap_err();
        assert!(e.message.contains("expected hdc|knn"), "{e}");
    }

    #[test]
    fn run_dataset_args_parse_and_reject_source() {
        let cmd = parse_args(&strings(&[
            "run",
            "--dataset",
            "dir",
            "--workload",
            "knn",
            "--limit",
            "8",
            "--format",
            "json",
        ]))
        .unwrap();
        match cmd {
            Command::RunDataset(r) => {
                assert_eq!(r.dataset, "dir");
                assert_eq!(r.task, "knn");
                assert_eq!(r.limit, Some(8));
                assert_eq!(r.arch, None);
                assert_eq!(r.format, OutputFormat::Json);
            }
            other => panic!("expected run --dataset, got {other:?}"),
        }
        let e = parse_args(&strings(&["run", "--dataset", "dir", "--source", "k.py"])).unwrap_err();
        assert!(e.message.contains("run --dataset"), "{e}");
    }

    #[test]
    fn accuracy_on_the_fixture_matches_cpu_exactly_in_every_format() {
        let args = |format: SweepFormat| AccuracyArgs {
            dataset: fixture_path(),
            dataset_format: None,
            task: "hdc".to_string(),
            limit: Some(16),
            bits: vec![1, 2],
            subarray: 32,
            engine: "tape".to_string(),
            threads: 1,
            fault_rates: vec![0.0],
            fault_seed: 0,
            spare_rows: 0,
            vote: 1,
            format,
            telemetry: TelemetryArgs::default(),
        };
        let csv = run_accuracy(&args(SweepFormat::Csv)).unwrap();
        assert!(csv.starts_with(crate::accuracy::CSV_HEADER), "{csv}");
        assert_eq!(csv.lines().count(), 3, "header + 2 bit widths: {csv}");
        for line in csv.lines().skip(1) {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields[0], "dataset-hdc");
            assert_eq!(fields[1], "mini-mnist");
            // cam_accuracy == cpu_accuracy and agreement == 1.
            assert_eq!(fields[9], fields[10], "{line}");
            assert_eq!(fields[11], "1", "{line}");
        }
        let table = run_accuracy(&args(SweepFormat::Table)).unwrap();
        assert!(table.contains("mini-mnist"), "{table}");
        let json = run_accuracy(&args(SweepFormat::Json)).unwrap();
        assert!(json.contains("\"agreement\":1"), "{json}");
        assert!(json.contains("\"query_phase\":{"), "{json}");
    }

    #[test]
    fn accuracy_is_bit_identical_across_engines_and_threads() {
        let mk = |engine: &str, threads| AccuracyArgs {
            dataset: fixture_path(),
            dataset_format: Some(DatasetFormat::Idx),
            task: "knn".to_string(),
            limit: Some(12),
            bits: vec![2],
            subarray: 32,
            engine: engine.to_string(),
            threads,
            fault_rates: vec![0.0],
            fault_seed: 0,
            spare_rows: 0,
            vote: 1,
            format: SweepFormat::Csv,
            telemetry: TelemetryArgs::default(),
        };
        let walk = run_accuracy(&mk("walk", 1)).unwrap();
        let tape = run_accuracy(&mk("tape", 1)).unwrap();
        let sharded = run_accuracy(&mk("tape", 4)).unwrap();
        // The engine/threads columns differ by construction. The
        // accuracy columns must be bit-identical everywhere; the
        // stats columns are bit-identical between the sequential
        // engines, and equal to the documented merge tolerance when
        // the query loop is sharded (worker stats re-sum in shard
        // order).
        let cols = |csv: &str, lo: usize, hi: usize| -> Vec<String> {
            csv.lines()
                .skip(1)
                .map(|l| {
                    let f: Vec<&str> = l.split(',').collect();
                    f[lo..hi].join("|")
                })
                .collect()
        };
        assert_eq!(cols(&walk, 9, 12), cols(&tape, 9, 12), "accuracy columns");
        assert_eq!(
            cols(&walk, 9, 12),
            cols(&sharded, 9, 12),
            "accuracy columns"
        );
        assert_eq!(cols(&walk, 12, 14), cols(&tape, 12, 14), "sequential stats");
        for (a, b) in cols(&tape, 12, 14)
            .iter()
            .flat_map(|r| r.split('|'))
            .zip(cols(&sharded, 12, 14).iter().flat_map(|r| r.split('|')))
        {
            let (a, b): (f64, f64) = (a.parse().unwrap(), b.parse().unwrap());
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn run_dataset_executes_the_fixture() {
        let text = run_dataset(&DatasetRunArgs {
            dataset: fixture_path(),
            dataset_format: None,
            task: "hdc".to_string(),
            limit: Some(8),
            arch: None,
            engine: "tape".to_string(),
            threads: 1,
            format: OutputFormat::Text,
            telemetry: TelemetryArgs::default(),
        })
        .unwrap();
        assert!(text.contains("mini-mnist"), "{text}");
        assert!(text.contains("accuracy:"), "{text}");
        let json = run_dataset(&DatasetRunArgs {
            dataset: fixture_path(),
            dataset_format: None,
            task: "knn".to_string(),
            limit: Some(8),
            arch: None,
            engine: "tape".to_string(),
            threads: 2,
            format: OutputFormat::Json,
            telemetry: TelemetryArgs::default(),
        })
        .unwrap();
        assert!(json.starts_with("{\"dataset\":\"mini-mnist\""), "{json}");
        assert!(json.contains("\"stats\":{"), "{json}");
    }

    #[test]
    fn sweep_dataset_args_parse_and_reject_shape_overrides() {
        let cmd = parse_args(&strings(&[
            "sweep",
            "--dataset",
            "dir",
            "--workload",
            "knn",
            "--limit",
            "4",
            "--subarrays",
            "32",
        ]))
        .unwrap();
        match cmd {
            Command::Sweep(s) => {
                assert_eq!(s.dataset, Some("dir".to_string()));
                assert_eq!(s.limit, Some(4));
                assert_eq!(s.workload, "knn");
            }
            other => panic!("expected sweep, got {other:?}"),
        }
        let e = parse_args(&strings(&["sweep", "--dataset", "dir", "--classes", "4"])).unwrap_err();
        assert!(e.message.contains("sweep --dataset"), "{e}");
        assert!(parse_args(&strings(&["sweep", "--dataset", "dir", "--queries", "4"])).is_err());
    }

    #[test]
    fn sweep_runs_the_dataset_fixture_end_to_end() {
        let out = run_sweep(&SweepArgs {
            workload: "hdc".to_string(),
            dataset: Some(fixture_path()),
            dataset_format: None,
            limit: Some(4),
            subarrays: vec![32],
            opts: vec![Optimization::Base],
            bits: vec![1],
            format: SweepFormat::Csv,
            ..SweepArgs::default()
        })
        .unwrap();
        assert!(out.starts_with("workload,subarray_rows"), "{out}");
        assert!(out.contains("dataset-hdc,32,32"), "{out}");
    }

    #[test]
    fn engine_and_format_flags_parse() {
        let cmd = parse_args(&strings(&[
            "run", "--arch", "a", "--source", "s", "--engine", "walk", "--format", "json",
        ]))
        .unwrap();
        match cmd {
            Command::Run(r) => {
                assert_eq!(r.engine, "walk");
                assert_eq!(r.format, OutputFormat::Json);
                assert_eq!(r.threads, 1);
            }
            other => panic!("expected run, got {other:?}"),
        }
        assert!(parse_args(&strings(&[
            "run", "--arch", "a", "--source", "s", "--engine", "jit"
        ]))
        .is_err());
        assert!(parse_args(&strings(&[
            "place",
            "--arch",
            "a",
            "--stored-rows",
            "4",
            "--dims",
            "8",
            "--format",
            "yaml"
        ]))
        .is_err());
    }

    #[test]
    fn unknown_engine_errors_list_the_registered_backends() {
        for cmd in [
            vec![
                "run", "--arch", "a", "--source", "s", "--engine", "nonsense",
            ],
            vec!["run", "--dataset", "d", "--engine", "nonsense"],
            vec!["accuracy", "--dataset", "d", "--engine", "nonsense"],
            vec!["sweep", "--engine", "nonsense"],
            vec!["sweep", "--engine", "tape,nonsense"],
        ] {
            let e = parse_args(&strings(&cmd)).unwrap_err();
            assert!(e.message.contains("unknown engine 'nonsense'"), "{e}");
            assert!(e.message.contains("simd, tape, trace, walk"), "{e}");
        }
        // The help text embeds the registry's names, so new backends
        // show up without editing the usage string.
        let help = usage();
        for name in BackendRegistry::global().names() {
            assert!(help.contains(name), "usage misses {name}: {help}");
        }
    }

    #[test]
    fn help_is_a_command_not_an_error() {
        for spelling in ["help", "--help", "-h"] {
            let cmd = parse_args(&strings(&[spelling])).unwrap();
            assert!(matches!(cmd, Command::Help), "{spelling}");
            let text = execute(&cmd).unwrap();
            for name in BackendRegistry::global().names() {
                assert!(text.contains(name), "help misses {name}");
            }
        }
    }

    #[test]
    fn telemetry_flags_parse_on_executing_commands() {
        let cmd = parse_args(&strings(&[
            "run",
            "--dataset",
            "d",
            "--trace-out",
            "/tmp/t.json",
            "--metrics",
            "summary",
            "--log-level",
            "debug",
        ]))
        .unwrap();
        match cmd {
            Command::RunDataset(r) => {
                assert_eq!(r.telemetry.trace_out.as_deref(), Some("/tmp/t.json"));
                assert_eq!(r.telemetry.metrics, MetricsMode::Summary);
                assert_eq!(r.telemetry.log_level, Some(LogLevel::Debug));
            }
            other => panic!("expected run --dataset, got {other:?}"),
        }
        match parse_args(&strings(&["sweep", "--metrics", "full"])).unwrap() {
            Command::Sweep(s) => assert_eq!(s.telemetry.metrics, MetricsMode::Full),
            other => panic!("expected sweep, got {other:?}"),
        }
        match parse_args(&strings(&[
            "accuracy",
            "--dataset",
            "d",
            "--trace-out",
            "t.jsonl",
        ]))
        .unwrap()
        {
            Command::Accuracy(a) => {
                assert_eq!(a.telemetry.trace_out.as_deref(), Some("t.jsonl"));
                assert_eq!(a.telemetry.metrics, MetricsMode::None);
            }
            other => panic!("expected accuracy, got {other:?}"),
        }
        // Defaults: telemetry fully off.
        match parse_args(&strings(&["run", "--arch", "a", "--source", "s"])).unwrap() {
            Command::Run(r) => assert_eq!(r.telemetry, TelemetryArgs::default()),
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_flags_are_rejected_on_non_executing_commands() {
        for flags in [
            vec![
                "compile",
                "--arch",
                "a",
                "--source",
                "s",
                "--trace-out",
                "t",
            ],
            vec![
                "compile",
                "--arch",
                "a",
                "--source",
                "s",
                "--metrics",
                "summary",
            ],
            vec![
                "place",
                "--arch",
                "a",
                "--stored-rows",
                "4",
                "--dims",
                "8",
                "--log-level",
                "debug",
            ],
        ] {
            let e = parse_args(&strings(&flags)).unwrap_err();
            assert!(e.message.contains("is not supported by"), "{e}");
        }
        // Bad keyword values fail at parse time.
        assert!(parse_args(&strings(&["sweep", "--metrics", "yaml"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--log-level", "verbose"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--trace-out"])).is_err());
    }

    #[test]
    fn dataset_run_writes_a_chrome_trace_and_appends_metrics() {
        let dir = std::env::temp_dir().join("c4cam-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("run-trace.json");
        let cmd = Command::RunDataset(DatasetRunArgs {
            dataset: fixture_path(),
            dataset_format: None,
            task: "hdc".to_string(),
            limit: Some(4),
            arch: None,
            engine: "tape".to_string(),
            threads: 1,
            format: OutputFormat::Text,
            telemetry: TelemetryArgs {
                trace_out: Some(trace.to_string_lossy().into_owned()),
                metrics: MetricsMode::Summary,
                log_level: None,
            },
        });
        let out = execute(&cmd).unwrap();
        // The metrics report rides after the normal report.
        assert!(out.contains("accuracy:"), "{out}");
        assert!(out.contains("phase breakdown"), "{out}");
        assert!(out.contains("Execute"), "{out}");
        // The trace file is a Chrome trace with all four phase spans.
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["), "{text}");
        for phase in Phase::ALL {
            assert!(
                text.contains(&format!("\"name\":\"{}\"", phase.name())),
                "missing {phase} in {text}"
            );
        }
        assert!(text.contains("\"cat\":\"op\""), "per-op spans: {text}");
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn jsonl_trace_extension_selects_json_lines() {
        let dir = std::env::temp_dir().join("c4cam-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("run-trace.jsonl");
        let cmd = Command::RunDataset(DatasetRunArgs {
            dataset: fixture_path(),
            dataset_format: None,
            task: "hdc".to_string(),
            limit: Some(4),
            arch: None,
            engine: "tape".to_string(),
            threads: 1,
            format: OutputFormat::Text,
            telemetry: TelemetryArgs {
                trace_out: Some(trace.to_string_lossy().into_owned()),
                metrics: MetricsMode::None,
                log_level: None,
            },
        });
        execute(&cmd).unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("{\"type\":\""), "{first}");
        assert!(text.lines().any(|l| l.contains("\"name\":\"Execute\"")));
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn torchscript_run_records_parse_compile_execute_phases() {
        let spec = write_temp("spec_tel.txt", SPEC);
        let kernel = write_temp("kernel_tel.py", KERNEL);
        let dir = std::env::temp_dir().join("c4cam-cli-tests");
        let trace = dir.join("ts-trace.json");
        let cmd = Command::Run(RunArgs {
            compile: CompileArgs {
                arch: spec,
                source: kernel,
                inputs: vec![vec![2, 64]],
                params: vec![("weight".to_string(), vec![4, 64])],
                emit: EmitStage::Cam,
                canonicalize: false,
            },
            data: vec![],
            random_seed: 7,
            engine: "tape".to_string(),
            threads: 1,
            format: OutputFormat::Text,
            telemetry: TelemetryArgs {
                trace_out: Some(trace.to_string_lossy().into_owned()),
                metrics: MetricsMode::Full,
                log_level: None,
            },
        });
        let out = execute(&cmd).unwrap();
        assert!(out.contains("phase breakdown"), "{out}");
        let text = std::fs::read_to_string(&trace).unwrap();
        // No placement stage on the TorchScript path.
        for phase in [Phase::Parse, Phase::Compile, Phase::Execute] {
            assert!(
                text.contains(&format!("\"name\":\"{}\"", phase.name())),
                "missing {phase} in {text}"
            );
        }
        assert!(text.contains("\"name\":\"backend:tape\""), "{text}");
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn metrics_mode_keywords_parse() {
        assert_eq!("none".parse::<MetricsMode>().unwrap(), MetricsMode::None);
        assert_eq!(
            "summary".parse::<MetricsMode>().unwrap(),
            MetricsMode::Summary
        );
        assert_eq!("full".parse::<MetricsMode>().unwrap(), MetricsMode::Full);
        let e = "yaml".parse::<MetricsMode>().unwrap_err();
        assert_eq!(
            e.to_string(),
            "unknown --metrics 'yaml' (expected none|summary|full)"
        );
    }

    #[test]
    fn fault_flags_parse_with_defaults_and_validation() {
        // Defaults: fault injection fully off.
        match parse_args(&strings(&["accuracy", "--dataset", "d"])).unwrap() {
            Command::Accuracy(a) => {
                assert_eq!(a.fault_rates, vec![0.0]);
                assert_eq!(a.fault_seed, 0);
                assert_eq!(a.spare_rows, 0);
                assert_eq!(a.vote, 1);
            }
            other => panic!("expected accuracy, got {other:?}"),
        }
        // Full override on accuracy.
        match parse_args(&strings(&[
            "accuracy",
            "--dataset",
            "d",
            "--fault-rate",
            "0,0.01,0.05",
            "--fault-seed",
            "7",
            "--spare-rows",
            "2",
            "--vote",
            "3",
        ]))
        .unwrap()
        {
            Command::Accuracy(a) => {
                assert_eq!(a.fault_rates, vec![0.0, 0.01, 0.05]);
                assert_eq!(a.fault_seed, 7);
                assert_eq!(a.spare_rows, 2);
                assert_eq!(a.vote, 3);
            }
            other => panic!("expected accuracy, got {other:?}"),
        }
        // The sweep grid takes the fault axis but not the resilience
        // levers.
        match parse_args(&strings(&[
            "sweep",
            "--fault-rate",
            "0,0.02",
            "--fault-seed",
            "9",
        ]))
        .unwrap()
        {
            Command::Sweep(s) => {
                assert_eq!(s.fault_rates, vec![0.0, 0.02]);
                assert_eq!(s.fault_seed, 9);
            }
            other => panic!("expected sweep, got {other:?}"),
        }
        let e = parse_args(&strings(&["sweep", "--spare-rows", "2"])).unwrap_err();
        assert!(e.message.contains("not supported by 'sweep'"), "{e}");
        assert!(parse_args(&strings(&["sweep", "--vote", "3"])).is_err());
        // Out-of-range and malformed values fail at parse time.
        assert!(parse_args(&strings(&[
            "accuracy",
            "--dataset",
            "d",
            "--fault-rate",
            "1.5"
        ]))
        .is_err());
        assert!(parse_args(&strings(&[
            "accuracy",
            "--dataset",
            "d",
            "--fault-rate",
            "-0.1"
        ]))
        .is_err());
        assert!(parse_args(&strings(&["accuracy", "--dataset", "d", "--vote", "0"])).is_err());
        // Commands without a device fault surface reject the flags.
        assert!(parse_args(&strings(&[
            "run",
            "--arch",
            "a",
            "--source",
            "s",
            "--fault-rate",
            "0.01"
        ]))
        .is_err());
        assert!(parse_args(&strings(&["run", "--dataset", "d", "--fault-seed", "7"])).is_err());
        assert!(parse_args(&strings(&[
            "place",
            "--arch",
            "a",
            "--stored-rows",
            "4",
            "--dims",
            "8",
            "--spare-rows",
            "1"
        ]))
        .is_err());
    }

    #[test]
    fn accuracy_reports_a_fault_rate_sweep_on_the_fixture() {
        let args = |rates: Vec<f64>| AccuracyArgs {
            dataset: fixture_path(),
            dataset_format: None,
            task: "hdc".to_string(),
            limit: Some(8),
            bits: vec![1, 2],
            subarray: 32,
            engine: "tape".to_string(),
            threads: 1,
            fault_rates: rates,
            fault_seed: 7,
            spare_rows: 1,
            vote: 1,
            format: SweepFormat::Csv,
            telemetry: TelemetryArgs::default(),
        };
        let csv = run_accuracy(&args(vec![0.0, 0.02])).unwrap();
        // One row per bits × fault rate.
        assert_eq!(csv.lines().count(), 1 + 4, "{csv}");
        let fields: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        // Columns 14..19 are the appended fault columns.
        assert_eq!(fields[0][14], "0", "rate-0 row: {csv}");
        assert_eq!(fields[1][14], "0.02", "{csv}");
        assert_eq!(fields[1][15], "7", "{csv}");
        // The faulty rows materialized fault sites; the seeded run is
        // reproducible byte for byte.
        assert!(fields[1][16].parse::<u64>().unwrap() > 0, "{csv}");
        assert_eq!(csv, run_accuracy(&args(vec![0.0, 0.02])).unwrap());
        // Agreement stays exact on the fault-free rows.
        assert_eq!(fields[0][11], "1", "{csv}");
    }

    #[test]
    fn single_threaded_engines_reject_threads_by_capability() {
        for engine in ["walk", "trace"] {
            let e = parse_args(&strings(&[
                "run",
                "--arch",
                "a",
                "--source",
                "s",
                "--engine",
                engine,
                "--threads",
                "2",
            ]))
            .unwrap_err();
            assert!(
                e.message
                    .contains(&format!("{engine} backend is single-threaded")),
                "{e}"
            );
        }
        // A threaded backend accepts the same flag.
        assert!(parse_args(&strings(&[
            "run",
            "--arch",
            "a",
            "--source",
            "s",
            "--engine",
            "simd",
            "--threads",
            "2",
        ]))
        .is_ok());
        // A sweep rejects threads if ANY selected backend is
        // single-threaded.
        assert!(parse_args(&strings(&[
            "sweep",
            "--engine",
            "tape,walk",
            "--threads",
            "2"
        ]))
        .is_err());
    }

    #[test]
    fn serve_args_parse_with_defaults_and_overrides() {
        let cmd = parse_args(&strings(&["serve", "--dataset", "d"])).unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.dataset, "d");
                assert_eq!(a.task, "hdc");
                assert_eq!(a.bits, 2);
                assert_eq!(a.subarray, 32);
                assert_eq!(a.engine, "tape");
                assert_eq!(a.host, "127.0.0.1");
                assert_eq!(a.port, 0);
                assert_eq!(a.max_batch, 16);
                assert_eq!(a.linger_ms, 2);
                assert_eq!(a.queue_depth, 256);
                assert_eq!(a.cache_cap, 8);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        let cmd = parse_args(&strings(&[
            "serve",
            "--dataset",
            "d",
            "--workload",
            "knn",
            "--bits",
            "1",
            "--subarray",
            "64",
            "--engine",
            "simd",
            "--threads",
            "4",
            "--port",
            "9000",
            "--max-batch",
            "8",
            "--linger-ms",
            "5",
            "--queue-depth",
            "32",
            "--cache-cap",
            "2",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.task, "knn");
                assert_eq!(a.bits, 1);
                assert_eq!(a.subarray, 64);
                assert_eq!(a.engine, "simd");
                assert_eq!(a.threads, 4);
                assert_eq!(a.port, 9000);
                assert_eq!(a.max_batch, 8);
                assert_eq!(a.linger_ms, 5);
                assert_eq!(a.queue_depth, 32);
                assert_eq!(a.cache_cap, 2);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_foreign_flags_grids_and_missing_dataset() {
        assert!(parse_args(&strings(&["serve"])).is_err());
        let e = parse_args(&strings(&["serve", "--dataset", "d", "--bits", "1,2"])).unwrap_err();
        assert!(e.message.contains("single --bits"), "{e}");
        for flags in [
            ["--source", "k.py"],
            ["--addr", "h:1"],
            ["--pareto", ""],
            ["--fault-rate", "0.1"],
            ["--limit", "4"],
        ] {
            let mut args = strings(&["serve", "--dataset", "d"]);
            args.push(flags[0].to_string());
            if !flags[1].is_empty() {
                args.push(flags[1].to_string());
            }
            assert!(parse_args(&args).is_err(), "{flags:?} should be rejected");
        }
    }

    #[test]
    fn loadgen_args_parse_with_defaults_modes_and_rejections() {
        let cmd = parse_args(&strings(&["loadgen", "--addr", "h:1"])).unwrap();
        match cmd {
            Command::Loadgen(a) => {
                assert_eq!(a.addr, "h:1");
                assert_eq!(a.requests, 64);
                assert_eq!(a.concurrency, 4);
                assert_eq!(a.rows_per_request, 1);
                assert_eq!(a.mode, "closed");
                assert_eq!(a.rate, None);
                assert_eq!(a.verify_dataset, None);
                assert!(!a.shutdown);
                assert_eq!(a.out, None);
            }
            other => panic!("expected Loadgen, got {other:?}"),
        }
        let cmd = parse_args(&strings(&[
            "loadgen",
            "--addr",
            "h:1",
            "--requests",
            "128",
            "--concurrency",
            "8",
            "--rows-per-request",
            "2",
            "--mode",
            "open",
            "--rate",
            "50",
            "--verify-dataset",
            "d",
            "--shutdown",
            "--out",
            "r.json",
        ]))
        .unwrap();
        match cmd {
            Command::Loadgen(a) => {
                assert_eq!(a.requests, 128);
                assert_eq!(a.concurrency, 8);
                assert_eq!(a.rows_per_request, 2);
                assert_eq!(a.mode, "open");
                assert_eq!(a.rate, Some(50.0));
                assert_eq!(a.verify_dataset.as_deref(), Some("d"));
                assert!(a.shutdown);
                assert_eq!(a.out.as_deref(), Some("r.json"));
            }
            other => panic!("expected Loadgen, got {other:?}"),
        }
        // Mode/rate pairing is validated at parse time.
        assert!(parse_args(&strings(&["loadgen", "--addr", "h:1", "--mode", "open"])).is_err());
        assert!(parse_args(&strings(&["loadgen", "--addr", "h:1", "--rate", "9"])).is_err());
        assert!(parse_args(&strings(&["loadgen", "--addr", "h:1", "--mode", "poisson"])).is_err());
        // Server knobs and --dataset don't belong to loadgen.
        assert!(parse_args(&strings(&["loadgen", "--addr", "h:1", "--port", "1"])).is_err());
        assert!(parse_args(&strings(&["loadgen", "--addr", "h:1", "--dataset", "d"])).is_err());
        // Other commands reject the service flags.
        assert!(parse_args(&strings(&["accuracy", "--dataset", "d", "--addr", "h:1"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--max-batch", "4"])).is_err());
    }

    #[test]
    fn bench_gate_args_parse_with_defaults_and_rejections() {
        let cmd = parse_args(&strings(&["bench-gate"])).unwrap();
        match cmd {
            Command::BenchGate(a) => {
                assert_eq!(a.baseline, "BENCH_baseline.json");
                assert!(!a.short);
                assert_eq!(a.out, None);
            }
            other => panic!("expected BenchGate, got {other:?}"),
        }
        let cmd = parse_args(&strings(&[
            "bench-gate",
            "--baseline",
            "b.json",
            "--short",
            "--out",
            "report.json",
        ]))
        .unwrap();
        match cmd {
            Command::BenchGate(a) => {
                assert_eq!(a.baseline, "b.json");
                assert!(a.short);
                assert_eq!(a.out.as_deref(), Some("report.json"));
            }
            other => panic!("expected BenchGate, got {other:?}"),
        }
        // Foreign flags are rejected; gate flags are rejected elsewhere.
        assert!(parse_args(&strings(&["bench-gate", "--dataset", "d"])).is_err());
        assert!(parse_args(&strings(&["bench-gate", "--addr", "h:1"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--baseline", "b.json"])).is_err());
        assert!(parse_args(&strings(&["loadgen", "--addr", "h:1", "--short"])).is_err());
        assert!(usage().contains("bench-gate"));
    }
}
