//! Design-space exploration on top of the [`Experiment`] builder
//! (paper §IV-C): a [`SweepPlan`] expands a grid over subarray geometry
//! × [`Optimization`] configuration × CAM technology × bits-per-cell
//! × execution backend, runs every grid point through the same
//! compiled pipeline, and reports the results as a table, CSV, or
//! JSON — optionally filtered to the latency/energy/area Pareto
//! frontier.
//!
//! ```no_run
//! use c4cam::sweep::SweepPlan;
//! use c4cam::workloads::HdcWorkload;
//!
//! let hdc = HdcWorkload::paper(16);
//! let outcome = SweepPlan::new(&hdc).run().unwrap();
//! println!("{}", outcome.to_table(false));
//! ```
//!
//! The `c4cam sweep` subcommand and the `design_space_exploration`
//! example are both thin wrappers over this module.

use crate::driver::{DriverError, Experiment, RunOutcome};
use c4cam_arch::tech::TechnologyModel;
use c4cam_arch::{ArchSpec, Optimization};
use c4cam_hal::FaultConfig;
use c4cam_telemetry::json::num_f64 as json_f64;
use c4cam_telemetry::{cat, Telemetry};
use c4cam_workloads::Workload;
use std::fmt;

/// One coordinate of the sweep grid: everything that varies between
/// grid points. The technology is carried by value (`None` = the
/// spec's default model) so a [`GridPoint`] fully determines its run.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// Subarray geometry `(rows, cols)`.
    pub subarray: (usize, usize),
    /// Mapping optimization configuration.
    pub optimization: Optimization,
    /// Technology name (`"default"` when [`GridPoint::tech`] is
    /// `None`).
    pub tech_name: String,
    /// Explicit technology model, if any.
    pub tech: Option<TechnologyModel>,
    /// Bits per cell (1 = TCAM, >1 = MCAM).
    pub bits_per_cell: u32,
    /// Execution backend name (resolved through
    /// [`c4cam_hal::BackendRegistry`] when the point runs).
    pub engine: String,
    /// Seeded device fault rate for this point (0 = no injection;
    /// see [`FaultConfig::with_rate`]).
    pub fault_rate: f64,
    /// Fault-stream seed shared by every faulty point of the sweep.
    pub fault_seed: u64,
}

impl GridPoint {
    /// Build the architecture for this grid point (the CAM kind
    /// follows the cell width, as in [`crate::driver::paper_arch`]).
    fn spec(&self, hierarchy: (usize, usize, usize)) -> Result<ArchSpec, DriverError> {
        crate::driver::build_arch(
            self.subarray,
            hierarchy,
            self.optimization,
            self.bits_per_cell,
        )
        .map_err(|e| DriverError::Config(format!("grid point [{self}]: {e}")))
    }
}

impl fmt::Display for GridPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}/{}/{}/{}b/{}",
            self.subarray.0,
            self.subarray.1,
            self.optimization.keyword(),
            self.tech_name,
            self.bits_per_cell,
            self.engine
        )?;
        // Fault-free points keep the historical coordinate format.
        if self.fault_rate > 0.0 {
            write!(f, "/f{}", json_f64(self.fault_rate))?;
        }
        Ok(())
    }
}

/// A grid point together with its simulated outcome.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The configuration that was run.
    pub grid: GridPoint,
    /// The full experiment outcome (placement, stats, predictions).
    pub outcome: RunOutcome,
}

impl SweepPoint {
    /// Query-phase latency per query, ns.
    pub fn latency_per_query_ns(&self) -> f64 {
        self.outcome.latency_per_query_ns()
    }

    /// Query-phase energy per query, pJ.
    pub fn energy_per_query_pj(&self) -> f64 {
        self.outcome.energy_per_query_pj()
    }

    /// Query-phase power, mW.
    pub fn power_mw(&self) -> f64 {
        self.outcome.query_phase.power_mw()
    }

    /// Provisioned CAM area in cells (physical subarrays × rows ×
    /// cols) — the area proxy of the Pareto filter. A calibrated
    /// µm²-per-cell model would only rescale this per technology.
    pub fn area_cells(&self) -> u64 {
        (self.outcome.placement.physical_subarrays * self.grid.subarray.0 * self.grid.subarray.1)
            as u64
    }

    /// The `(latency, energy, area)` objective vector the Pareto
    /// filter minimizes.
    pub fn objectives(&self) -> [f64; 3] {
        [
            self.latency_per_query_ns(),
            self.energy_per_query_pj(),
            self.area_cells() as f64,
        ]
    }
}

/// Indices of the Pareto-optimal points of `objectives` (all axes
/// minimized): a point survives unless some other point is no worse on
/// every axis and strictly better on at least one. Duplicate objective
/// vectors all survive. Indices come back in input order.
pub fn pareto_indices(objectives: &[[f64; 3]]) -> Vec<usize> {
    let dominates = |a: &[f64; 3], b: &[f64; 3]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    (0..objectives.len())
        .filter(|&i| {
            !objectives
                .iter()
                .enumerate()
                .any(|(j, o)| j != i && dominates(o, &objectives[i]))
        })
        .collect()
}

/// Results of a sweep: every grid point's outcome plus the computed
/// Pareto frontier.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Workload name the sweep ran on.
    pub workload: String,
    /// One entry per grid point, in grid expansion order.
    pub points: Vec<SweepPoint>,
    /// Indices into [`SweepOutcome::points`] on the
    /// latency/energy/area Pareto frontier, ascending.
    pub pareto: Vec<usize>,
}

impl SweepOutcome {
    /// Whether point `i` is on the Pareto frontier.
    pub fn is_pareto(&self, i: usize) -> bool {
        self.pareto.binary_search(&i).is_ok()
    }

    /// The Pareto-optimal points, in grid order.
    pub fn pareto_points(&self) -> Vec<&SweepPoint> {
        self.pareto.iter().map(|&i| &self.points[i]).collect()
    }

    fn selected(&self, pareto_only: bool) -> Vec<usize> {
        if pareto_only {
            self.pareto.clone()
        } else {
            (0..self.points.len()).collect()
        }
    }

    /// Render as an aligned text table (`pareto_only` keeps frontier
    /// points only; otherwise frontier membership is flagged).
    pub fn to_table(&self, pareto_only: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>9} {:<14} {:<12} {:>4} {:<6} {:>10} {:>6} {:>13} {:>12} {:>11} {:>12} {:>7} {:>7}\n",
            "workload",
            "subarray",
            "optimization",
            "technology",
            "bits",
            "engine",
            "subarrays",
            "banks",
            "lat/query ns",
            "E/query pJ",
            "power mW",
            "area cells",
            "fault",
            "pareto"
        ));
        for i in self.selected(pareto_only) {
            let p = &self.points[i];
            out.push_str(&format!(
                "{:<10} {:>9} {:<14} {:<12} {:>4} {:<6} {:>10} {:>6} {:>13.2} {:>12.2} {:>11.3} {:>12} {:>7.3} {:>7}\n",
                self.workload,
                format!("{}x{}", p.grid.subarray.0, p.grid.subarray.1),
                p.grid.optimization.keyword(),
                p.grid.tech_name,
                p.grid.bits_per_cell,
                p.grid.engine,
                p.outcome.placement.physical_subarrays,
                p.outcome.placement.banks,
                p.latency_per_query_ns(),
                p.energy_per_query_pj(),
                p.power_mw(),
                p.area_cells(),
                p.grid.fault_rate,
                if self.is_pareto(i) { "*" } else { "" }
            ));
        }
        out
    }

    /// Render as CSV (stable header; one row per selected point).
    pub fn to_csv(&self, pareto_only: bool) -> String {
        let mut out = String::from(
            "workload,subarray_rows,subarray_cols,optimization,technology,bits_per_cell,engine,\
             physical_subarrays,banks,latency_per_query_ns,energy_per_query_pj,power_mw,\
             area_cells,accuracy,pareto,fault_rate\n",
        );
        for i in self.selected(pareto_only) {
            let p = &self.points[i];
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                self.workload,
                p.grid.subarray.0,
                p.grid.subarray.1,
                p.grid.optimization.keyword(),
                p.grid.tech_name,
                p.grid.bits_per_cell,
                p.grid.engine,
                p.outcome.placement.physical_subarrays,
                p.outcome.placement.banks,
                json_f64(p.latency_per_query_ns()),
                json_f64(p.energy_per_query_pj()),
                json_f64(p.power_mw()),
                p.area_cells(),
                json_f64(p.outcome.accuracy()),
                self.is_pareto(i),
                json_f64(p.grid.fault_rate)
            ));
        }
        out
    }

    /// Render as a JSON object (reuses the `--format json` stats
    /// plumbing: each point embeds its query phase as
    /// [`c4cam_camsim::ExecStats::to_json`]).
    pub fn to_json(&self, pareto_only: bool) -> String {
        let points: Vec<String> = self
            .selected(pareto_only)
            .into_iter()
            .map(|i| {
                let p = &self.points[i];
                format!(
                    concat!(
                        "{{\"subarray_rows\":{},\"subarray_cols\":{},",
                        "\"optimization\":\"{}\",\"technology\":\"{}\",\"bits_per_cell\":{},",
                        "\"engine\":\"{}\",\"physical_subarrays\":{},\"banks\":{},",
                        "\"latency_per_query_ns\":{},\"energy_per_query_pj\":{},",
                        "\"power_mw\":{},\"area_cells\":{},\"accuracy\":{},",
                        "\"pareto\":{},\"fault_rate\":{},\"query_phase\":{}}}"
                    ),
                    p.grid.subarray.0,
                    p.grid.subarray.1,
                    p.grid.optimization.keyword(),
                    p.grid.tech_name,
                    p.grid.bits_per_cell,
                    p.grid.engine,
                    p.outcome.placement.physical_subarrays,
                    p.outcome.placement.banks,
                    json_f64(p.latency_per_query_ns()),
                    json_f64(p.energy_per_query_pj()),
                    json_f64(p.power_mw()),
                    p.area_cells(),
                    json_f64(p.outcome.accuracy()),
                    self.is_pareto(i),
                    json_f64(p.grid.fault_rate),
                    p.outcome.query_phase.to_json()
                )
            })
            .collect();
        format!(
            "{{\"workload\":\"{}\",\"points\":[{}]}}",
            self.workload,
            points.join(",")
        )
    }
}

/// Default square subarray sizes of the §IV-C grid (shared by
/// [`SweepPlan::new`] and the `c4cam sweep` CLI defaults).
pub const DEFAULT_SUBARRAY_SIZES: [usize; 5] = [16, 32, 64, 128, 256];

/// Default optimization configurations of the §IV-C grid.
pub const DEFAULT_OPTIMIZATIONS: [Optimization; 4] = [
    Optimization::Base,
    Optimization::Power,
    Optimization::Density,
    Optimization::PowerDensity,
];

/// A design-space sweep over one workload: the grid dimensions with
/// the §IV-C defaults (square subarrays 16..256, all four optimization
/// configurations, the spec-default technology, 1 bit per cell, the
/// `tape` backend, the paper hierarchy 4 mats × 4 arrays × 8
/// subarrays).
#[derive(Clone)]
pub struct SweepPlan<'w> {
    workload: &'w dyn Workload,
    hierarchy: (usize, usize, usize),
    subarrays: Vec<(usize, usize)>,
    optimizations: Vec<Optimization>,
    technologies: Vec<(String, Option<TechnologyModel>)>,
    bits: Vec<u32>,
    backends: Vec<String>,
    fault_rates: Vec<f64>,
    fault_seed: u64,
    threads: usize,
    telemetry: Telemetry,
}

impl fmt::Debug for SweepPlan<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepPlan")
            .field("workload", &self.workload.name())
            .field("hierarchy", &self.hierarchy)
            .field("subarrays", &self.subarrays)
            .field("optimizations", &self.optimizations)
            .field(
                "technologies",
                &self
                    .technologies
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect::<Vec<_>>(),
            )
            .field("bits", &self.bits)
            .field("backends", &self.backends)
            .field("fault_rates", &self.fault_rates)
            .field("fault_seed", &self.fault_seed)
            .field("threads", &self.threads)
            .field("telemetry", &self.telemetry)
            .finish()
    }
}

impl<'w> SweepPlan<'w> {
    /// A sweep of `workload` over the paper's §IV-C default grid.
    pub fn new(workload: &'w dyn Workload) -> SweepPlan<'w> {
        SweepPlan {
            workload,
            hierarchy: (4, 4, 8),
            subarrays: DEFAULT_SUBARRAY_SIZES.map(|n| (n, n)).to_vec(),
            optimizations: DEFAULT_OPTIMIZATIONS.to_vec(),
            technologies: vec![("default".to_string(), None)],
            bits: vec![1],
            backends: vec!["tape".to_string()],
            fault_rates: vec![0.0],
            fault_seed: 0,
            threads: 1,
            telemetry: Telemetry::default(),
        }
    }

    /// Replace the subarray geometries (`(rows, cols)` pairs).
    pub fn subarrays(mut self, subarrays: impl IntoIterator<Item = (usize, usize)>) -> Self {
        self.subarrays = subarrays.into_iter().collect();
        self
    }

    /// Replace the subarray geometries with `n × n` squares.
    pub fn square_subarrays(self, sizes: impl IntoIterator<Item = usize>) -> Self {
        let squares: Vec<(usize, usize)> = sizes.into_iter().map(|n| (n, n)).collect();
        self.subarrays(squares)
    }

    /// Replace the optimization configurations.
    pub fn optimizations(mut self, opts: impl IntoIterator<Item = Optimization>) -> Self {
        self.optimizations = opts.into_iter().collect();
        self
    }

    /// Replace the technologies; `None` selects the spec's default
    /// model.
    pub fn technologies(
        mut self,
        techs: impl IntoIterator<Item = (String, Option<TechnologyModel>)>,
    ) -> Self {
        self.technologies = techs.into_iter().collect();
        self
    }

    /// Replace the bits-per-cell values (1 maps to TCAM, >1 to MCAM).
    pub fn bits(mut self, bits: impl IntoIterator<Item = u32>) -> Self {
        self.bits = bits.into_iter().collect();
        self
    }

    /// Override the hierarchy fan-outs (mats/bank, arrays/mat,
    /// subarrays/array).
    pub fn hierarchy(mut self, mats: usize, arrays: usize, subarrays: usize) -> Self {
        self.hierarchy = (mats, arrays, subarrays);
        self
    }

    /// Replace the execution backends (a sweep axis: every grid point
    /// runs once per backend name). Names are resolved through
    /// [`c4cam_hal::BackendRegistry`] when the sweep runs.
    pub fn backends(mut self, backends: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.backends = backends.into_iter().map(Into::into).collect();
        self
    }

    /// Replace the fault-rate axis (default `[0.0]` — no injection).
    /// Every grid point runs once per rate; rate 0 points are
    /// bit-identical to a fault-free sweep.
    pub fn fault_rates(mut self, rates: impl IntoIterator<Item = f64>) -> Self {
        self.fault_rates = rates.into_iter().collect();
        self
    }

    /// Seed for the fault-site hash streams of every faulty grid
    /// point (default 0).
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Worker threads for every grid point.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attach a telemetry handle: every grid point records a
    /// [`c4cam_telemetry::cat::GRID`] span (named by the point's
    /// `Display` coordinates) wrapping its full experiment, whose
    /// phase and per-op child spans nest inside.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Expand the grid in deterministic order (optimization outermost,
    /// then subarray, technology, bits, backend, fault rate — the
    /// §IV-C table order with the fault axis innermost).
    ///
    /// # Errors
    /// [`DriverError::Config`] if any grid dimension is empty.
    pub fn grid(&self) -> Result<Vec<GridPoint>, DriverError> {
        for (name, len) in [
            ("subarray geometries", self.subarrays.len()),
            ("optimizations", self.optimizations.len()),
            ("technologies", self.technologies.len()),
            ("bits-per-cell values", self.bits.len()),
            ("backends", self.backends.len()),
            ("fault rates", self.fault_rates.len()),
        ] {
            if len == 0 {
                return Err(DriverError::Config(format!(
                    "empty sweep grid: no {name} configured"
                )));
            }
        }
        let mut grid = Vec::with_capacity(
            self.subarrays.len()
                * self.optimizations.len()
                * self.technologies.len()
                * self.bits.len()
                * self.backends.len()
                * self.fault_rates.len(),
        );
        for &optimization in &self.optimizations {
            for &subarray in &self.subarrays {
                for (tech_name, tech) in &self.technologies {
                    for &bits_per_cell in &self.bits {
                        for engine in &self.backends {
                            for &fault_rate in &self.fault_rates {
                                grid.push(GridPoint {
                                    subarray,
                                    optimization,
                                    tech_name: tech_name.clone(),
                                    tech: tech.clone(),
                                    bits_per_cell,
                                    engine: engine.clone(),
                                    fault_rate,
                                    fault_seed: self.fault_seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(grid)
    }

    /// Run every grid point through the [`Experiment`] builder and
    /// compute the Pareto frontier.
    ///
    /// # Errors
    /// [`DriverError::Config`] for empty grids or invalid thread
    /// counts; any grid point's failure is reported with the point and
    /// the failing stage, with the cause chain preserved.
    pub fn run(&self) -> Result<SweepOutcome, DriverError> {
        if self.threads == 0 {
            return Err(DriverError::Config(
                "threads must be >= 1 (got 0)".to_string(),
            ));
        }
        let grid = self.grid()?;
        let mut points = Vec::with_capacity(grid.len());
        for gp in grid {
            let spec = gp.spec(self.hierarchy)?;
            let mut experiment = Experiment::new(self.workload)
                .arch(spec)
                .backend(gp.engine.clone())
                .threads(self.threads)
                .telemetry(self.telemetry.clone());
            if let Some(tech) = &gp.tech {
                experiment = experiment.tech(tech.clone());
            }
            if gp.fault_rate > 0.0 {
                experiment =
                    experiment.faults(FaultConfig::with_rate(gp.fault_rate, gp.fault_seed));
            }
            let span = self.telemetry.span(format!("{gp}"), cat::GRID);
            let outcome = experiment.run().map_err(|e| e.at_grid_point(&gp))?;
            span.finish();
            points.push(SweepPoint { grid: gp, outcome });
        }
        let objectives: Vec<[f64; 3]> = points.iter().map(SweepPoint::objectives).collect();
        let pareto = pareto_indices(&objectives);
        Ok(SweepOutcome {
            workload: self.workload.name().to_string(),
            points,
            pareto,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_workloads::HdcWorkload;

    fn tiny_hdc() -> HdcWorkload {
        HdcWorkload {
            classes: 4,
            dims: 64,
            queries: 4,
            flip_rate: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn grid_expansion_is_the_full_cross_product_in_order() {
        let w = tiny_hdc();
        let plan = SweepPlan::new(&w)
            .square_subarrays([16, 32])
            .optimizations([Optimization::Base, Optimization::Power])
            .bits([1, 2]);
        let grid = plan.grid().unwrap();
        // 2 opts × 2 subarrays × 1 tech × 2 bit widths × 1 backend.
        assert_eq!(grid.len(), 8);
        // Optimization outermost, then subarray, tech, bits, backend.
        assert_eq!(grid[0].subarray, (16, 16));
        assert_eq!(grid[0].optimization, Optimization::Base);
        assert_eq!(grid[0].bits_per_cell, 1);
        assert_eq!(grid[1].bits_per_cell, 2);
        assert_eq!(grid[2].subarray, (32, 32));
        assert_eq!(grid[4].optimization, Optimization::Power);
        assert_eq!(grid[0].engine, "tape");
        assert_eq!(grid[0].to_string(), "16x16/latency/default/1b/tape");
    }

    #[test]
    fn backend_axis_expands_innermost() {
        let w = tiny_hdc();
        let grid = SweepPlan::new(&w)
            .square_subarrays([16])
            .optimizations([Optimization::Base])
            .bits([1, 2])
            .backends(["tape", "simd"])
            .grid()
            .unwrap();
        // 1 opt × 1 subarray × 1 tech × 2 bits × 2 backends.
        assert_eq!(grid.len(), 4);
        let coords: Vec<(u32, &str)> = grid
            .iter()
            .map(|g| (g.bits_per_cell, g.engine.as_str()))
            .collect();
        assert_eq!(
            coords,
            vec![(1, "tape"), (1, "simd"), (2, "tape"), (2, "simd")]
        );
    }

    #[test]
    fn table_output_carries_the_engine_column() {
        let w = tiny_hdc();
        let outcome = SweepPlan::new(&w)
            .square_subarrays([16])
            .optimizations([Optimization::Base])
            .backends(["walk"])
            .run()
            .unwrap();
        let table = outcome.to_table(false);
        let header = table.lines().next().unwrap();
        assert!(header.contains("engine"), "{header}");
        assert!(table.lines().nth(1).unwrap().contains("walk"), "{table}");
    }

    #[test]
    fn empty_grid_dimensions_fail_up_front() {
        let w = tiny_hdc();
        let e = SweepPlan::new(&w)
            .square_subarrays(std::iter::empty())
            .grid()
            .unwrap_err();
        assert!(matches!(e, DriverError::Config(_)), "{e}");
        assert!(e.to_string().contains("empty sweep grid"), "{e}");
        let e = SweepPlan::new(&w)
            .bits(std::iter::empty())
            .run()
            .unwrap_err();
        assert!(e.to_string().contains("no bits-per-cell"), "{e}");
        let e = SweepPlan::new(&w).threads(0).run().unwrap_err();
        assert!(matches!(e, DriverError::Config(_)), "{e}");
    }

    #[test]
    fn pareto_filter_on_a_fixed_3_point_frontier() {
        // p0 and p2 trade latency against energy (both optimal);
        // p1 is dominated by p0 on every axis.
        let objectives = [
            [1.0, 5.0, 10.0], // p0: fastest
            [2.0, 6.0, 10.0], // p1: strictly worse than p0
            [3.0, 1.0, 10.0], // p2: most energy-efficient
        ];
        assert_eq!(pareto_indices(&objectives), vec![0, 2]);
        // Ties on every axis: both survive.
        assert_eq!(
            pareto_indices(&[[1.0, 1.0, 1.0], [1.0, 1.0, 1.0]]),
            vec![0, 1]
        );
        // A single point is trivially optimal; empty input is empty.
        assert_eq!(pareto_indices(&[[4.0, 4.0, 4.0]]), vec![0]);
        assert_eq!(pareto_indices(&[]), Vec::<usize>::new());
    }

    #[test]
    fn sweep_runs_and_flags_the_frontier() {
        let w = tiny_hdc();
        let outcome = SweepPlan::new(&w)
            .square_subarrays([16, 32])
            .optimizations([Optimization::Base, Optimization::Power])
            .hierarchy(2, 2, 4)
            .run()
            .unwrap();
        assert_eq!(outcome.points.len(), 4);
        assert!(!outcome.pareto.is_empty(), "frontier cannot be empty");
        // cam-power at the same geometry is strictly slower at equal
        // area, so the base point dominates it unless energy differs in
        // power's favor — either way the frontier is a strict subset
        // here (power trades latency for nothing at this tiny scale).
        assert!(outcome.pareto.len() <= outcome.points.len());
        for &i in &outcome.pareto {
            assert!(outcome.is_pareto(i));
        }
        // Renderers agree on the row count.
        let csv = outcome.to_csv(false);
        assert_eq!(csv.lines().count(), 1 + 4, "{csv}");
        assert!(csv.starts_with("workload,subarray_rows"), "{csv}");
        let csv_pareto = outcome.to_csv(true);
        assert_eq!(csv_pareto.lines().count(), 1 + outcome.pareto.len());
        let json = outcome.to_json(false);
        assert!(json.starts_with("{\"workload\":\"hdc\""), "{json}");
        assert!(json.contains("\"query_phase\":{"), "{json}");
        let table = outcome.to_table(false);
        assert_eq!(table.lines().count(), 1 + 4);
        assert!(table.contains("16x16"), "{table}");
    }

    #[test]
    fn backend_axis_runs_every_backend_and_agrees_on_predictions() {
        let w = tiny_hdc();
        let outcome = SweepPlan::new(&w)
            .square_subarrays([32])
            .optimizations([Optimization::Base])
            .hierarchy(2, 2, 4)
            .backends(["tape", "simd", "walk"])
            .run()
            .unwrap();
        assert_eq!(outcome.points.len(), 3);
        let engines: Vec<&str> = outcome
            .points
            .iter()
            .map(|p| p.grid.engine.as_str())
            .collect();
        assert_eq!(engines, vec!["tape", "simd", "walk"]);
        // Same workload, same geometry: every backend predicts the
        // same classes (the HAL's bit-identical output contract).
        for p in &outcome.points[1..] {
            assert_eq!(p.outcome.predictions, outcome.points[0].outcome.predictions);
        }
        // The engine column flows through every renderer.
        let csv = outcome.to_csv(false);
        assert!(csv.contains("bits_per_cell,engine,"), "{csv}");
        assert!(csv.contains(",1,simd,"), "{csv}");
        assert!(outcome.to_json(false).contains("\"engine\":\"simd\""));
        assert!(outcome.to_table(false).contains("simd"));
        // An unknown backend fails at its grid point with the
        // registry's name list.
        let e = SweepPlan::new(&w)
            .square_subarrays([32])
            .optimizations([Optimization::Base])
            .backends(["jit"])
            .run()
            .unwrap_err();
        assert!(e.to_string().contains("unknown engine 'jit'"), "{e}");
    }

    #[test]
    fn dataset_workloads_flow_through_the_sweep_grid() {
        // Real data through the unchanged grid: the per-point outcome
        // must equal an individually built Experiment at that point,
        // including re-quantization when the bits dimension changes.
        use c4cam_datasets::{mini_mnist, DatasetTask, DatasetWorkload};
        let w = DatasetWorkload::new(mini_mnist::dataset(), DatasetTask::Hdc, Some(6)).unwrap();
        let outcome = SweepPlan::new(&w)
            .square_subarrays([32])
            .optimizations([Optimization::Base])
            .bits([1, 2])
            .run()
            .unwrap();
        assert_eq!(outcome.points.len(), 2);
        assert_eq!(outcome.workload, "dataset-hdc");
        for p in &outcome.points {
            let spec = crate::driver::build_arch(
                p.grid.subarray,
                (4, 4, 8),
                p.grid.optimization,
                p.grid.bits_per_cell,
            )
            .unwrap();
            let direct = Experiment::new(&w).arch(spec).run().unwrap();
            assert_eq!(p.outcome.predictions, direct.predictions);
            assert_eq!(p.outcome.total, direct.total);
        }
        // The two bit widths genuinely quantize differently.
        let csv = outcome.to_csv(false);
        assert!(csv.contains("dataset-hdc,32,32"), "{csv}");
    }

    #[test]
    fn fault_axis_expands_innermost_and_registers_faults() {
        let w = tiny_hdc();
        let plan = SweepPlan::new(&w)
            .square_subarrays([32])
            .optimizations([Optimization::Base])
            .hierarchy(2, 2, 4)
            .fault_rates([0.0, 0.05])
            .fault_seed(9);
        let grid = plan.grid().unwrap();
        assert_eq!(grid.len(), 2);
        // Rate-0 points keep the historical coordinate label; faulty
        // points append the rate.
        assert_eq!(grid[0].to_string(), "32x32/latency/default/1b/tape");
        assert_eq!(grid[1].to_string(), "32x32/latency/default/1b/tape/f0.05");
        let outcome = plan.run().unwrap();
        // The rate-0 point is bit-identical to a fault-free sweep of
        // the same grid.
        let clean = SweepPlan::new(&w)
            .square_subarrays([32])
            .optimizations([Optimization::Base])
            .hierarchy(2, 2, 4)
            .run()
            .unwrap();
        assert_eq!(
            outcome.points[0].outcome.predictions,
            clean.points[0].outcome.predictions
        );
        assert_eq!(
            outcome.points[0].outcome.total,
            clean.points[0].outcome.total
        );
        // The faulty point materialized seeded fault sites.
        assert!(outcome.points[1].outcome.total.fault_cells > 0);
        // The fault rate flows through every renderer, appended last
        // in the CSV so positional consumers keep working.
        let csv = outcome.to_csv(false);
        assert!(csv.lines().next().unwrap().ends_with(",pareto,fault_rate"));
        assert!(csv.lines().nth(2).unwrap().ends_with(",0.05"), "{csv}");
        assert!(outcome.to_json(false).contains("\"fault_rate\":0.05"));
        assert!(outcome.to_table(false).contains("0.050"));
        // An empty fault axis fails up front like every other axis.
        let e = SweepPlan::new(&w)
            .fault_rates(std::iter::empty())
            .grid()
            .unwrap_err();
        assert!(e.to_string().contains("no fault rates"), "{e}");
    }

    #[test]
    fn sweep_point_failure_names_the_grid_point_and_stage() {
        // An out-of-range cell width fails spec validation at that
        // grid point; the error names the point.
        let w = tiny_hdc();
        let e = SweepPlan::new(&w)
            .square_subarrays([16])
            .optimizations([Optimization::Base])
            .bits([5])
            .run()
            .unwrap_err();
        assert_eq!(e.stage(), "config");
        assert!(
            e.to_string()
                .contains("grid point [16x16/latency/default/5b/tape]"),
            "{e}"
        );
        // A zero-query workload fails inside the experiment and comes
        // back tagged with the grid point it died at.
        let empty = HdcWorkload {
            queries: 0,
            ..tiny_hdc()
        };
        let e = SweepPlan::new(&empty)
            .square_subarrays([16])
            .optimizations([Optimization::Base])
            .run()
            .unwrap_err();
        assert!(e.to_string().contains("grid point ["), "{e}");
        assert!(e.to_string().contains("has no queries"), "{e}");
    }
}
