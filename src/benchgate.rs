//! **Perf-regression gate** (`c4cam bench-gate`): run the search/engine
//! microbenchmark workloads in-process at short duration and compare
//! against a committed baseline, failing on significant regressions.
//!
//! The full `criterion` benches under `crates/bench` answer "how fast
//! is it"; this gate answers the CI question "did this change make it
//! slower" cheaply enough to run on every push. Wall-clock numbers are
//! not portable across hosts, so the baseline also records a
//! **calibration anchor** — a deterministic, CPU-bound scalar loop
//! measured at bless time and again at gate time. Each bench budget is
//! scaled by `anchor_now / anchor_baseline` (clamped to
//! [`SCALE_CLAMP`]) before the [`THRESHOLD`] comparison, absorbing
//! moderate host-speed differences while still catching real
//! slowdowns.
//!
//! Bless a new baseline with `UPDATE_BASELINE=1 c4cam bench-gate`.
//! `C4CAM_GATE_INJECT_SLOWDOWN=<factor>` multiplies the measured times
//! — it exists only to verify the gate actually trips.

use c4cam_arch::{ArchSpec, CamKind};
use c4cam_camsim::CamMachine;
use c4cam_core::dialects::{cim, torch};
use c4cam_core::pipeline::C4camPipeline;
use c4cam_engine::Tape;
use c4cam_ir::Module;
use c4cam_runtime::Value;
use c4cam_server::json::Json;
use c4cam_tensor::Tensor;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Relative slowdown that fails the gate: measured time may be at most
/// 25% over the (host-scaled) baseline.
pub const THRESHOLD: f64 = 1.25;

/// Clamp on the anchor-derived host-speed scale. A ratio outside this
/// range means the hosts are too dissimilar for wall-clock comparison;
/// clamping keeps the gate conservative instead of silently lax.
pub const SCALE_CLAMP: (f64, f64) = (0.25, 4.0);

/// Arguments of `c4cam bench-gate`.
#[derive(Debug, Clone)]
pub struct BenchGateArgs {
    /// Path of the committed baseline JSON.
    pub baseline: String,
    /// Short CI mode: smaller measurement window per bench.
    pub short: bool,
    /// Optional path to write the measurement report JSON (artifact).
    pub out: Option<String>,
}

/// One measured workload.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Bench name (stable across runs; the baseline key).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// Committed reference numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Calibration-anchor time on the bless host, ns per run.
    pub anchor_ns: f64,
    /// Bench name → ns per iteration on the bless host.
    pub benches: Vec<(String, f64)>,
}

/// Per-bench gate verdict.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Bench name.
    pub name: String,
    /// Measured ns/iter on this host.
    pub measured_ns: f64,
    /// Host-scaled budget (baseline × scale × threshold), ns.
    pub budget_ns: f64,
    /// measured / (baseline × scale); > [`THRESHOLD`] fails.
    pub ratio: f64,
    /// Whether this bench passed.
    pub pass: bool,
}

/// The full gate outcome: rows plus the anchor-derived scale.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Host-speed scale actually applied (after clamping).
    pub scale: f64,
    /// Per-bench verdicts, in measurement order.
    pub rows: Vec<GateRow>,
}

impl GateOutcome {
    /// Whether every bench passed.
    pub fn pass(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }
}

/// Compare measurements against a baseline. Benches missing from the
/// baseline fail (ratio ∞): a new workload must be blessed before it
/// can gate.
pub fn evaluate(baseline: &Baseline, measured: &[Measurement], anchor_now_ns: f64) -> GateOutcome {
    let raw_scale = if baseline.anchor_ns > 0.0 {
        anchor_now_ns / baseline.anchor_ns
    } else {
        1.0
    };
    let scale = raw_scale.clamp(SCALE_CLAMP.0, SCALE_CLAMP.1);
    let rows = measured
        .iter()
        .map(|m| {
            let base = baseline
                .benches
                .iter()
                .find(|(n, _)| *n == m.name)
                .map(|&(_, ns)| ns);
            match base {
                Some(ns) if ns > 0.0 => {
                    let budget = ns * scale * THRESHOLD;
                    let ratio = m.ns_per_iter / (ns * scale);
                    GateRow {
                        name: m.name.clone(),
                        measured_ns: m.ns_per_iter,
                        budget_ns: budget,
                        ratio,
                        pass: ratio <= THRESHOLD,
                    }
                }
                _ => GateRow {
                    name: m.name.clone(),
                    measured_ns: m.ns_per_iter,
                    budget_ns: 0.0,
                    ratio: f64::INFINITY,
                    pass: false,
                },
            }
        })
        .collect();
    GateOutcome { scale, rows }
}

/// Serialize a baseline/report document. The same shape serves both
/// the committed baseline and the `--out` artifact.
pub fn to_json(anchor_ns: f64, benches: &[Measurement]) -> String {
    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"version\": 1,");
    let _ = writeln!(body, "  \"threshold\": {THRESHOLD},");
    let _ = writeln!(body, "  \"anchor_ns\": {anchor_ns:.1},");
    body.push_str("  \"benches\": {\n");
    for (i, m) in benches.iter().enumerate() {
        let comma = if i + 1 == benches.len() { "" } else { "," };
        let _ = writeln!(body, "    \"{}\": {:.1}{comma}", m.name, m.ns_per_iter);
    }
    body.push_str("  }\n}\n");
    body
}

/// Parse a baseline document written by [`to_json`].
///
/// # Errors
/// Fails on malformed JSON or missing/mistyped fields.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let root = Json::parse(text).map_err(|e| format!("baseline JSON: {e}"))?;
    let anchor_ns = root
        .get("anchor_ns")
        .and_then(Json::as_f64)
        .ok_or("baseline JSON: missing numeric 'anchor_ns'")?;
    let benches = match root.get("benches") {
        Some(Json::Obj(map)) => map
            .iter()
            .map(|(name, v)| {
                v.as_f64()
                    .map(|ns| (name.clone(), ns))
                    .ok_or_else(|| format!("baseline JSON: bench '{name}' is not a number"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("baseline JSON: missing 'benches' object".to_string()),
    };
    Ok(Baseline { anchor_ns, benches })
}

/// Time `f`: one warm-up call, then iterate until `window` elapses
/// (at least two timed iterations). Returns mean ns per iteration.
fn measure_ns(window: Duration, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        if (start.elapsed() >= window && iters >= 2) || iters >= 1_000_000 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The calibration anchor: a deterministic, dependency-chained scalar
/// integer loop. Not vectorizable, no memory traffic — it tracks the
/// host's scalar clock, which is the right denominator for comparing
/// wall-clock budgets across machines.
fn anchor_run() -> u64 {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut acc = 0u64;
    for i in 0..2_000_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x ^ i);
    }
    acc
}

const QUERIES: usize = 1024;
const PATTERNS: usize = 256;
const DIMS: usize = 512;

/// MCAM-quantized synthetic kNN data (same generator as the
/// `search_micro` criterion bench): levels 0..=3.
fn knn_inputs() -> (Tensor, Tensor) {
    let mut stored = Vec::with_capacity(PATTERNS * DIMS);
    for p in 0..PATTERNS {
        for d in 0..DIMS {
            stored.push(((p * 7 + d * 3) % 4) as f32);
        }
    }
    let mut queries = Vec::with_capacity(QUERIES * DIMS);
    for q in 0..QUERIES {
        let base = q % PATTERNS;
        for d in 0..DIMS {
            let jitter = u8::from(d % 97 == q % 97);
            queries.push((((base * 7 + d * 3) % 4) as u8 + jitter).min(3) as f32);
        }
    }
    (
        Tensor::from_vec(vec![PATTERNS, DIMS], stored).expect("knn stored"),
        Tensor::from_vec(vec![QUERIES, DIMS], queries).expect("knn queries"),
    )
}

/// Binary HDC class/query data (same generator as `search_micro`).
fn hdc_inputs(classes: usize, dims: usize) -> (Tensor, Tensor) {
    let mut stored = Vec::with_capacity(classes * dims);
    for c in 0..classes {
        for d in 0..dims {
            stored.push(f32::from(u8::from((d * 7 + c * 3) % 5 < 2)));
        }
    }
    let mut queries = Vec::with_capacity(QUERIES * dims);
    for q in 0..QUERIES {
        let class = q % classes;
        for d in 0..dims {
            let base = u8::from((d * 7 + class * 3) % 5 < 2);
            let flip = u8::from(d % 89 == q % 89 && d % 7 == 0);
            queries.push(f32::from(base ^ flip));
        }
    }
    (
        Tensor::from_vec(vec![classes, dims], stored).expect("hdc stored"),
        Tensor::from_vec(vec![QUERIES, dims], queries).expect("hdc queries"),
    )
}

struct GateBench {
    name: String,
    spec: ArchSpec,
    tape: Tape,
    args: Vec<Value>,
}

impl GateBench {
    fn run_once(&self) {
        let mut machine = CamMachine::new(&self.spec);
        self.tape
            .run(&mut machine, &self.args)
            .expect("gate bench run");
    }
}

/// Build the gated workloads: the `search_micro` kNN/HDC packed
/// batches and the `engine_micro` tape batch.
fn build_benches() -> Result<Vec<GateBench>, String> {
    let mut benches = Vec::new();

    // kNN: Euclidean over 2-bit MCAM cells (exact-integer kernel).
    let knn_spec = ArchSpec::builder()
        .subarray(128, 128)
        .hierarchy(2, 2, 4)
        .bits_per_cell(2)
        .cam_kind(CamKind::Mcam)
        .build()
        .map_err(|e| format!("knn spec: {e}"))?;
    let mut m = Module::new();
    cim::build_similarity_kernel(
        &mut m,
        "knn",
        "eucl",
        PATTERNS as i64,
        DIMS as i64,
        QUERIES as i64,
        1,
        false,
    );
    let knn = C4camPipeline::new(knn_spec.clone())
        .compile(m)
        .map_err(|e| format!("knn compile: {e}"))?;
    let (stored, queries) = knn_inputs();
    benches.push(GateBench {
        name: format!("knn-packed/{QUERIES}q"),
        spec: knn_spec,
        tape: Tape::compile(&knn.module, "knn").map_err(|e| format!("knn tape: {e}"))?,
        args: vec![Value::Tensor(stored), Value::Tensor(queries)],
    });

    // HDC: dot metric over TCAM bits (XOR/popcount kernel).
    let hdc_spec = ArchSpec::builder()
        .subarray(64, 64)
        .hierarchy(2, 2, 4)
        .build()
        .map_err(|e| format!("hdc spec: {e}"))?;
    let mut m = Module::new();
    torch::build_hdc_dot_with(&mut m, QUERIES as i64, 64, 512, 1, true);
    let hdc = C4camPipeline::new(hdc_spec.clone())
        .compile(m)
        .map_err(|e| format!("hdc compile: {e}"))?;
    let (stored, queries) = hdc_inputs(64, 512);
    benches.push(GateBench {
        name: format!("hdc-packed/{QUERIES}q"),
        spec: hdc_spec,
        tape: Tape::compile(&hdc.module, "forward").map_err(|e| format!("hdc tape: {e}"))?,
        args: vec![Value::Tensor(queries), Value::Tensor(stored)],
    });

    // Engine: the tape VM on the small-subarray HDC batch — this is
    // the workload where per-op overheads (allocation, dispatch)
    // dominate over kernel time, so it guards the zero-alloc paths.
    let eng_spec = ArchSpec::builder()
        .subarray(16, 16)
        .hierarchy(2, 2, 4)
        .build()
        .map_err(|e| format!("engine spec: {e}"))?;
    let mut m = Module::new();
    torch::build_hdc_dot_with(&mut m, QUERIES as i64, 8, 256, 1, true);
    let eng = C4camPipeline::new(eng_spec.clone())
        .compile(m)
        .map_err(|e| format!("engine compile: {e}"))?;
    let (stored, queries) = hdc_inputs(8, 256);
    benches.push(GateBench {
        name: format!("engine-tape/{QUERIES}q"),
        spec: eng_spec,
        tape: Tape::compile(&eng.module, "forward").map_err(|e| format!("engine tape: {e}"))?,
        args: vec![Value::Tensor(queries), Value::Tensor(stored)],
    });

    Ok(benches)
}

fn format_report(outcome: &GateOutcome, anchor_now: f64, baseline_anchor: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench gate: anchor {:.2} ms now vs {:.2} ms at bless (scale {:.3})",
        anchor_now / 1e6,
        baseline_anchor / 1e6,
        outcome.scale
    );
    for r in &outcome.rows {
        let verdict = if r.pass { "ok  " } else { "FAIL" };
        let _ = writeln!(
            out,
            "  {verdict} {:<24} {:>10.2} ms/iter  budget {:>10.2} ms  ratio {:.3}",
            r.name,
            r.measured_ns / 1e6,
            r.budget_ns / 1e6,
            r.ratio
        );
    }
    out
}

/// Run the gate end to end.
///
/// # Errors
/// Fails on build/measure errors, an unreadable baseline, or — the
/// point of the command — a perf regression beyond [`THRESHOLD`].
pub fn run_bench_gate(args: &BenchGateArgs) -> Result<String, String> {
    let window = if args.short {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(250)
    };
    let inject: f64 = match std::env::var("C4CAM_GATE_INJECT_SLOWDOWN") {
        Ok(v) => v
            .parse()
            .ok()
            .filter(|f: &f64| f.is_finite() && *f > 0.0)
            .ok_or_else(|| format!("C4CAM_GATE_INJECT_SLOWDOWN: invalid factor '{v}'"))?,
        Err(_) => 1.0,
    };

    let benches = build_benches()?;
    let anchor_now = measure_ns(Duration::from_millis(30), || {
        std::hint::black_box(anchor_run());
    });
    let measured: Vec<Measurement> = benches
        .iter()
        .map(|b| Measurement {
            name: b.name.clone(),
            ns_per_iter: measure_ns(window, || b.run_once()) * inject,
        })
        .collect();

    if let Some(path) = &args.out {
        std::fs::write(path, to_json(anchor_now, &measured))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }

    if std::env::var("UPDATE_BASELINE").as_deref() == Ok("1") {
        std::fs::write(&args.baseline, to_json(anchor_now, &measured))
            .map_err(|e| format!("writing {}: {e}", args.baseline))?;
        let mut out = format!("bench gate: baseline blessed to {}\n", args.baseline);
        for m in &measured {
            let _ = writeln!(
                out,
                "  {:<24} {:>10.2} ms/iter",
                m.name,
                m.ns_per_iter / 1e6
            );
        }
        return Ok(out);
    }

    let text = std::fs::read_to_string(&args.baseline).map_err(|e| {
        format!(
            "reading baseline {}: {e}\n(bless one with UPDATE_BASELINE=1 c4cam bench-gate)",
            args.baseline
        )
    })?;
    let baseline = parse_baseline(&text)?;
    let outcome = evaluate(&baseline, &measured, anchor_now);
    let report = format_report(&outcome, anchor_now, baseline.anchor_ns);
    if outcome.pass() {
        Ok(report + "bench gate: PASS\n")
    } else {
        Err(report + "bench gate: FAIL (regression beyond the 25% budget)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Baseline {
        Baseline {
            anchor_ns: 1000.0,
            benches: vec![("a".to_string(), 100.0), ("b".to_string(), 200.0)],
        }
    }

    fn m(name: &str, ns: f64) -> Measurement {
        Measurement {
            name: name.to_string(),
            ns_per_iter: ns,
        }
    }

    #[test]
    fn gate_passes_within_budget_and_fails_beyond_it() {
        let out = evaluate(&baseline(), &[m("a", 120.0), m("b", 200.0)], 1000.0);
        assert_eq!(out.scale, 1.0);
        assert!(out.pass(), "{out:?}");
        let out = evaluate(&baseline(), &[m("a", 126.0)], 1000.0);
        assert!(!out.pass(), "26% over must fail: {out:?}");
        // The acceptance check: an injected 2x slowdown trips the gate.
        let out = evaluate(&baseline(), &[m("a", 200.0), m("b", 400.0)], 1000.0);
        assert!(out.rows.iter().all(|r| !r.pass), "{out:?}");
    }

    #[test]
    fn anchor_scale_absorbs_host_speed_but_is_clamped() {
        // Host is 2x slower than the bless host: 2x the wall clock
        // still passes because the anchor scaled the budget.
        let out = evaluate(&baseline(), &[m("a", 200.0)], 2000.0);
        assert_eq!(out.scale, 2.0);
        assert!(out.pass(), "{out:?}");
        // A 100x anchor ratio is not believable; the scale clamps at
        // 4x and the comparison stays conservative.
        let out = evaluate(&baseline(), &[m("a", 100_000.0)], 100_000.0);
        assert_eq!(out.scale, SCALE_CLAMP.1);
        assert!(!out.pass(), "{out:?}");
    }

    #[test]
    fn benches_missing_from_the_baseline_fail() {
        let out = evaluate(&baseline(), &[m("new-bench", 1.0)], 1000.0);
        assert!(!out.pass());
        assert!(out.rows[0].ratio.is_infinite());
    }

    #[test]
    fn baseline_json_round_trips() {
        let doc = to_json(
            12345.6,
            &[m("knn-packed/1024q", 1e6), m("hdc-packed/1024q", 2e6)],
        );
        let parsed = parse_baseline(&doc).unwrap();
        assert!((parsed.anchor_ns - 12345.6).abs() < 0.1);
        assert_eq!(parsed.benches.len(), 2);
        let knn = parsed
            .benches
            .iter()
            .find(|(n, _)| n == "knn-packed/1024q")
            .unwrap();
        assert!((knn.1 - 1e6).abs() < 0.1);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse_baseline("{").is_err());
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline(r#"{"anchor_ns": 1.0}"#).is_err());
        assert!(parse_baseline(r#"{"anchor_ns": 1.0, "benches": {"a": "x"}}"#).is_err());
    }
}
