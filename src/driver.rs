//! High-level experiment driver: compile a workload for an architecture,
//! execute it on the simulated CAM machine, and collect phase-separated
//! statistics. Shared by the examples, the integration tests, and every
//! table/figure bench.

use c4cam_arch::{ArchSpec, CamKind, Optimization};
use c4cam_camsim::{CamMachine, ExecStats};
use c4cam_core::dialects::{cim, torch};
use c4cam_core::mapping::{place, MappingProblem, Placement};
use c4cam_core::pipeline::C4camPipeline;
use c4cam_engine::Tape;
use c4cam_ir::Module;
use c4cam_runtime::{Executor, Value};
use c4cam_tensor::Tensor;
use c4cam_workloads::{accuracy, HdcModel, KnnDataset};
use std::error::Error;
use std::fmt;

/// Which execution engine drives the simulator.
///
/// [`Engine::Tape`] (the default) compiles the lowered module to a flat
/// CAM-ISA tape and executes it on the register-machine VM;
/// [`Engine::Walk`] re-walks the IR tree per op and is kept as the
/// reference oracle. Both produce bit-identical outputs and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Tree-walking reference interpreter ([`Executor`]).
    Walk,
    /// Flat-tape VM ([`c4cam_engine::Tape`]).
    #[default]
    Tape,
}

impl Engine {
    /// Parse from the `--engine` keyword.
    pub fn from_keyword(s: &str) -> Option<Engine> {
        match s {
            "walk" => Some(Engine::Walk),
            "tape" => Some(Engine::Tape),
            _ => None,
        }
    }
}

/// Driver failure (compile, placement or execution error).
#[derive(Debug, Clone)]
pub struct DriverError {
    /// Description.
    pub message: String,
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "driver error: {}", self.message)
    }
}

impl Error for DriverError {}

fn derr(message: impl fmt::Display) -> DriverError {
    DriverError {
        message: message.to_string(),
    }
}

/// Outcome of one compiled-and-simulated experiment run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Cumulative statistics of the full execution (setup + queries).
    pub total: ExecStats,
    /// Statistics of the setup phase alone (allocation + programming).
    pub setup: ExecStats,
    /// Statistics of the query phase alone (`total − setup`).
    pub query_phase: ExecStats,
    /// Predicted stored-row index per query (top-1).
    pub predictions: Vec<usize>,
    /// Ground-truth labels.
    pub labels: Vec<usize>,
    /// Placement chosen by the mapping pass.
    pub placement: Placement,
    /// Number of queries executed.
    pub queries: usize,
}

impl RunOutcome {
    /// Classification accuracy against the ground truth.
    pub fn accuracy(&self) -> f64 {
        accuracy(&self.predictions, &self.labels)
    }

    /// Query-phase latency per query, ns.
    pub fn latency_per_query_ns(&self) -> f64 {
        self.query_phase.latency_ns / self.queries.max(1) as f64
    }

    /// Query-phase energy per query, pJ.
    pub fn energy_per_query_pj(&self) -> f64 {
        self.query_phase.energy_pj() / self.queries.max(1) as f64
    }

    /// Workload queries classified per simulated second of device time
    /// (the application-level throughput; the device-level broadcast
    /// rate is [`ExecStats::queries_per_second`]).
    ///
    /// Returns 0 for zero-latency query phases.
    pub fn workload_queries_per_second(&self) -> f64 {
        if self.query_phase.latency_ns <= 0.0 {
            return 0.0;
        }
        self.queries as f64 / (self.query_phase.latency_ns * 1e-9)
    }

    /// Extrapolate the query phase linearly to `n` queries (the
    /// simulator is deterministic and per-query costs are identical, so
    /// this is exact for latency/energy; power is scale-invariant).
    pub fn scaled_query_phase(&self, n: usize) -> ExecStats {
        let f = n as f64 / self.queries.max(1) as f64;
        let mut s = self.query_phase.clone();
        s.search_ops = (s.search_ops as f64 * f) as u64;
        s.read_ops = (s.read_ops as f64 * f) as u64;
        s.merge_ops = (s.merge_ops as f64 * f) as u64;
        s.cell_energy_fj *= f;
        s.periph_energy_fj *= f;
        s.merge_energy_fj *= f;
        s.static_energy_fj *= f;
        s.latency_ns *= f;
        s
    }
}

/// HDC experiment configuration.
#[derive(Debug, Clone)]
pub struct HdcConfig {
    /// Architecture to compile for.
    pub spec: ArchSpec,
    /// Number of classes (stored hypervectors).
    pub classes: usize,
    /// Hypervector dimensionality.
    pub dims: usize,
    /// Queries to simulate.
    pub queries: usize,
    /// Fraction of query elements re-randomized.
    pub flip_rate: f64,
    /// RNG seed.
    pub seed: u64,
    /// Optional winner-take-all sensing window: best-match distances
    /// saturate at this mismatch count (paper \[19\]).
    pub wta_window: Option<u32>,
    /// Run the canonicalize cleanup after lowering.
    pub canonicalize: bool,
}

impl HdcConfig {
    /// The paper's HDC setting (MNIST-like, 8k dims, 10 classes) on a
    /// given architecture, with a reduced simulated query count
    /// (costs extrapolate exactly; see
    /// [`RunOutcome::scaled_query_phase`]).
    pub fn paper(spec: ArchSpec, queries: usize) -> HdcConfig {
        HdcConfig {
            spec,
            classes: 10,
            dims: 8192,
            queries,
            flip_rate: 0.1,
            seed: 42,
            wta_window: None,
            canonicalize: false,
        }
    }
}

/// Build the square-subarray architecture used throughout §IV
/// (4 mats/bank, 4 arrays/mat, 8 subarrays/array, auto banks).
pub fn paper_arch(n: usize, optimization: Optimization, bits: u32) -> ArchSpec {
    ArchSpec::builder()
        .subarray(n, n)
        .hierarchy(4, 4, 8)
        .cam_kind(if bits > 1 {
            CamKind::Mcam
        } else {
            CamKind::Tcam
        })
        .bits_per_cell(bits)
        .optimization(optimization)
        .build()
        .expect("valid paper architecture")
}

/// Run the HDC workload through the full pipeline onto the simulator.
///
/// # Errors
/// Propagates compile and execution failures.
pub fn run_hdc(config: &HdcConfig) -> Result<RunOutcome, DriverError> {
    run_hdc_with_engine(config, Engine::default())
}

/// [`run_hdc`] with an explicit execution engine (the default everywhere
/// else is [`Engine::Tape`]; `Engine::Walk` runs the tree-walking
/// reference oracle).
///
/// # Errors
/// Propagates compile and execution failures.
pub fn run_hdc_with_engine(config: &HdcConfig, engine: Engine) -> Result<RunOutcome, DriverError> {
    let model = HdcModel::random(
        config.classes,
        config.dims,
        config.spec.bits_per_cell,
        config.seed,
    );
    let (queries, labels) = model.queries(config.queries, config.flip_rate, config.seed);
    let mut module = Module::new();
    torch::build_hdc_dot_with(
        &mut module,
        config.queries as i64,
        config.classes as i64,
        config.dims as i64,
        1,
        true,
    );
    run_similarity_module(
        module,
        "forward",
        &config.spec,
        model.class_hvs().clone(),
        queries,
        labels,
        config.classes,
        config.dims,
        config.queries,
        RunKnobs {
            wta_window: config.wta_window,
            canonicalize: config.canonicalize,
            tech: None,
            engine,
        },
    )
}

/// Extra execution knobs threaded from the experiment configs.
#[derive(Debug, Clone, Default)]
struct RunKnobs {
    wta_window: Option<u32>,
    canonicalize: bool,
    tech: Option<c4cam_arch::tech::TechnologyModel>,
    engine: Engine,
}

/// [`run_hdc`] with an explicit technology model (the paper's
/// retargetability claim: compare CAM technologies without touching the
/// application).
///
/// # Errors
/// Propagates compile and execution failures.
pub fn run_hdc_with_tech(
    config: &HdcConfig,
    tech: c4cam_arch::tech::TechnologyModel,
) -> Result<RunOutcome, DriverError> {
    let model = HdcModel::random(
        config.classes,
        config.dims,
        config.spec.bits_per_cell,
        config.seed,
    );
    let (queries, labels) = model.queries(config.queries, config.flip_rate, config.seed);
    let mut module = Module::new();
    torch::build_hdc_dot_with(
        &mut module,
        config.queries as i64,
        config.classes as i64,
        config.dims as i64,
        1,
        true,
    );
    run_similarity_module(
        module,
        "forward",
        &config.spec,
        model.class_hvs().clone(),
        queries,
        labels,
        config.classes,
        config.dims,
        config.queries,
        RunKnobs {
            wta_window: config.wta_window,
            canonicalize: config.canonicalize,
            tech: Some(tech),
            engine: Engine::default(),
        },
    )
}

/// KNN experiment configuration.
#[derive(Debug, Clone)]
pub struct KnnConfig {
    /// Architecture to compile for.
    pub spec: ArchSpec,
    /// Stored training patterns.
    pub patterns: usize,
    /// Feature dimensionality.
    pub dims: usize,
    /// Queries to simulate.
    pub queries: usize,
    /// Neighbours to retrieve.
    pub k: usize,
    /// Feature noise.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl KnnConfig {
    /// The paper's Pneumonia-scale setting (5216 patterns) on a given
    /// architecture, with a reduced query count.
    pub fn paper(spec: ArchSpec, queries: usize) -> KnnConfig {
        KnnConfig {
            spec,
            patterns: 5216,
            dims: 4096,
            queries,
            k: 5,
            noise: 0.2,
            seed: 7,
        }
    }
}

/// Run the KNN workload (batched queries enter at the fused `cim`
/// stage, since the torch-level Euclidean pattern is single-query).
///
/// # Errors
/// Propagates compile and execution failures.
pub fn run_knn(config: &KnnConfig) -> Result<RunOutcome, DriverError> {
    run_knn_with_engine(config, Engine::default())
}

/// [`run_knn`] with an explicit execution engine.
///
/// # Errors
/// Propagates compile and execution failures.
pub fn run_knn_with_engine(config: &KnnConfig, engine: Engine) -> Result<RunOutcome, DriverError> {
    let data = KnnDataset::synthetic(
        config.patterns,
        config.dims,
        2,
        config.queries,
        config.noise,
        config.seed,
    );
    let mut module = Module::new();
    cim::build_similarity_kernel(
        &mut module,
        "knn",
        "eucl",
        config.patterns as i64,
        config.dims as i64,
        config.queries as i64,
        config.k as i64,
        false, // smallest distances
    );
    // Ground truth: nearest stored pattern per query (top-1 of the CPU
    // reference).
    let labels: Vec<usize> = (0..config.queries)
        .map(|q| data.nearest_cpu(q, 1)[0])
        .collect();
    run_similarity_module(
        module,
        "knn",
        &config.spec,
        data.train.clone(),
        data.queries.clone(),
        labels,
        config.patterns,
        config.dims,
        config.queries,
        RunKnobs {
            engine,
            ..RunKnobs::default()
        },
    )
}

/// Compile `module` for `spec`, execute on a fresh machine, and collect
/// phase-separated statistics.
#[allow(clippy::too_many_arguments)]
fn run_similarity_module(
    module: Module,
    func: &str,
    spec: &ArchSpec,
    stored: Tensor,
    queries: Tensor,
    labels: Vec<usize>,
    stored_rows: usize,
    dims: usize,
    nq: usize,
    knobs: RunKnobs,
) -> Result<RunOutcome, DriverError> {
    let placement = place(
        spec,
        &MappingProblem {
            stored_rows,
            feature_dims: dims,
            queries: nq,
        },
    )
    .map_err(derr)?;
    let compiled = C4camPipeline::new(spec.clone())
        .with_options(c4cam_core::pipeline::PipelineOptions {
            canonicalize: knobs.canonicalize,
            ..Default::default()
        })
        .compile(module)
        .map_err(derr)?;
    let mut machine = match knobs.tech {
        Some(ref tech) => CamMachine::with_tech(spec, tech.clone()),
        None => CamMachine::new(spec),
    };
    machine.set_wta_window(knobs.wta_window);
    // HDC input order is (queries, stored); the cim-level KNN kernel is
    // (stored, queries). Detect by the function's first arg type.
    let m = &compiled.module;
    let func_op = m
        .lookup_symbol(func)
        .ok_or_else(|| derr(format!("missing function {func}")))?;
    let entry = m.op(func_op).regions[0][0];
    let first_arg_rows = m
        .kind(m.value_type(m.block(entry).args[0]))
        .shape()
        .map(|s| s[0])
        .unwrap_or(0);
    let args = if first_arg_rows == nq as i64 && nq != stored_rows {
        vec![Value::Tensor(queries), Value::Tensor(stored)]
    } else {
        vec![Value::Tensor(stored), Value::Tensor(queries)]
    };
    let out = match knobs.engine {
        Engine::Walk => Executor::with_machine(&compiled.module, &mut machine)
            .run(func, &args)
            .map_err(derr)?,
        Engine::Tape => Tape::compile(&compiled.module, func)
            .map_err(derr)?
            .run(&mut machine, &args)
            .map_err(derr)?,
    };
    let indices = out
        .get(1)
        .and_then(Value::as_tensor)
        .ok_or_else(|| derr("kernel returned no indices"))?;
    let predictions: Vec<usize> = (0..nq)
        .map(|q| indices.data()[q * indices.len() / nq.max(1)] as usize)
        .collect();
    let total = machine.stats();
    let setup = machine.phase("setup-complete").cloned().unwrap_or_default();
    let query_phase = total.delta(&setup);
    Ok(RunOutcome {
        total,
        setup,
        query_phase,
        predictions,
        labels,
        placement,
        queries: nq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdc_driver_runs_and_classifies() {
        let spec = paper_arch(32, Optimization::Base, 1);
        let config = HdcConfig {
            spec,
            classes: 4,
            dims: 256,
            queries: 8,
            flip_rate: 0.05,
            seed: 1,
            wta_window: None,
            canonicalize: false,
        };
        let out = run_hdc(&config).unwrap();
        assert_eq!(out.predictions.len(), 8);
        assert!(out.accuracy() > 0.9, "accuracy {}", out.accuracy());
        assert!(out.query_phase.latency_ns > 0.0);
        assert!(out.workload_queries_per_second() > 0.0);
        assert!(out.query_phase.searched_words > 0);
        assert!(out.setup.write_ops > 0);
        assert_eq!(out.query_phase.write_ops, 0, "no writes after setup");
        assert!(out.latency_per_query_ns() > 0.0);
    }

    #[test]
    fn knn_driver_matches_cpu_nearest() {
        let spec = ArchSpec::builder()
            .subarray(16, 16)
            .hierarchy(2, 2, 4)
            .build()
            .unwrap();
        let config = KnnConfig {
            spec,
            patterns: 48,
            dims: 64,
            queries: 6,
            k: 1,
            noise: 0.1,
            seed: 3,
        };
        let out = run_knn(&config).unwrap();
        assert_eq!(out.accuracy(), 1.0, "CAM top-1 must equal CPU top-1");
    }

    #[test]
    fn walk_and_tape_engines_agree_on_outcome_and_stats() {
        let spec = paper_arch(16, Optimization::Base, 1);
        let config = HdcConfig {
            spec,
            classes: 4,
            dims: 128,
            queries: 6,
            flip_rate: 0.05,
            seed: 9,
            wta_window: None,
            canonicalize: false,
        };
        let walk = run_hdc_with_engine(&config, Engine::Walk).unwrap();
        let tape = run_hdc_with_engine(&config, Engine::Tape).unwrap();
        assert_eq!(walk.predictions, tape.predictions);
        assert_eq!(walk.total, tape.total);
        assert_eq!(walk.setup, tape.setup);
        assert_eq!(walk.query_phase, tape.query_phase);
    }

    #[test]
    fn knn_engines_agree() {
        let spec = ArchSpec::builder()
            .subarray(16, 16)
            .hierarchy(2, 2, 4)
            .build()
            .unwrap();
        let config = KnnConfig {
            spec,
            patterns: 32,
            dims: 48,
            queries: 4,
            k: 1,
            noise: 0.1,
            seed: 3,
        };
        let walk = run_knn_with_engine(&config, Engine::Walk).unwrap();
        let tape = run_knn_with_engine(&config, Engine::Tape).unwrap();
        assert_eq!(walk.predictions, tape.predictions);
        assert_eq!(walk.total, tape.total);
    }

    #[test]
    fn scaled_query_phase_is_linear() {
        let spec = paper_arch(32, Optimization::Base, 1);
        let config = HdcConfig {
            spec,
            classes: 4,
            dims: 256,
            queries: 4,
            flip_rate: 0.0,
            seed: 1,
            wta_window: None,
            canonicalize: false,
        };
        let out = run_hdc(&config).unwrap();
        let scaled = out.scaled_query_phase(8);
        assert!((scaled.latency_ns - 2.0 * out.query_phase.latency_ns).abs() < 1e-6);
        // Power is invariant under scaling.
        assert!((scaled.power_w() - out.query_phase.power_w()).abs() < 1e-12);
    }

    #[test]
    fn power_config_increases_latency_not_energy() {
        let base = run_hdc(&HdcConfig {
            spec: paper_arch(32, Optimization::Base, 1),
            classes: 8,
            dims: 1024,
            queries: 4,
            flip_rate: 0.0,
            seed: 5,
            wta_window: None,
            canonicalize: false,
        })
        .unwrap();
        let power = run_hdc(&HdcConfig {
            spec: paper_arch(32, Optimization::Power, 1),
            classes: 8,
            dims: 1024,
            queries: 4,
            flip_rate: 0.0,
            seed: 5,
            wta_window: None,
            canonicalize: false,
        })
        .unwrap();
        assert!(
            power.query_phase.latency_ns > base.query_phase.latency_ns * 1.5,
            "power config must serialize subarrays"
        );
        assert!(power.query_phase.power_w() < base.query_phase.power_w());
        assert_eq!(base.predictions, power.predictions);
    }
}
