//! High-level experiment driver: compile a workload for an architecture,
//! execute it on the simulated CAM machine, and collect phase-separated
//! statistics. Shared by the examples, the integration tests, every
//! table/figure bench, and the `c4cam sweep` design-space runner.
//!
//! The central type is the [`Experiment`] builder: one composable
//! configuration surface over any [`Workload`] implementation —
//!
//! ```no_run
//! use c4cam::driver::{paper_arch, Experiment};
//! use c4cam::arch::Optimization;
//! use c4cam::workloads::HdcWorkload;
//!
//! let hdc = HdcWorkload::paper(16);
//! let out = Experiment::new(&hdc)
//!     .arch(paper_arch(32, Optimization::Base, 1))
//!     .backend("tape")
//!     .threads(4)
//!     .run()
//!     .unwrap();
//! println!("{:.2} ns/query", out.latency_per_query_ns());
//! ```
//!
//! Execution goes through the backend HAL
//! ([`c4cam_hal::BackendRegistry`]): the experiment names a backend
//! (`walk`, `tape`, `simd`, `trace`, or anything registered), the
//! driver resolves it, checks its declared capabilities against the
//! requested knobs, and runs the compiled plan.

use c4cam_arch::tech::TechnologyModel;
use c4cam_arch::{ArchSpec, CamKind, Optimization};
use c4cam_camsim::ExecStats;
use c4cam_core::mapping::{place, MappingProblem, Placement};
use c4cam_core::pipeline::C4camPipeline;
use c4cam_hal::{BackendRegistry, ExecOptions, FaultConfig, RetryPolicy, SharedPlan};
use c4cam_runtime::Value;
use c4cam_telemetry::{log as tlog, ArgValue, Phase, Telemetry};
use c4cam_tensor::Tensor;
use c4cam_workloads::{accuracy, ArgOrder, Workload, WorkloadInputs};
use std::error::Error;
use std::fmt;

/// Error of parsing a keyword-valued option (`--engine`, `--emit`,
/// `--format`, …): carries the offending input and the accepted
/// keyword list so every subcommand reports the same way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKeywordError {
    /// What was being parsed (e.g. `"engine"`).
    pub what: &'static str,
    /// The rejected input.
    pub given: String,
    /// Accepted keywords.
    pub expected: &'static [&'static str],
}

impl ParseKeywordError {
    /// Construct a keyword-parse error.
    pub fn new(
        what: &'static str,
        given: impl Into<String>,
        expected: &'static [&'static str],
    ) -> ParseKeywordError {
        ParseKeywordError {
            what,
            given: given.into(),
            expected,
        }
    }
}

impl fmt::Display for ParseKeywordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown {} '{}' (expected {})",
            self.what,
            self.given,
            self.expected.join("|")
        )
    }
}

impl Error for ParseKeywordError {}

/// Boxed driver-failure cause.
pub type DriverCause = Box<dyn Error + Send + Sync + 'static>;

/// Driver failure, tagged with the stage that produced it so sweep
/// reports can say *where* a grid point died. The underlying cause is
/// preserved and reachable through [`Error::source`].
#[derive(Debug)]
pub enum DriverError {
    /// Invalid experiment or sweep configuration (caught up front,
    /// before any compilation).
    Config(String),
    /// The mapping pass rejected the problem geometry.
    Place(DriverCause),
    /// Pipeline compilation (or tape compilation) failed.
    Compile(DriverCause),
    /// Simulator execution failed.
    Exec(DriverCause),
}

impl DriverError {
    /// The stage this error originated in.
    pub fn stage(&self) -> &'static str {
        match self {
            DriverError::Config(_) => "config",
            DriverError::Place(_) => "place",
            DriverError::Compile(_) => "compile",
            DriverError::Exec(_) => "exec",
        }
    }

    /// Wrap this error with the sweep grid point it occurred at,
    /// keeping the stage variant and the source chain.
    pub fn at_grid_point(self, point: impl fmt::Display) -> DriverError {
        let wrap = |source: DriverCause, point: String| -> DriverCause {
            Box::new(GridPointError { point, source })
        };
        match self {
            DriverError::Config(msg) => DriverError::Config(format!("grid point [{point}]: {msg}")),
            DriverError::Place(e) => DriverError::Place(wrap(e, point.to_string())),
            DriverError::Compile(e) => DriverError::Compile(wrap(e, point.to_string())),
            DriverError::Exec(e) => DriverError::Exec(wrap(e, point.to_string())),
        }
    }
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Config(msg) => write!(f, "driver error [config]: {msg}"),
            DriverError::Place(e) => write!(f, "driver error [place]: {e}"),
            DriverError::Compile(e) => write!(f, "driver error [compile]: {e}"),
            DriverError::Exec(e) => write!(f, "driver error [exec]: {e}"),
        }
    }
}

impl Error for DriverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DriverError::Config(_) => None,
            DriverError::Place(e) | DriverError::Compile(e) | DriverError::Exec(e) => {
                Some(e.as_ref())
            }
        }
    }
}

/// A driver failure annotated with the sweep grid point it occurred at.
#[derive(Debug)]
struct GridPointError {
    point: String,
    source: DriverCause,
}

impl fmt::Display for GridPointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grid point [{}]: {}", self.point, self.source)
    }
}

impl Error for GridPointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(self.source.as_ref())
    }
}

/// Outcome of one compiled-and-simulated experiment run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Cumulative statistics of the full execution (setup + queries).
    pub total: ExecStats,
    /// Statistics of the setup phase alone (allocation + programming).
    pub setup: ExecStats,
    /// Statistics of the query phase alone (`total − setup`).
    pub query_phase: ExecStats,
    /// Predicted stored-row index per query (top-1).
    pub predictions: Vec<usize>,
    /// Ground-truth labels.
    pub labels: Vec<usize>,
    /// Placement chosen by the mapping pass.
    pub placement: Placement,
    /// Number of queries executed.
    pub queries: usize,
    /// Serialized op trace, when the backend records one (the `trace`
    /// backend); parseable by `c4cam_engine::Trace::parse`.
    pub trace: Option<String>,
}

impl RunOutcome {
    /// Classification accuracy against the ground truth.
    pub fn accuracy(&self) -> f64 {
        accuracy(&self.predictions, &self.labels)
    }

    /// Fraction of queries whose prediction equals `reference`
    /// position-for-position (`1.0` = exact agreement). Used by
    /// `c4cam accuracy` to pin CAM predictions against the CPU
    /// reference classifier.
    ///
    /// # Panics
    /// Panics if `reference` does not have one entry per query.
    pub fn prediction_agreement(&self, reference: &[usize]) -> f64 {
        accuracy(&self.predictions, reference)
    }

    /// Query-phase latency per query, ns.
    pub fn latency_per_query_ns(&self) -> f64 {
        self.query_phase.latency_ns / self.queries.max(1) as f64
    }

    /// Query-phase energy per query, pJ.
    pub fn energy_per_query_pj(&self) -> f64 {
        self.query_phase.energy_pj() / self.queries.max(1) as f64
    }

    /// Workload queries classified per simulated second of device time
    /// (the application-level throughput; the device-level broadcast
    /// rate is [`ExecStats::queries_per_second`]).
    ///
    /// Returns 0 for zero-latency query phases.
    pub fn workload_queries_per_second(&self) -> f64 {
        if self.query_phase.latency_ns <= 0.0 {
            return 0.0;
        }
        self.queries as f64 / (self.query_phase.latency_ns * 1e-9)
    }

    /// Extrapolate the query phase linearly to `n` queries (the
    /// simulator is deterministic and per-query costs are identical, so
    /// this is exact for latency/energy; power is scale-invariant).
    pub fn scaled_query_phase(&self, n: usize) -> ExecStats {
        let f = n as f64 / self.queries.max(1) as f64;
        let mut s = self.query_phase.clone();
        s.search_ops = (s.search_ops as f64 * f) as u64;
        s.read_ops = (s.read_ops as f64 * f) as u64;
        s.merge_ops = (s.merge_ops as f64 * f) as u64;
        s.cell_energy_fj *= f;
        s.periph_energy_fj *= f;
        s.merge_energy_fj *= f;
        s.static_energy_fj *= f;
        s.latency_ns *= f;
        s
    }
}

/// Build an architecture from subarray geometry, hierarchy fan-outs
/// (mats/bank, arrays/mat, subarrays/array), optimization and cell
/// width, with the CAM kind following the cell width (>1 bit = MCAM).
/// The single source of that rule for [`paper_arch`] and the sweep
/// grid.
///
/// # Errors
/// Propagates spec validation failures (e.g. out-of-range cell
/// widths).
pub fn build_arch(
    subarray: (usize, usize),
    hierarchy: (usize, usize, usize),
    optimization: Optimization,
    bits: u32,
) -> Result<ArchSpec, c4cam_arch::SpecError> {
    ArchSpec::builder()
        .subarray(subarray.0, subarray.1)
        .hierarchy(hierarchy.0, hierarchy.1, hierarchy.2)
        .cam_kind(if bits > 1 {
            CamKind::Mcam
        } else {
            CamKind::Tcam
        })
        .bits_per_cell(bits)
        .optimization(optimization)
        .build()
}

/// Build the square-subarray architecture used throughout §IV
/// (4 mats/bank, 4 arrays/mat, 8 subarrays/array, auto banks).
pub fn paper_arch(n: usize, optimization: Optimization, bits: u32) -> ArchSpec {
    build_arch((n, n), (4, 4, 8), optimization, bits).expect("valid paper architecture")
}

/// One configured experiment: a [`Workload`] bound to an architecture,
/// technology, backend, and execution knobs. Construct with
/// [`Experiment::new`], chain the setters, then [`Experiment::run`].
///
/// `run` borrows the builder, so one configuration can be re-run (the
/// simulator is deterministic: identical results) or cheaply
/// re-derived per grid point by the sweep runner.
#[derive(Clone)]
pub struct Experiment<'w> {
    workload: &'w dyn Workload,
    spec: ArchSpec,
    tech: Option<TechnologyModel>,
    backend: String,
    threads: usize,
    wta_window: Option<u32>,
    canonicalize: bool,
    telemetry: Telemetry,
    faults: Option<FaultConfig>,
    retry: RetryPolicy,
}

impl fmt::Debug for Experiment<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Experiment")
            .field("workload", &self.workload.name())
            .field("spec", &self.spec)
            .field("tech", &self.tech.as_ref().map(|t| t.name.as_str()))
            .field("backend", &self.backend)
            .field("threads", &self.threads)
            .field("wta_window", &self.wta_window)
            .field("canonicalize", &self.canonicalize)
            .field("telemetry", &self.telemetry)
            .field("faults", &self.faults)
            .field("retry", &self.retry)
            .finish()
    }
}

impl<'w> Experiment<'w> {
    /// Start configuring an experiment on `workload`, with the paper's
    /// default architecture ([`ArchSpec::default`]), the default
    /// technology, the `tape` backend, and one thread.
    pub fn new(workload: &'w dyn Workload) -> Experiment<'w> {
        Experiment {
            workload,
            spec: ArchSpec::default(),
            tech: None,
            backend: "tape".to_string(),
            threads: 1,
            wta_window: None,
            canonicalize: false,
            telemetry: Telemetry::default(),
            faults: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Compile for `spec` (the paper's retargetability claim: change
    /// only the architecture, never the application).
    pub fn arch(mut self, spec: ArchSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Simulate on an explicit technology model instead of the spec's
    /// default.
    pub fn tech(mut self, tech: TechnologyModel) -> Self {
        self.tech = Some(tech);
        self
    }

    /// Select the execution backend by registry name (`walk`, `tape`,
    /// `simd`, `trace`, ...). Unknown names surface as a
    /// [`DriverError::Config`] listing the registered backends when the
    /// experiment runs.
    pub fn backend(mut self, backend: impl Into<String>) -> Self {
        self.backend = backend.into();
        self
    }

    /// Worker threads for backends with thread support (`1` =
    /// sequential). With more than one thread the batch executor shards
    /// the query loop — or, for single-query workloads, the subarray
    /// groups within a query — across `std::thread` workers.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Winner-take-all sensing window: best-match distances saturate at
    /// this mismatch count (paper \[19\]). `None` = unbounded sensing.
    pub fn wta_window(mut self, window: Option<u32>) -> Self {
        self.wta_window = window;
        self
    }

    /// Run the canonicalize cleanup after lowering.
    pub fn canonicalize(mut self, canonicalize: bool) -> Self {
        self.canonicalize = canonicalize;
        self
    }

    /// Attach a telemetry handle: while its recorder is enabled, `run`
    /// records `Parse`/`Place`/`Compile`/`Execute` phase spans plus the
    /// backend's per-op and per-shard child spans and post-run
    /// simulator counters. The disabled default records nothing.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Inject seeded device faults (stuck-at cells, sensing drift,
    /// transient mismatches) with the configured resilience mechanisms
    /// (spare rows, redundant-search voting). `spare_rows > 0` reserves
    /// that many physical rows per subarray: placement and compilation
    /// see a subarray derated by the reserve, and rows whose stuck-cell
    /// count crosses the threshold are remapped onto the spares.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Retry policy for panicked or timed-out shard workers on threaded
    /// backends (the default retries once, then falls back to
    /// sequential execution).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The configured architecture.
    pub fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// The architecture placement and compilation actually target:
    /// [`Experiment::spec`] with `rows_per_subarray` derated by the
    /// fault model's spare-row reserve.
    ///
    /// # Errors
    /// [`DriverError::Config`] when the reserve leaves no data rows.
    fn effective_spec(&self) -> Result<ArchSpec, DriverError> {
        let mut spec = self.spec.clone();
        if let Some(cfg) = &self.faults {
            let spare = cfg.resilience.spare_rows;
            if spare >= spec.rows_per_subarray {
                return Err(DriverError::Config(format!(
                    "spare_rows ({spare}) must leave at least one data row \
                     per subarray (rows_per_subarray = {})",
                    spec.rows_per_subarray
                )));
            }
            spec.rows_per_subarray -= spare;
        }
        Ok(spec)
    }

    /// Compile, place, and execute on a fresh machine; collect
    /// phase-separated statistics.
    ///
    /// Equivalent to [`Experiment::compile`] followed by
    /// [`CompiledExperiment::run`] — call those separately to pay the
    /// Parse/Place/Compile phases once and execute many times.
    ///
    /// # Errors
    /// [`DriverError::Config`] for invalid knob combinations (checked
    /// up front), otherwise the failing stage's error.
    pub fn run(&self) -> Result<RunOutcome, DriverError> {
        self.compile()?.run()
    }

    /// Run the Parse/Place/Compile phases once and return a reusable
    /// [`CompiledExperiment`]: an owned, `Send + Sync` artifact that
    /// executes the compiled plan any number of times without
    /// recompiling. This is the entry point the resident server's plan
    /// cache builds on.
    ///
    /// # Errors
    /// [`DriverError::Config`] for invalid knob combinations (checked
    /// up front), otherwise the failing stage's error.
    pub fn compile(&self) -> Result<CompiledExperiment, DriverError> {
        if self.threads == 0 {
            return Err(DriverError::Config(
                "threads must be >= 1 (got 0)".to_string(),
            ));
        }
        let backend = BackendRegistry::global()
            .get(&self.backend)
            .map_err(|e| DriverError::Config(e.message))?;
        if self.threads > 1 && !backend.capabilities().supports_threads {
            return Err(DriverError::Config(format!(
                "the {} backend is single-threaded (got threads = {})",
                backend.name(),
                self.threads
            )));
        }
        let nq = self.workload.query_count();
        if nq == 0 {
            return Err(DriverError::Config(format!(
                "workload '{}' has no queries",
                self.workload.name()
            )));
        }
        tlog::debug(format_args!(
            "experiment: workload '{}' on backend '{}' ({} queries)",
            self.workload.name(),
            self.backend,
            nq
        ));
        // Placement, compilation, and the simulated machine all target
        // the spec derated by the spare-row reserve: spares are real
        // physical rows, but no data row maps onto them.
        let spec = self.effective_spec()?;
        // Parse: workload → module plus input materialisation (pure
        // functions of workload × spec, so hoisting them ahead of
        // placement keeps the phase spans chronological).
        let (built, inputs) = {
            let mut span = self.telemetry.phase(Phase::Parse);
            span.arg("workload", ArgValue::Str(self.workload.name().to_string()));
            span.arg("queries", ArgValue::Int(nq as i64));
            (
                self.workload.build_module(&spec),
                self.workload.inputs(&spec),
            )
        };
        let placement = {
            let _span = self.telemetry.phase(Phase::Place);
            place(
                &spec,
                &MappingProblem {
                    stored_rows: self.workload.stored_rows(),
                    feature_dims: self.workload.dims(),
                    queries: nq,
                },
            )
            .map_err(|e| DriverError::Place(Box::new(e)))?
        };
        // Compile: pipeline lowering, then the backend's plan.
        let plan = {
            let mut span = self.telemetry.phase(Phase::Compile);
            span.arg("backend", ArgValue::Str(self.backend.clone()));
            let compiled = C4camPipeline::new(spec.clone())
                .with_options(c4cam_core::pipeline::PipelineOptions {
                    canonicalize: self.canonicalize,
                    ..Default::default()
                })
                .compile(built.module)
                .map_err(|e| DriverError::Compile(Box::new(e)))?;
            backend
                .compile_shared(&compiled.module, built.func, &spec)
                .map_err(|e| DriverError::Compile(Box::new(e)))?
        };
        Ok(CompiledExperiment {
            plan,
            placement,
            inputs,
            arg_order: built.arg_order,
            queries: nq,
            backend: self.backend.clone(),
            threads: self.threads,
            wta_window: self.wta_window,
            tech: self.tech.clone(),
            telemetry: self.telemetry.clone(),
            faults: self.faults.clone(),
            retry: self.retry.clone(),
        })
    }
}

/// A compiled, placed, ready-to-execute experiment: the product of
/// [`Experiment::compile`]. Owns the backend plan (behind a
/// [`SharedPlan`]), the placement, and the workload's materialised
/// inputs, so it has no borrow of the originating workload and is
/// `Send + Sync` — a resident service can cache one per
/// `(workload, ArchSpec, backend)` key and execute it from any thread.
///
/// Every execution pays only the Execute phase: Parse/Place/Compile
/// happened once in [`Experiment::compile`].
#[derive(Clone)]
pub struct CompiledExperiment {
    plan: SharedPlan,
    placement: Placement,
    inputs: WorkloadInputs,
    arg_order: ArgOrder,
    queries: usize,
    backend: String,
    threads: usize,
    wta_window: Option<u32>,
    tech: Option<TechnologyModel>,
    telemetry: Telemetry,
    faults: Option<FaultConfig>,
    retry: RetryPolicy,
}

impl fmt::Debug for CompiledExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledExperiment")
            .field("backend", &self.backend)
            .field("queries", &self.queries)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl CompiledExperiment {
    /// The query count the plan was compiled for (the tape bakes the
    /// query-loop trip count in, so every execution runs exactly this
    /// many queries).
    pub fn query_count(&self) -> usize {
        self.queries
    }

    /// Per-query feature dimensionality the plan expects.
    pub fn dims(&self) -> usize {
        self.inputs.queries.shape().get(1).copied().unwrap_or(0)
    }

    /// The placement chosen by the mapping pass.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The workload's own (quantized) query tensor, as compiled — the
    /// rows [`CompiledExperiment::run`] executes.
    pub fn compiled_queries(&self) -> &Tensor {
        &self.inputs.queries
    }

    /// Swap the telemetry handle for subsequent executions (e.g. to
    /// give each service request its own recorder).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> CompiledExperiment {
        self.telemetry = telemetry;
        self
    }

    /// Execute the compiled plan against the workload's own inputs.
    ///
    /// # Errors
    /// [`DriverError::Exec`] on simulator failure.
    pub fn run(&self) -> Result<RunOutcome, DriverError> {
        self.execute(self.inputs.queries.clone(), self.inputs.labels.clone())
    }

    /// Execute the compiled plan against caller-supplied query rows
    /// (the dynamic-batching entry point: the service pads a coalesced
    /// batch to the compiled capacity and substitutes it here).
    ///
    /// The returned outcome has no ground-truth labels, so
    /// [`RunOutcome::accuracy`] is not meaningful on it (the caller
    /// compares predictions directly).
    ///
    /// # Errors
    /// [`DriverError::Config`] when `queries` does not match the
    /// compiled shape; [`DriverError::Exec`] on simulator failure.
    pub fn run_with_queries(&self, queries: Tensor) -> Result<RunOutcome, DriverError> {
        let expected = self.inputs.queries.shape();
        if queries.shape() != expected {
            return Err(DriverError::Config(format!(
                "query tensor shape {:?} does not match the compiled shape {:?} \
                 (the plan bakes the query count in; pad the batch to capacity)",
                queries.shape(),
                expected
            )));
        }
        self.execute(queries, Vec::new())
    }

    fn execute(&self, queries: Tensor, labels: Vec<usize>) -> Result<RunOutcome, DriverError> {
        let nq = self.queries;
        let stored = self.inputs.stored.clone();
        // The workload declares its kernel's argument order — no shape
        // heuristics (those are ambiguous when queries == stored rows).
        let args = match self.arg_order {
            ArgOrder::QueriesThenStored => vec![Value::Tensor(queries), Value::Tensor(stored)],
            ArgOrder::StoredThenQueries => vec![Value::Tensor(stored), Value::Tensor(queries)],
        };
        let opts = ExecOptions {
            threads: self.threads,
            wta_window: self.wta_window,
            tech: self.tech.clone(),
            telemetry: self.telemetry.clone(),
            faults: self.faults.clone(),
            retry: self.retry.clone(),
            chaos: None,
        };
        let execution = {
            let mut span = self.telemetry.phase(Phase::Execute);
            span.arg("backend", ArgValue::Str(self.backend.clone()));
            span.arg("threads", ArgValue::Int(self.threads as i64));
            self.plan
                .execute(&args, &opts)
                .map_err(|e| DriverError::Exec(Box::new(e)))?
        };
        if self.telemetry.enabled() {
            let s = &execution.stats;
            self.telemetry.counter("sim.latency_ns", s.latency_ns);
            self.telemetry.counter("sim.energy_fj", s.total_energy_fj());
            self.telemetry
                .counter("sim.search_ops", s.search_ops as f64);
            self.telemetry
                .counter("sim.searched_words", s.searched_words as f64);
            if self.faults.is_some() {
                self.telemetry
                    .counter("sim.fault_cells", s.fault_cells as f64);
                self.telemetry
                    .counter("sim.fault_transients", s.fault_transients as f64);
                self.telemetry
                    .counter("sim.rows_remapped", s.rows_remapped as f64);
            }
        }
        tlog::debug(format_args!(
            "experiment done: {} search ops, {:.3} ms simulated",
            execution.stats.search_ops,
            execution.stats.latency_ms()
        ));
        let indices = execution
            .outputs
            .get(1)
            .and_then(Value::as_tensor)
            .ok_or_else(|| DriverError::Exec("kernel returned no indices".to_string().into()))?;
        let predictions: Vec<usize> = (0..nq)
            .map(|q| indices.data()[q * indices.len() / nq.max(1)] as usize)
            .collect();
        let total = execution.stats.clone();
        let setup = execution
            .phase("setup-complete")
            .cloned()
            .unwrap_or_default();
        let query_phase = total.delta(&setup);
        Ok(RunOutcome {
            total,
            setup,
            query_phase,
            predictions,
            labels,
            placement: self.placement,
            queries: nq,
            trace: execution.trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_workloads::{HdcWorkload, KnnWorkload};

    fn small_hdc() -> HdcWorkload {
        HdcWorkload {
            classes: 4,
            dims: 256,
            queries: 8,
            flip_rate: 0.05,
            seed: 1,
        }
    }

    #[test]
    fn hdc_experiment_runs_and_classifies() {
        let hdc = small_hdc();
        let out = Experiment::new(&hdc)
            .arch(paper_arch(32, Optimization::Base, 1))
            .run()
            .unwrap();
        assert_eq!(out.predictions.len(), 8);
        assert!(out.accuracy() > 0.9, "accuracy {}", out.accuracy());
        assert!(out.query_phase.latency_ns > 0.0);
        assert!(out.workload_queries_per_second() > 0.0);
        assert!(out.query_phase.searched_words > 0);
        assert!(out.setup.write_ops > 0);
        assert_eq!(out.query_phase.write_ops, 0, "no writes after setup");
        assert!(out.latency_per_query_ns() > 0.0);
    }

    #[test]
    fn knn_experiment_matches_cpu_nearest() {
        let knn = KnnWorkload {
            patterns: 48,
            dims: 64,
            queries: 6,
            k: 1,
            noise: 0.1,
            seed: 3,
        };
        let spec = ArchSpec::builder()
            .subarray(16, 16)
            .hierarchy(2, 2, 4)
            .build()
            .unwrap();
        let out = Experiment::new(&knn).arch(spec).run().unwrap();
        assert_eq!(out.accuracy(), 1.0, "CAM top-1 must equal CPU top-1");
    }

    #[test]
    fn dtree_experiment_matches_cpu_nearest_path() {
        let dtree = c4cam_workloads::DtreeWorkload::new(8, 3, 4, 5, 77);
        let spec = ArchSpec::builder()
            .subarray(16, 16)
            .hierarchy(2, 2, 4)
            .bits_per_cell(2)
            .cam_kind(CamKind::Mcam)
            .build()
            .unwrap();
        let out = Experiment::new(&dtree).arch(spec).run().unwrap();
        assert_eq!(out.accuracy(), 1.0, "CAM nearest path must equal CPU");
    }

    #[test]
    fn hdc_arg_order_is_correct_when_queries_equal_classes() {
        // Regression: the pre-Experiment driver bound kernel arguments
        // by a shape heuristic that was ambiguous when the query count
        // equalled the stored-row count, transposing the similarity
        // matrix. The workload now declares its argument order, so the
        // device must reproduce the CPU dot-argmax reference even at
        // queries == classes with heavy noise (where labels no longer
        // coincide with q % classes).
        let hdc = HdcWorkload {
            classes: 4,
            dims: 128,
            queries: 4,
            flip_rate: 0.9,
            seed: 11,
        };
        let spec = paper_arch(16, Optimization::Base, 1);
        let out = Experiment::new(&hdc).arch(spec.clone()).run().unwrap();
        let inputs = hdc.inputs(&spec);
        let cpu: Vec<usize> = (0..4)
            .map(|q| {
                let qr = inputs.queries.row(q).unwrap();
                let dot = |c: usize| -> f64 {
                    inputs
                        .stored
                        .row(c)
                        .unwrap()
                        .iter()
                        .zip(qr)
                        .map(|(&s, &x)| f64::from(s) * f64::from(x))
                        .sum()
                };
                // First-index-wins argmax, matching the device's top-1.
                let mut best = 0usize;
                for c in 1..4 {
                    if dot(c) > dot(best) {
                        best = c;
                    }
                }
                best
            })
            .collect();
        assert_eq!(out.predictions, cpu, "device must match CPU dot-argmax");
    }

    #[test]
    fn every_registered_backend_agrees_with_the_walk_oracle() {
        let hdc = HdcWorkload {
            classes: 4,
            dims: 128,
            queries: 6,
            flip_rate: 0.05,
            seed: 9,
        };
        let exp = Experiment::new(&hdc).arch(paper_arch(16, Optimization::Base, 1));
        let walk = exp.clone().backend("walk").run().unwrap();
        for backend in BackendRegistry::global().all() {
            let out = exp.clone().backend(backend.name()).run().unwrap();
            assert_eq!(out.predictions, walk.predictions, "{}", backend.name());
            if backend.capabilities().stats == c4cam_hal::StatsContract::DeviceExact {
                assert_eq!(out.total, walk.total, "{} total", backend.name());
                assert_eq!(out.setup, walk.setup, "{} setup", backend.name());
                assert_eq!(
                    out.query_phase,
                    walk.query_phase,
                    "{} query phase",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn trace_backend_surfaces_its_trace_in_the_outcome() {
        let hdc = small_hdc();
        let exp = Experiment::new(&hdc).arch(paper_arch(32, Optimization::Base, 1));
        let tape = exp.clone().run().unwrap();
        assert!(tape.trace.is_none(), "tape records no trace");
        let traced = exp.backend("trace").run().unwrap();
        let text = traced.trace.expect("trace backend records a trace");
        assert!(!c4cam_engine::Trace::parse(&text).unwrap().is_empty());
        assert_eq!(traced.predictions, tape.predictions);
    }

    #[test]
    fn default_backend_is_the_tape_engine() {
        let hdc = small_hdc();
        let exp = Experiment::new(&hdc).arch(paper_arch(32, Optimization::Base, 1));
        let default = exp.clone().run().unwrap();
        let tape = exp.backend("tape").run().unwrap();
        assert_eq!(default.predictions, tape.predictions);
        assert_eq!(default.total, tape.total);
        assert_eq!(default.query_phase, tape.query_phase);
    }

    #[test]
    fn threaded_experiment_reproduces_sequential_outputs() {
        let hdc = small_hdc();
        let exp = Experiment::new(&hdc).arch(paper_arch(32, Optimization::Base, 1));
        let seq = exp.clone().run().unwrap();
        let par = exp.threads(4).run().unwrap();
        assert_eq!(seq.predictions, par.predictions);
        assert_eq!(seq.query_phase.search_ops, par.query_phase.search_ops);
        assert!(
            (seq.query_phase.latency_ns - par.query_phase.latency_ns).abs()
                <= 1e-6 * seq.query_phase.latency_ns.max(1.0)
        );
    }

    #[test]
    fn zero_threads_is_a_config_error() {
        let hdc = small_hdc();
        let e = Experiment::new(&hdc).threads(0).run().unwrap_err();
        assert!(matches!(e, DriverError::Config(_)), "{e}");
        assert_eq!(e.stage(), "config");
        assert!(e.source().is_none());
    }

    #[test]
    fn threads_on_a_single_threaded_backend_are_a_config_error() {
        let hdc = small_hdc();
        for name in ["walk", "trace"] {
            let e = Experiment::new(&hdc)
                .backend(name)
                .threads(2)
                .run()
                .unwrap_err();
            assert!(matches!(e, DriverError::Config(_)), "{name}: {e}");
            assert!(e.to_string().contains(name), "{e}");
        }
    }

    #[test]
    fn unknown_backend_is_a_config_error_listing_registered_names() {
        let hdc = small_hdc();
        let e = Experiment::new(&hdc).backend("jit").run().unwrap_err();
        assert!(matches!(e, DriverError::Config(_)), "{e}");
        let msg = e.to_string();
        assert!(msg.contains("unknown engine 'jit'"), "{msg}");
        for name in ["simd", "tape", "trace", "walk"] {
            assert!(msg.contains(name), "{msg}");
        }
    }

    #[test]
    fn place_failure_preserves_source_and_stage() {
        let hdc = small_hdc();
        // A fixed bank count far too small for the problem.
        let spec = ArchSpec::builder()
            .subarray(16, 16)
            .hierarchy(1, 1, 1)
            .banks(1)
            .build()
            .unwrap();
        let big = HdcWorkload {
            classes: 512,
            dims: 4096,
            ..hdc
        };
        let e = Experiment::new(&big).arch(spec).run().unwrap_err();
        assert_eq!(e.stage(), "place", "{e}");
        assert!(e.source().is_some(), "cause must be preserved");
        let wrapped = e.at_grid_point("16x16/latency/default/1b");
        assert_eq!(wrapped.stage(), "place", "variant preserved");
        assert!(
            wrapped.to_string().contains("grid point [16x16"),
            "{wrapped}"
        );
        // The original cause is still on the chain.
        assert!(wrapped.source().unwrap().source().is_some());
    }

    #[test]
    fn scaled_query_phase_is_linear() {
        let hdc = HdcWorkload {
            classes: 4,
            dims: 256,
            queries: 4,
            flip_rate: 0.0,
            seed: 1,
        };
        let out = Experiment::new(&hdc)
            .arch(paper_arch(32, Optimization::Base, 1))
            .run()
            .unwrap();
        let scaled = out.scaled_query_phase(8);
        assert!((scaled.latency_ns - 2.0 * out.query_phase.latency_ns).abs() < 1e-6);
        // Power is invariant under scaling.
        assert!((scaled.power_w() - out.query_phase.power_w()).abs() < 1e-12);
    }

    #[test]
    fn power_config_increases_latency_not_energy() {
        let hdc = HdcWorkload {
            classes: 8,
            dims: 1024,
            queries: 4,
            flip_rate: 0.0,
            seed: 5,
        };
        let base = Experiment::new(&hdc)
            .arch(paper_arch(32, Optimization::Base, 1))
            .run()
            .unwrap();
        let power = Experiment::new(&hdc)
            .arch(paper_arch(32, Optimization::Power, 1))
            .run()
            .unwrap();
        assert!(
            power.query_phase.latency_ns > base.query_phase.latency_ns * 1.5,
            "power config must serialize subarrays"
        );
        assert!(power.query_phase.power_w() < base.query_phase.power_w());
        assert_eq!(base.predictions, power.predictions);
    }
}
