//! # c4cam — a compiler for CAM-based in-memory accelerators
//!
//! Rust reproduction of *"C4CAM: A Compiler for CAM-based In-memory
//! Accelerators"* (ASPLOS 2024): an end-to-end flow from TorchScript-like
//! input through a multi-level IR (torch → cim → cam) onto a simulated,
//! hierarchical CAM accelerator with calibrated energy/latency models.
//!
//! This umbrella crate re-exports the workspace and provides
//! [`driver`] — the high-level API shared by the examples, integration
//! tests and the benchmark harness.
//!
//! ```text
//! TorchScript ─frontend→ torch IR ─torch-to-cim→ cim ─fuse→ similarity
//!    ─cam-map→ cam + scf loop nest ─runtime→ CAM simulator (+ stats)
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![warn(missing_docs)]

pub use c4cam_arch as arch;
pub use c4cam_camsim as camsim;
pub use c4cam_core as compiler;
pub use c4cam_datasets as datasets;
pub use c4cam_engine as engine;
pub use c4cam_frontend as frontend;
pub use c4cam_hal as hal;
pub use c4cam_ir as ir;
pub use c4cam_runtime as runtime;
pub use c4cam_telemetry as telemetry;
pub use c4cam_tensor as tensor;
pub use c4cam_workloads as workloads;

pub mod accuracy;
pub mod benchgate;
pub mod cli;
pub mod driver;
pub mod service;
pub mod sweep;
