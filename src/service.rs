//! Bridge between the resident server (`c4cam_server`) and the
//! compiler pipeline.
//!
//! The server crate deliberately knows nothing about tensors, IR, or
//! backends — it speaks [`PlanSource`]/[`BatchRunner`]. This module
//! implements both over a loaded [`Dataset`]:
//!
//! - [`DatasetPlanSource::compile`] runs the full Parse/Place/Compile
//!   pipeline once per [`PlanKey`] via [`Experiment::compile`] and
//!   wraps the resulting [`CompiledExperiment`] in a runner;
//! - the runner executes coalesced batches with
//!   [`CompiledExperiment::run_with_queries`], padding each batch to
//!   the compiled capacity (plans bake their query count into the
//!   tape; per-query independence makes padding output-neutral).
//!
//! Requests address queries by *row index into the dataset's query
//! pool* (the tail-quarter split every other subcommand uses), so a
//! client holding the same dataset can verify every response against
//! [`reference_pool_classes`] exactly.

use crate::driver::{build_arch, CompiledExperiment, Experiment};
use c4cam_arch::{ArchSpec, Optimization};
use c4cam_datasets::{Dataset, DatasetTask, DatasetWorkload};
use c4cam_server::protocol::PlanKey;
use c4cam_server::{BatchRunner, PlanSource, RowsOutcome};
use c4cam_telemetry::Telemetry;
use c4cam_tensor::Tensor;
use c4cam_workloads::Workload as _;
use std::sync::Arc;

/// Compiles dataset classification plans for the service cache.
pub struct DatasetPlanSource {
    dataset: Dataset,
    defaults: PlanKey,
    max_batch: usize,
    threads: usize,
    telemetry: Telemetry,
}

impl DatasetPlanSource {
    /// A source over `dataset` with the given default plan key,
    /// maximum batch size (clamped to the query-pool size at compile
    /// time), and executor thread count.
    pub fn new(
        dataset: Dataset,
        defaults: PlanKey,
        max_batch: usize,
        threads: usize,
        telemetry: Telemetry,
    ) -> DatasetPlanSource {
        DatasetPlanSource {
            dataset,
            defaults,
            max_batch: max_batch.max(1),
            threads,
            telemetry,
        }
    }

    /// Rows in the dataset's query pool (the index space requests
    /// address).
    pub fn pool_size(&self) -> usize {
        pool_split(&self.dataset).1
    }

    /// The batch capacity a plan compiled now would have.
    pub fn capacity(&self) -> usize {
        self.max_batch.min(self.pool_size())
    }
}

fn parse_task(task: &str) -> Result<DatasetTask, String> {
    match task {
        "hdc" => Ok(DatasetTask::Hdc),
        "knn" => Ok(DatasetTask::Knn),
        other => Err(format!("unknown task '{other}' (expected hdc|knn)")),
    }
}

/// The deterministic train/pool split every dataset workload uses:
/// `(train, pool)` sample counts.
fn pool_split(dataset: &Dataset) -> (usize, usize) {
    let pool = (dataset.samples() / 4).max(1);
    (dataset.samples() - pool, pool)
}

fn arch_for(key: &PlanKey) -> Result<ArchSpec, String> {
    build_arch(
        (key.subarray, key.subarray),
        (4, 4, 8),
        Optimization::Base,
        key.bits,
    )
    .map_err(|e| format!("invalid arch for {key}: {e}"))
}

impl PlanSource for DatasetPlanSource {
    fn default_key(&self) -> PlanKey {
        self.defaults.clone()
    }

    fn compile(&self, key: &PlanKey) -> Result<Arc<dyn BatchRunner>, String> {
        let task = parse_task(&key.task)?;
        let spec = arch_for(key)?;
        let (train, pool) = pool_split(&self.dataset);
        let capacity = self.max_batch.min(pool);
        let workload = DatasetWorkload::new(self.dataset.clone(), task, Some(capacity))
            .map_err(|e| format!("workload for {key}: {e}"))?;
        let compiled = Experiment::new(&workload)
            .arch(spec.clone())
            .backend(key.backend.as_str())
            .threads(self.threads)
            .telemetry(self.telemetry.clone())
            .compile()
            .map_err(|e| format!("compile {key}: {e}"))?;
        // Quantize the whole pool once so request handling is a pure
        // row gather. The quantizer depends only on the spec's cell
        // width, so these rows match what the plan was compiled over.
        let quantizer = workload.quantizer(&spec);
        let pool_rows: Vec<Vec<f32>> = (0..pool)
            .map(|i| quantizer.quantize_row(self.dataset.feature_row(train + i)))
            .collect();
        let row_classes: Vec<usize> = (0..workload.stored_rows())
            .map(|r| workload.row_class(r))
            .collect();
        Ok(Arc::new(DatasetRunner {
            compiled,
            pool_rows,
            dims: self.dataset.dims(),
            capacity,
            row_classes,
        }))
    }
}

/// A compiled plan plus the quantized query pool it executes over.
struct DatasetRunner {
    compiled: CompiledExperiment,
    pool_rows: Vec<Vec<f32>>,
    dims: usize,
    capacity: usize,
    row_classes: Vec<usize>,
}

impl BatchRunner for DatasetRunner {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn pool_size(&self) -> usize {
        self.pool_rows.len()
    }

    fn run_rows(&self, rows: &[usize]) -> Result<RowsOutcome, String> {
        if rows.is_empty() {
            return Err("empty batch".to_string());
        }
        if rows.len() > self.capacity {
            return Err(format!(
                "batch of {} rows exceeds compiled capacity {}",
                rows.len(),
                self.capacity
            ));
        }
        let mut data = Vec::with_capacity(self.capacity * self.dims);
        for &r in rows {
            let row = self
                .pool_rows
                .get(r)
                .ok_or_else(|| format!("row {r} out of pool (size {})", self.pool_rows.len()))?;
            data.extend_from_slice(row);
        }
        // Pad to the compiled shape with copies of the first row; the
        // padded queries run but their outputs are discarded below.
        for _ in rows.len()..self.capacity {
            data.extend_from_slice(&self.pool_rows[rows[0]]);
        }
        let queries = Tensor::from_vec(vec![self.capacity, self.dims], data)
            .map_err(|e| format!("batch tensor: {e}"))?;
        let outcome = self
            .compiled
            .run_with_queries(queries)
            .map_err(|e| format!("execute: {e}"))?;
        let predictions: Vec<usize> = outcome.predictions[..rows.len()].to_vec();
        let classes: Vec<usize> = predictions
            .iter()
            .map(|&p| {
                self.row_classes
                    .get(p)
                    .copied()
                    .expect("prediction within stored rows")
            })
            .collect();
        Ok(RowsOutcome {
            predictions,
            classes,
            sim_latency_ns_per_query: outcome.latency_per_query_ns(),
            sim_energy_pj_per_query: outcome.energy_per_query_pj(),
        })
    }
}

/// CPU-reference class per query-pool row, for exact verification of
/// service responses: nearest stored row over the quantized grid
/// (what the CAM computes), mapped through the row→class rule.
///
/// # Errors
/// Unknown task keywords, invalid arch parameters, and datasets the
/// task cannot adapt (e.g. a class with no training representative).
pub fn reference_pool_classes(dataset: &Dataset, key: &PlanKey) -> Result<Vec<usize>, String> {
    let task = parse_task(&key.task)?;
    let spec = arch_for(key)?;
    let (_, pool) = pool_split(dataset);
    // Full-pool workload: predict_cpu covers every addressable row.
    let workload = DatasetWorkload::new(dataset.clone(), task, Some(pool))
        .map_err(|e| format!("workload: {e}"))?;
    Ok(workload
        .predict_cpu(&spec)
        .iter()
        .map(|&row| workload.row_class(row))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_datasets::mini_mnist;

    fn key(backend: &str) -> PlanKey {
        PlanKey {
            task: "hdc".into(),
            bits: 2,
            subarray: 32,
            backend: backend.into(),
        }
    }

    fn source(max_batch: usize) -> DatasetPlanSource {
        DatasetPlanSource::new(
            mini_mnist::dataset(),
            key("tape"),
            max_batch,
            2,
            Telemetry::default(),
        )
    }

    #[test]
    fn compiled_runner_matches_cpu_reference_for_every_pool_row() {
        let src = source(8);
        let runner = src.compile(&key("tape")).unwrap();
        assert_eq!(runner.capacity(), 8);
        let pool = runner.pool_size();
        assert_eq!(pool, src.pool_size());
        let expected = reference_pool_classes(&mini_mnist::dataset(), &key("tape")).unwrap();
        assert_eq!(expected.len(), pool);
        for start in (0..pool).step_by(8) {
            let rows: Vec<usize> = (start..(start + 8).min(pool)).collect();
            let out = runner.run_rows(&rows).unwrap();
            assert_eq!(out.predictions.len(), rows.len());
            for (i, &row) in rows.iter().enumerate() {
                assert_eq!(
                    out.classes[i], expected[row],
                    "row {row} diverged from the CPU reference"
                );
            }
            assert!(out.sim_latency_ns_per_query > 0.0);
            assert!(out.sim_energy_pj_per_query > 0.0);
        }
    }

    #[test]
    fn partial_batches_match_full_batches_bit_for_bit() {
        let src = source(4);
        let runner = src.compile(&key("tape")).unwrap();
        let full = runner.run_rows(&[5, 9, 2, 11]).unwrap();
        // The same rows in two padded partial batches.
        let a = runner.run_rows(&[5, 9]).unwrap();
        let b = runner.run_rows(&[2, 11]).unwrap();
        assert_eq!(&full.predictions[..2], &a.predictions[..]);
        assert_eq!(&full.predictions[2..], &b.predictions[..]);
        assert_eq!(&full.classes[..2], &a.classes[..]);
        assert_eq!(&full.classes[2..], &b.classes[..]);
    }

    #[test]
    fn runner_rejects_out_of_range_and_oversize_batches() {
        let src = source(2);
        let runner = src.compile(&key("tape")).unwrap();
        let pool = runner.pool_size();
        assert!(runner
            .run_rows(&[pool])
            .unwrap_err()
            .contains("out of pool"));
        assert!(runner
            .run_rows(&[0, 1, 2])
            .unwrap_err()
            .contains("exceeds compiled capacity"));
        assert!(runner.run_rows(&[]).unwrap_err().contains("empty"));
    }

    #[test]
    fn unknown_backends_and_tasks_fail_to_compile() {
        let src = source(4);
        assert!(src.compile(&key("no-such-backend")).is_err());
        let mut k = key("tape");
        k.task = "svm".into();
        let e = src.compile(&k).err().expect("compile should fail");
        assert!(e.contains("unknown task"), "{e}");
    }
}
