//! The `c4cam` command-line compiler driver.
//!
//! ```text
//! c4cam compile --arch spec.txt --source kernel.py --input 10x8192 \
//!               --param weight=10x8192 --emit cam
//! c4cam run     --arch spec.txt --source kernel.py --input 10x8192 \
//!               --param weight=10x8192 --data q.csv --data w.csv
//! c4cam place   --arch spec.txt --stored-rows 10 --dims 8192
//! ```

use c4cam::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse_args(&args).and_then(|cmd| cli::execute(&cmd)) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
