//! The `c4cam` command-line compiler driver.
//!
//! ```text
//! c4cam compile --arch spec.txt --source kernel.py --input 10x8192 \
//!               --param weight=10x8192 --emit cam
//! c4cam run     --arch spec.txt --source kernel.py --input 10x8192 \
//!               --param weight=10x8192 --data q.csv --data w.csv
//! c4cam place   --arch spec.txt --stored-rows 10 --dims 8192
//! ```
//!
//! Reports go to stdout; diagnostics go to stderr. The exit code
//! distinguishes usage errors (2: bad flags/values, rejected at parse
//! time) from execution failures (1: a valid command whose pipeline,
//! simulation, or I/O failed), so scripts can tell a typo from a real
//! failure.

use c4cam::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse_args(&args) {
        Ok(command) => command,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match cli::execute(&command) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
