//! App-level accuracy evaluation on real datasets (paper Fig. 7,
//! Table 2): run CAM inference through the unchanged [`Experiment`]
//! pipeline, run the CPU reference classifier on the same quantized
//! data, and report both accuracies plus their row-level agreement
//! alongside the simulator's latency/energy numbers.
//!
//! The agreement column is the load-bearing one: the device executes
//! the same argmin reduction over the same integer level grid as
//! [`DatasetWorkload::predict_cpu`], so agreement is expected to be
//! exactly `1.0` — any accuracy delta between CAM and CPU would be a
//! simulation bug, not a hardware property. Accuracy deltas across
//! `bits_per_cell` are real: they measure what quantization costs.
//!
//! The `c4cam accuracy` subcommand is a thin wrapper over
//! [`evaluate`] + [`AccuracyReport`].

use crate::driver::{DriverError, Experiment, RunOutcome};
use c4cam_arch::ArchSpec;
use c4cam_camsim::ExecStats;
use c4cam_datasets::{DatasetTask, DatasetWorkload};
use c4cam_hal::FaultConfig;
use c4cam_telemetry::{cat, Telemetry};
use c4cam_workloads::Workload;
use std::fmt::Write as _;

/// Fault-injection knobs for one accuracy evaluation: the seeded rate
/// model plus the resilience levers the `c4cam accuracy` subcommand
/// exposes (`--fault-rate`, `--fault-seed`, `--spare-rows`, `--vote`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultKnobs {
    /// Headline fault rate: stuck-at faults split evenly between
    /// stuck-0 and stuck-1, drift and transient mismatches both at
    /// this rate (see [`c4cam_hal::FaultModel::with_rate`]).
    pub rate: f64,
    /// Seed for the deterministic fault-site hash streams.
    pub seed: u64,
    /// Spare rows reserved per subarray for stuck-row remapping.
    pub spare_rows: usize,
    /// k-modular redundant-search voting factor (1 = voting off).
    pub vote: usize,
}

impl FaultKnobs {
    /// Knobs for `rate` and `seed` with every resilience lever off.
    pub fn new(rate: f64, seed: u64) -> FaultKnobs {
        FaultKnobs {
            rate,
            seed,
            spare_rows: 0,
            vote: 1,
        }
    }

    /// The [`FaultConfig`] these knobs describe.
    pub fn config(&self) -> FaultConfig {
        let mut cfg = FaultConfig::with_rate(self.rate, self.seed);
        cfg.resilience.spare_rows = self.spare_rows;
        cfg.resilience.vote = self.vote.max(1);
        cfg
    }
}

/// One evaluated configuration: a dataset workload on one
/// architecture, with CAM and CPU-reference results side by side.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Workload name (`dataset-hdc` / `dataset-knn`).
    pub task: String,
    /// Dataset display name.
    pub dataset: String,
    /// Stored rows (prototypes or training samples).
    pub stored_rows: usize,
    /// Queries executed.
    pub queries: usize,
    /// Feature dimensionality.
    pub dims: usize,
    /// Classes in the dataset.
    pub classes: usize,
    /// Cell width the data was quantized to.
    pub bits_per_cell: u32,
    /// Execution backend name (a [`c4cam_hal::BackendRegistry`] key).
    pub engine: String,
    /// Worker threads.
    pub threads: usize,
    /// CAM classification accuracy against ground-truth classes.
    pub cam_accuracy: f64,
    /// CPU reference classifier accuracy against the same truth.
    pub cpu_accuracy: f64,
    /// Fraction of queries where CAM and CPU retrieve the same row.
    pub agreement: f64,
    /// Headline fault rate the run was evaluated under (0 = no
    /// injection).
    pub fault_rate: f64,
    /// Seed of the fault-site hash streams (0 when faults are off).
    pub fault_seed: u64,
    /// The full experiment outcome (stats, placement, predictions).
    pub outcome: RunOutcome,
}

impl AccuracyRow {
    /// Query-phase latency per query, ns.
    pub fn latency_per_query_ns(&self) -> f64 {
        self.outcome.latency_per_query_ns()
    }

    /// Query-phase energy per query, pJ.
    pub fn energy_per_query_pj(&self) -> f64 {
        self.outcome.energy_per_query_pj()
    }

    /// Query-phase statistics.
    pub fn query_phase(&self) -> &ExecStats {
        &self.outcome.query_phase
    }

    /// Stuck/drifted fault sites materialized while programming the
    /// device (run total — they accrue in the setup phase, not the
    /// query phase).
    pub fn fault_cells(&self) -> u64 {
        self.outcome.total.fault_cells
    }

    /// Transient per-search mismatches injected during queries.
    pub fn fault_transients(&self) -> u64 {
        self.outcome.total.fault_transients
    }

    /// Logical rows remapped onto spare rows.
    pub fn rows_remapped(&self) -> u64 {
        self.outcome.total.rows_remapped
    }
}

/// Evaluate `workload` on `spec`: CAM inference via the experiment
/// pipeline vs. the CPU reference classifier on identical quantized
/// inputs.
///
/// # Errors
/// Propagates the experiment's [`DriverError`] (config, place,
/// compile, or exec stage).
pub fn evaluate(
    workload: &DatasetWorkload,
    spec: &ArchSpec,
    engine: &str,
    threads: usize,
) -> Result<AccuracyRow, DriverError> {
    evaluate_with_telemetry(workload, spec, engine, threads, &Telemetry::default())
}

/// [`evaluate`] with a telemetry handle: the experiment's phase/op
/// spans are recorded under a `grid` span naming the evaluated
/// configuration (`<task>/<bits>b/<engine>`).
///
/// # Errors
/// Propagates the experiment's [`DriverError`] (config, place,
/// compile, or exec stage).
pub fn evaluate_with_telemetry(
    workload: &DatasetWorkload,
    spec: &ArchSpec,
    engine: &str,
    threads: usize,
    telemetry: &Telemetry,
) -> Result<AccuracyRow, DriverError> {
    evaluate_faulty(workload, spec, engine, threads, None, telemetry)
}

/// [`evaluate_with_telemetry`] under seeded fault injection: `faults`
/// (when present) configures the device fault model and resilience
/// levers through [`Experiment::faults`], and the resulting row carries
/// the fault rate/seed plus the injected-fault counters. `None` is
/// byte-for-byte the fault-free evaluation.
///
/// # Errors
/// Propagates the experiment's [`DriverError`] (config, place,
/// compile, or exec stage).
pub fn evaluate_faulty(
    workload: &DatasetWorkload,
    spec: &ArchSpec,
    engine: &str,
    threads: usize,
    faults: Option<&FaultKnobs>,
    telemetry: &Telemetry,
) -> Result<AccuracyRow, DriverError> {
    let _span = telemetry.span(
        format!("{}/{}b/{}", workload.name(), spec.bits_per_cell, engine),
        cat::GRID,
    );
    let mut experiment = Experiment::new(workload)
        .arch(spec.clone())
        .backend(engine)
        .threads(threads)
        .telemetry(telemetry.clone());
    if let Some(knobs) = faults {
        experiment = experiment.faults(knobs.config());
    }
    let outcome = experiment.run()?;
    // For the kNN task the experiment's ground-truth labels *are* the
    // CPU reference (nearest stored row), so the O(queries × rows ×
    // dims) argmin the run already performed is reused instead of
    // recomputed; the HDC task's labels are the real class labels, so
    // its (classes-row, cheap) reference runs here.
    let cpu_rows = match workload.task() {
        DatasetTask::Knn => outcome.labels.clone(),
        DatasetTask::Hdc => workload.predict_cpu(spec),
    };
    Ok(AccuracyRow {
        task: workload.name().to_string(),
        dataset: workload.dataset().name().to_string(),
        stored_rows: workload.stored_rows(),
        queries: workload.query_count(),
        dims: workload.dims(),
        classes: workload.dataset().classes(),
        bits_per_cell: spec.bits_per_cell,
        engine: engine.to_string(),
        threads,
        cam_accuracy: workload.class_accuracy(&outcome.predictions),
        cpu_accuracy: workload.class_accuracy(&cpu_rows),
        agreement: outcome.prediction_agreement(&cpu_rows),
        fault_rate: faults.map_or(0.0, |k| k.rate),
        fault_seed: faults.map_or(0, |k| k.seed),
        outcome,
    })
}

/// A Fig. 7-style accuracy report: one row per evaluated
/// configuration (typically one per `bits_per_cell`).
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// Evaluated configurations, in evaluation order.
    pub rows: Vec<AccuracyRow>,
}

/// The exact CSV header row (greppable by CI). Fault columns were
/// appended after the original energy column so positional consumers
/// (`cut -d, -f12` on agreement) keep working.
pub const CSV_HEADER: &str = "task,dataset,stored_rows,queries,dims,classes,bits_per_cell,\
engine,threads,cam_accuracy,cpu_accuracy,agreement,latency_per_query_ns,energy_per_query_pj,\
fault_rate,fault_seed,fault_cells,fault_transients,rows_remapped";

impl AccuracyReport {
    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:<12} {:>6} {:>7} {:>5} {:>4} {:>7} {:>9} {:>9} {:>9} {:>13} {:>12} {:>10} {:>11} {:>6}",
            "task",
            "dataset",
            "stored",
            "queries",
            "bits",
            "eng",
            "threads",
            "cam acc",
            "cpu acc",
            "agree",
            "lat/query ns",
            "E/query pJ",
            "fault rate",
            "fault cells",
            "remap"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<12} {:<12} {:>6} {:>7} {:>5} {:>4} {:>7} {:>9.4} {:>9.4} {:>9.4} {:>13.2} {:>12.2} {:>10.4} {:>11} {:>6}",
                r.task,
                r.dataset,
                r.stored_rows,
                r.queries,
                r.bits_per_cell,
                r.engine,
                r.threads,
                r.cam_accuracy,
                r.cpu_accuracy,
                r.agreement,
                r.latency_per_query_ns(),
                r.energy_per_query_pj(),
                r.fault_rate,
                r.fault_cells(),
                r.rows_remapped()
            );
        }
        out
    }

    /// Render as CSV with the stable [`CSV_HEADER`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.task,
                csv_field(&r.dataset),
                r.stored_rows,
                r.queries,
                r.dims,
                r.classes,
                r.bits_per_cell,
                r.engine,
                r.threads,
                json_f64(r.cam_accuracy),
                json_f64(r.cpu_accuracy),
                json_f64(r.agreement),
                json_f64(r.latency_per_query_ns()),
                json_f64(r.energy_per_query_pj()),
                json_f64(r.fault_rate),
                r.fault_seed,
                r.fault_cells(),
                r.fault_transients(),
                r.rows_remapped()
            );
        }
        out
    }

    /// Render as JSON (each row embeds its query phase via
    /// [`ExecStats::to_json`]).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "{{\"task\":\"{}\",\"dataset\":\"{}\",\"stored_rows\":{},",
                        "\"queries\":{},\"dims\":{},\"classes\":{},\"bits_per_cell\":{},",
                        "\"engine\":\"{}\",\"threads\":{},\"cam_accuracy\":{},",
                        "\"cpu_accuracy\":{},\"agreement\":{},",
                        "\"latency_per_query_ns\":{},\"energy_per_query_pj\":{},",
                        "\"fault_rate\":{},\"fault_seed\":{},\"fault_cells\":{},",
                        "\"fault_transients\":{},\"rows_remapped\":{},",
                        "\"query_phase\":{}}}"
                    ),
                    r.task,
                    json_escape(&r.dataset),
                    r.stored_rows,
                    r.queries,
                    r.dims,
                    r.classes,
                    r.bits_per_cell,
                    r.engine,
                    r.threads,
                    json_f64(r.cam_accuracy),
                    json_f64(r.cpu_accuracy),
                    json_f64(r.agreement),
                    json_f64(r.latency_per_query_ns()),
                    json_f64(r.energy_per_query_pj()),
                    json_f64(r.fault_rate),
                    r.fault_seed,
                    r.fault_cells(),
                    r.fault_transients(),
                    r.rows_remapped(),
                    r.query_phase().to_json()
                )
            })
            .collect();
        format!("{{\"rows\":[{}]}}", rows.join(","))
    }
}

// The report serializers share the workspace-wide JSON policy
// (`c4cam_telemetry::json`): one escaping implementation, non-finite
// numbers degrade to `null`, matching [`ExecStats::to_json`].
pub(crate) use c4cam_telemetry::json::escape as json_escape;
use c4cam_telemetry::json::num_f64 as json_f64;

/// Sanitize a string for a bare CSV field: the report's columns are
/// positional (CI cuts on commas), so separator-bearing names are
/// flattened rather than quoted.
pub(crate) fn csv_field(s: &str) -> String {
    s.replace([',', '"', '\n', '\r'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::build_arch;
    use c4cam_arch::Optimization;
    use c4cam_datasets::{mini_mnist, DatasetTask};

    fn fixture(task: DatasetTask, limit: usize) -> DatasetWorkload {
        DatasetWorkload::new(mini_mnist::dataset(), task, Some(limit)).unwrap()
    }

    #[test]
    fn cam_agrees_exactly_with_the_cpu_reference() {
        for task in [DatasetTask::Hdc, DatasetTask::Knn] {
            let w = fixture(task, 16);
            let spec = build_arch((32, 32), (4, 4, 8), Optimization::Base, 1).unwrap();
            let row = evaluate(&w, &spec, "tape", 1).unwrap();
            assert_eq!(row.agreement, 1.0, "{task:?}: CAM must equal CPU");
            assert_eq!(row.cam_accuracy, row.cpu_accuracy, "{task:?}");
            assert!(row.latency_per_query_ns() > 0.0);
            assert!(row.energy_per_query_pj() > 0.0);
        }
    }

    #[test]
    fn every_registered_backend_reports_identical_accuracy() {
        // The accuracy harness runs through the backend HAL, so every
        // registered backend must classify identically — the numbers
        // that differ per backend are latency/energy, not accuracy.
        let w = fixture(DatasetTask::Hdc, 8);
        let spec = build_arch((32, 32), (4, 4, 8), Optimization::Base, 1).unwrap();
        let oracle = evaluate(&w, &spec, "walk", 1).unwrap();
        for backend in crate::hal::BackendRegistry::global().all() {
            let row = evaluate(&w, &spec, backend.name(), 1).unwrap();
            assert_eq!(row.engine, backend.name());
            assert_eq!(row.cam_accuracy, oracle.cam_accuracy, "{}", backend.name());
            assert_eq!(row.cpu_accuracy, oracle.cpu_accuracy, "{}", backend.name());
            assert_eq!(row.agreement, 1.0, "{}", backend.name());
        }
    }

    #[test]
    fn unknown_engine_is_an_error_listing_the_registry() {
        let w = fixture(DatasetTask::Hdc, 4);
        let spec = build_arch((32, 32), (4, 4, 8), Optimization::Base, 1).unwrap();
        let err = evaluate(&w, &spec, "jit", 1).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown engine 'jit'"), "{msg}");
    }

    #[test]
    fn report_renders_all_three_formats() {
        let w = fixture(DatasetTask::Hdc, 8);
        let spec = build_arch((32, 32), (4, 4, 8), Optimization::Base, 2).unwrap();
        let report = AccuracyReport {
            rows: vec![evaluate(&w, &spec, "tape", 1).unwrap()],
        };
        let table = report.to_table();
        assert!(table.contains("dataset-hdc"), "{table}");
        assert!(table.contains("cam acc"), "{table}");
        let csv = report.to_csv();
        assert!(csv.starts_with(CSV_HEADER), "{csv}");
        assert_eq!(csv.lines().count(), 2, "{csv}");
        let row = csv.lines().nth(1).unwrap();
        assert!(
            row.starts_with("dataset-hdc,mini-mnist,10,8,64,10,2,tape,1,"),
            "{row}"
        );
        let json = report.to_json();
        assert!(
            json.starts_with("{\"rows\":[{\"task\":\"dataset-hdc\""),
            "{json}"
        );
        assert!(json.contains("\"query_phase\":{"), "{json}");
        assert!(json.ends_with("}]}"), "{json}");
    }

    #[test]
    fn report_strings_are_escaped() {
        assert_eq!(json_escape("plain.csv"), "plain.csv");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(csv_field("a,b\"c\nd"), "a_b_c_d");
        assert_eq!(csv_field("mini-mnist"), "mini-mnist");
    }

    #[test]
    fn fault_rate_zero_is_byte_identical_to_the_fault_free_path() {
        // The acceptance bar: installing the fault hooks at rate 0 must
        // not perturb a single bit of output or stats.
        let w = fixture(DatasetTask::Hdc, 8);
        let spec = build_arch((32, 32), (4, 4, 8), Optimization::Base, 2).unwrap();
        let clean = evaluate(&w, &spec, "tape", 1).unwrap();
        let zero = evaluate_faulty(
            &w,
            &spec,
            "tape",
            1,
            Some(&FaultKnobs::new(0.0, 7)),
            &Telemetry::default(),
        )
        .unwrap();
        assert_eq!(zero.outcome.predictions, clean.outcome.predictions);
        assert_eq!(zero.outcome.total, clean.outcome.total);
        assert_eq!(zero.cam_accuracy.to_bits(), clean.cam_accuracy.to_bits());
        assert_eq!((zero.fault_cells(), zero.fault_transients()), (0, 0));
        assert_eq!(zero.rows_remapped(), 0);
        // The only CSV difference is the appended fault columns.
        let row = AccuracyReport { rows: vec![zero] }.to_csv();
        let row = row.lines().nth(1).unwrap().to_string();
        assert!(row.ends_with(",0,7,0,0,0"), "{row}");
    }

    #[test]
    fn seeded_faults_are_reproducible_and_backend_agnostic() {
        // Same knobs, same seed: byte-identical reports across repeated
        // runs, and identical predictions/fault counters across every
        // device-exact path (walk oracle, tape, simd) and thread count.
        let w = fixture(DatasetTask::Hdc, 8);
        let spec = build_arch((32, 32), (4, 4, 8), Optimization::Base, 2).unwrap();
        let knobs = FaultKnobs {
            rate: 0.05,
            seed: 9,
            spare_rows: 2,
            vote: 1,
        };
        let run = |engine: &str, threads: usize| {
            evaluate_faulty(
                &w,
                &spec,
                engine,
                threads,
                Some(&knobs),
                &Telemetry::default(),
            )
            .unwrap()
        };
        let first = run("tape", 1);
        assert!(first.fault_cells() > 0, "rate 0.05 must materialize faults");
        assert_eq!((first.fault_rate, first.fault_seed), (0.05, 9));
        let again = run("tape", 1);
        assert_eq!(
            AccuracyReport {
                rows: vec![first.clone()]
            }
            .to_csv(),
            AccuracyReport { rows: vec![again] }.to_csv(),
            "seeded fault runs must be byte-reproducible"
        );
        for (engine, threads) in [("walk", 1), ("simd", 1), ("tape", 4)] {
            let other = run(engine, threads);
            assert_eq!(
                other.outcome.predictions, first.outcome.predictions,
                "{engine}/{threads}"
            );
            assert_eq!(
                (
                    other.fault_cells(),
                    other.fault_transients(),
                    other.rows_remapped()
                ),
                (
                    first.fault_cells(),
                    first.fault_transients(),
                    first.rows_remapped()
                ),
                "{engine}/{threads}"
            );
        }
    }

    #[test]
    fn accuracy_is_monotone_from_1_bit_to_4_bits_on_the_fixture() {
        // More cell levels = finer prototypes; on the byte-domain
        // fixture the CPU/CAM accuracy must not degrade when moving
        // from the 1-bit threshold to the 4-bit grid.
        let w = fixture(DatasetTask::Hdc, 32);
        let acc = |bits: u32| {
            let spec = build_arch((32, 32), (4, 4, 8), Optimization::Base, bits).unwrap();
            evaluate(&w, &spec, "tape", 1).unwrap().cam_accuracy
        };
        let (one, four) = (acc(1), acc(4));
        assert!(four >= one, "4-bit {four} vs 1-bit {one}");
    }
}
