//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The c4cam workspace builds hermetically (no crates.io access), so this
//! crate reimplements the slice of the proptest 1.x API used by
//! `tests/property_tests.rs`:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`, and
//!   `boxed`;
//! * range strategies (`0u8..2`, `-1e9f64..1e9`, …), [`strategy::Just`],
//!   tuple strategies, `&str` regex-pattern strategies (character classes
//!   with `{m,n}` / `?` / `*` / `+` quantifiers), and [`any`];
//! * [`collection::vec`] with exact or ranged sizes and [`option::of`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, by design: generation is seeded
//! deterministically per test (reproducible CI), and there is **no
//! shrinking** — a failing case panics with the assert message directly.
//! For the invariants c4cam checks, deterministic replay makes failures
//! debuggable without shrinking machinery.

use std::rc::Rc;

pub mod test_runner {
    //! Test-runner configuration and the deterministic generation RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator used for value generation (the vendored
    /// `rand` shim's [`StdRng`] under a per-test seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seed deterministically from a test name (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy simply generates a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `self` is the leaf case and `f`
        /// wraps an inner strategy into the recursive case. `depth`
        /// bounds the recursion; the size hints are accepted for API
        /// compatibility but unused.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let rec = f(cur).boxed();
                let leaf = leaf.clone();
                cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    // Bias toward leaves so generated trees stay small.
                    if rng.below(3) == 0 {
                        rec.generate(rng)
                    } else {
                        leaf.generate(rng)
                    }
                }));
            }
            cur
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of options.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! requires at least one option"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Delegate to the vendored `rand` shim's sampler.
                    rand::SampleRange::sample_from(self.clone(), rng)
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    // `&str` as a regex-pattern string strategy.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::pattern::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (S0/s0)
        (S0/s0, S1/s1)
        (S0/s0, S1/s1, S2/s2)
        (S0/s0, S1/s1, S2/s2, S3/s3)
        (S0/s0, S1/s1, S2/s2, S3/s3, S4/s4)
        (S0/s0, S1/s1, S2/s2, S3/s3, S4/s4, S5/s5)
    }
}

mod pattern {
    //! Tiny generator for the regex-like string patterns proptest
    //! accepts as strategies. Supports literals, `[...]` character
    //! classes with ranges, and the quantifiers `{n}`, `{m,n}`, `?`,
    //! `*`, `+` (star/plus capped at 8 repeats).

    use super::test_runner::TestRng;

    enum Atom {
        Lit(char),
        Class(Vec<char>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        let mut out = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => return out,
                '-' => {
                    let lo = prev.take().unwrap_or('-');
                    match chars.peek() {
                        Some(&hi) if hi != ']' => {
                            chars.next();
                            // `lo` was already pushed as a literal; extend to `hi`.
                            for x in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(x) {
                                    out.push(ch);
                                }
                            }
                            prev = Some(hi);
                        }
                        _ => {
                            out.push('-');
                            prev = Some('-');
                        }
                    }
                }
                c => {
                    out.push(c);
                    prev = Some(c);
                }
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<(Atom, (usize, usize))> {
        let mut chars = pattern.chars().peekable();
        let mut atoms: Vec<(Atom, (usize, usize))> = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Lit(chars.next().unwrap_or('\\')),
                c => Atom::Lit(c),
            };
            // Optional quantifier.
            let quant = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut body = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        body.push(c);
                    }
                    match body.split_once(',') {
                        Some((m, n)) => {
                            (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(0))
                        }
                        None => {
                            let n = body.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push((atom, quant));
        }
        atoms
    }

    pub(crate) fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, (lo, hi)) in parse(pattern) {
            let n = if hi > lo {
                lo + rng.below(hi - lo + 1)
            } else {
                lo
            };
            for _ in 0..n {
                match &atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => {
                        assert!(!set.is_empty(), "empty character class in {pattern:?}");
                        out.push(set[rng.below(set.len())]);
                    }
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait: canonical strategies per type.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`super::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2e6 - 1e6) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e12 - 1e12
        }
    }
}

/// The canonical strategy for `T` (`any::<i64>()`, `any::<bool>()`, …).
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Inclusive-bounds size specification for collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (3:1 biased toward `Some`).
    pub struct OptionStrategy<S>(S);

    /// Generate `Some` values from `inner` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// Keep `Rc` imported at the root for macro-free code paths.
#[allow(unused_imports)]
use Rc as _Rc;

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Property assertion (panics on failure; the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` runs its
/// body for `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let ($($arg,)+) = (
                    $( $crate::strategy::Strategy::generate(&($strategy), &mut __rng), )+
                );
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars()
                    .skip(1)
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(
            v in crate::collection::vec(0u8..2, 4..9),
            exact in crate::collection::vec(any::<bool>(), 6),
            opt in crate::option::of(1i64..10),
        ) {
            prop_assert!((4..9).contains(&v.len()));
            prop_assert_eq!(exact.len(), 6);
            if let Some(x) = opt {
                prop_assert!((1..10).contains(&x));
            }
        }

        #[test]
        fn oneof_and_map(
            x in prop_oneof![Just(1u32), Just(2), (10u32..20).prop_map(|v| v)],
        ) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }
    }
}
