//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The c4cam workspace builds in hermetic environments with no access to
//! crates.io, so the small slice of the `rand 0.8` API that the workloads
//! use (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_bool`,
//! `Rng::gen_range`) is reimplemented here on top of SplitMix64. The
//! streams are deterministic for a given seed, which is exactly what the
//! synthetic-dataset generators in `c4cam_workloads` need; statistical
//! quality is more than sufficient for test-data generation.

use std::ops::Range;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator seedable from a `u64` (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// Sample uniformly from a half-open range.
    ///
    /// Generic over the output type `T` (like real `rand`) so untyped
    /// float/int literals in the range infer from the call site.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A half-open range that can be sampled (subset of `rand::distributions`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // `u as $t` (and the f64 arithmetic itself) can round up
                // far enough that `v == end`; clamp to keep the range
                // half-open.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    /// The standard deterministic generator: SplitMix64.
    ///
    /// Unlike the real `StdRng` this is not cryptographically strong; it
    /// is only used to synthesize reproducible workload datasets.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
