//! Vendored, dependency-free stand-in for the `criterion` bench harness.
//!
//! The c4cam workspace builds hermetically (no crates.io access), so this
//! crate reimplements the small slice of the criterion 0.5 API used by
//! the `c4cam_bench` micro-benchmarks: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple calibrated wall-clock loop: each benchmark is
//! warmed up, then timed over enough iterations to cover a minimum
//! measurement window, and the mean time per iteration is printed. That
//! is deliberately much cheaper than real criterion (no bootstrap, no
//! HTML reports) while keeping `cargo bench` output useful for the
//! relative comparisons the C4CAM evaluation makes.
//!
//! Environment knobs:
//! * `C4CAM_BENCH_MS` — target measurement window per benchmark in
//!   milliseconds (default 200).

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn measure_window() -> Duration {
    let ms = std::env::var("C4CAM_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
///
/// The shim runs one input per routine call regardless of the variant;
/// the enum exists for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: criterion would batch many per allocation.
    SmallInput,
    /// Large input: criterion would batch few per allocation.
    LargeInput,
    /// One allocation per iteration.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed number of iterations per batch.
    NumIterations(u64),
}

/// Times closures and reports per-iteration means.
pub struct Bencher {
    window: Duration,
    /// Filled in by `iter`/`iter_batched`: (iterations, total elapsed).
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(window: Duration) -> Self {
        Bencher {
            window,
            result: None,
        }
    }

    /// Time `routine`, repeatedly, until the measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: estimate the per-iteration cost.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((iters, start.elapsed()));
    }

    /// Time `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.window.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.result = Some((iters, total));
    }
}

fn fmt_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    window: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// API-compatible no-op: the shim sizes runs by wall-clock window.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark and print its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.window);
        f(&mut b);
        match b.result {
            Some((iters, total)) => {
                let per = total.as_nanos() as f64 / iters as f64;
                println!(
                    "{}/{:<32} {:>12}/iter  ({} iters)",
                    self.name,
                    id,
                    fmt_time(per),
                    iters
                );
            }
            None => println!("{}/{id}: no measurement recorded", self.name),
        }
        self
    }

    /// End the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// Entry point handed to `criterion_group!` target functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            window: measure_window(),
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Print the trailing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Define a bench group function from a list of `fn(&mut Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `fn main` running one or more `criterion_group!` groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
