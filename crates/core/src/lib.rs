//! # c4cam-core — the C4CAM compiler
//!
//! This crate implements the paper's contribution: the dialect stack and
//! progressive-lowering pipeline that maps TorchScript-level tensor
//! programs onto CAM accelerators ("C4CAM: A Compiler for CAM-based
//! In-memory Accelerators", ASPLOS 2024).
//!
//! * [`dialects`] — op definitions, builders and verifiers for the
//!   `func`/`arith`/`scf`/`tensor`/`memref` support dialects, the
//!   `torch` entry dialect, the `cim` abstraction (extended from CINM
//!   \[16\] with similarity analyses), and the novel `cam` dialect.
//! * [`passes`] — `torch-to-cim`, `cim-fuse-ops` (Algorithm 1
//!   *SimilarityMatching*), `cim-partition` (compulsory partitioning),
//!   `cim-to-cam` (flat single-subarray lowering) and `cam-map`
//!   (hierarchy mapping with the *base*/*power*/*density*/
//!   *power+density* configurations).
//! * [`mapping`] — the placement arithmetic shared by `cam-map` and the
//!   evaluation harness (subarray counts, Table I's formulas).
//! * [`pipeline`] — [`pipeline::C4camPipeline`] assembling the passes
//!   from an [`c4cam_arch::ArchSpec`], with per-stage IR snapshots.

#![warn(missing_docs)]

pub mod dialects;
pub mod mapping;
pub mod passes;
pub mod pipeline;

pub use pipeline::{C4camPipeline, CompiledKernel, PipelineOptions};
