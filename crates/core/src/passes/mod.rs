//! The C4CAM lowering and optimization passes.
//!
//! Pipeline order (paper Fig. 3):
//!
//! 1. [`torch_to_cim::TorchToCimPass`] — wrap device-amenable torch ops
//!    into `cim.acquire`/`cim.execute`/`cim.release` triples.
//! 2. [`cim_fuse::CimFusePass`] — fuse dependent execute blocks, then run
//!    *SimilarityMatching* (Algorithm 1) to recover `cim.similarity`.
//! 3. [`cim_partition::CimPartitionPass`] — compulsory partitioning into
//!    subarray-sized tiles with partial-result accumulation.
//! 4. [`cam_map::CamMapPass`] — lower `cim` to `cam` and map onto the
//!    hierarchy under the chosen optimization configuration (the paper's
//!    `cim-to-cam` conversion and `cam-map` pass share their placement
//!    computation, so they are implemented as one pass here; the flat
//!    single-subarray lowering described in §III-D2 is
//!    [`cam_map::lower_flat_single_subarray`]).
//! 5. [`canonicalize::CanonicalizePass`] (optional) — DCE, integer
//!    constant folding and trivial-loop collapse (Fig. 3's generic
//!    optimizations).

pub mod cam_map;
pub mod canonicalize;
pub mod cim_fuse;
pub mod cim_partition;
pub mod torch_to_cim;

pub use cam_map::CamMapPass;
pub use canonicalize::CanonicalizePass;
pub use cim_fuse::CimFusePass;
pub use cim_partition::CimPartitionPass;
pub use torch_to_cim::TorchToCimPass;

use c4cam_ir::{Module, OpId, ValueDef, ValueId};

/// Return the defining op of `v` if it is an op result.
pub(crate) fn defining_op(m: &Module, v: ValueId) -> Option<OpId> {
    match m.value(v).def {
        ValueDef::OpResult { op, .. } => Some(op),
        ValueDef::BlockArg { .. } => None,
    }
}

/// Read the static integer behind a value defined by `arith.constant` or
/// `torch.constant_int`.
pub(crate) fn const_int_value(m: &Module, v: ValueId) -> Option<i64> {
    let op = defining_op(m, v)?;
    let data = m.op(op);
    if data.name == "arith.constant" || data.name == "torch.constant_int" {
        data.int_attr("value")
    } else {
        None
    }
}
