//! `torch-to-cim`: lower torch ops into the cim programming model.
//!
//! Every device-amenable torch op is wrapped into its own
//! `cim.acquire` / `cim.execute` / `cim.release` triple (paper Fig. 5a):
//! the Torch abstraction does not specify kernel boundaries, so "the
//! fundamental assumption of the torch-to-cim conversion is that each
//! supported operation can be executed on a separate (non-)CIM device"
//! (§III-D1). Constants become `arith.constant`s on the host.

use c4cam_ir::builder::OpBuilder;
use c4cam_ir::pass::{Pass, PassError};
use c4cam_ir::{Attribute, Module, OpId};

use crate::dialects::cim;

/// Torch → cim op-name mapping.
fn cim_name(torch: &str) -> Option<&'static str> {
    Some(match torch {
        "torch.transpose" => "cim.transpose",
        "torch.matmul" | "torch.mm" => "cim.matmul",
        "torch.sub" => "cim.sub",
        "torch.div" => "cim.div",
        "torch.norm" => "cim.norm",
        "torch.topk" => "cim.topk",
        _ => return None,
    })
}

/// The `torch-to-cim` conversion pass.
#[derive(Debug, Default)]
pub struct TorchToCimPass;

impl Pass for TorchToCimPass {
    fn name(&self) -> &'static str {
        "torch-to-cim"
    }

    fn run(&self, m: &mut Module) -> Result<(), PassError> {
        for func in m.top_level_ops() {
            if m.op(func).name != "func.func" {
                continue;
            }
            let entry = m.op(func).regions[0][0];
            convert_block(m, entry).map_err(|e| PassError::new(self.name(), e))?;
        }
        Ok(())
    }
}

fn convert_block(m: &mut Module, block: c4cam_ir::BlockId) -> Result<(), String> {
    // Snapshot: ops are appended/erased during conversion.
    let ops = m.block(block).ops.clone();
    for op in ops {
        if !m.is_live_op(op) {
            continue;
        }
        let name = m.op(op).name.clone();
        match name.as_str() {
            "torch.constant" => {
                let value = m
                    .op(op)
                    .attr("value")
                    .cloned()
                    .ok_or("torch.constant without value")?;
                let ty = m.value_type(m.result(op, 0));
                let mut b = OpBuilder::before(m, op);
                let c = b.op("arith.constant", &[], &[ty], vec![("value", value)]);
                let new = m.result(c, 0);
                let old = m.result(op, 0);
                m.replace_all_uses(old, new);
                m.erase_op(op);
            }
            "torch.constant_int" => {
                let value = m
                    .op(op)
                    .int_attr("value")
                    .ok_or("constant_int without value")?;
                let ty = m.value_type(m.result(op, 0));
                let mut b = OpBuilder::before(m, op);
                let c = b.op(
                    "arith.constant",
                    &[],
                    &[ty],
                    vec![("value", Attribute::Int(value))],
                );
                let new = m.result(c, 0);
                let old = m.result(op, 0);
                m.replace_all_uses(old, new);
                m.erase_op(op);
            }
            other => {
                if let Some(cim_op_name) = cim_name(other) {
                    wrap_in_execute(m, op, cim_op_name)?;
                }
            }
        }
    }
    Ok(())
}

/// Wrap one torch op into acquire/execute/release, moving a cim mirror of
/// the op into the execute region (paper Fig. 5a).
fn wrap_in_execute(m: &mut Module, op: OpId, cim_op_name: &str) -> Result<(), String> {
    let operands = m.op(op).operands.clone();
    let attrs: Vec<(String, Attribute)> = m
        .op(op)
        .attrs
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    let result_tys: Vec<_> = m.op(op).results.iter().map(|&r| m.value_type(r)).collect();
    let old_results = m.op(op).results.clone();

    let mut b = OpBuilder::before(m, op);
    let handle = cim::build_acquire(&mut b);
    let (exec, body) = cim::build_execute(&mut b, handle, &operands, &result_tys);
    cim::build_release(&mut b, handle);

    // Inner mirrored op.
    let inner = m.create_op(cim_op_name, &operands, &result_tys, vec![], 0);
    for (k, v) in attrs {
        m.set_attr(inner, &k, v);
    }
    m.push_op(body, inner);
    let inner_results = m.op(inner).results.clone();
    cim::build_yield(m, body, &inner_results);

    for (i, &old) in old_results.iter().enumerate() {
        let new = m.result(exec, i);
        m.replace_all_uses(old, new);
    }
    m.erase_op(op);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::{standard_registry, torch};
    use c4cam_ir::verify::verify_module;

    #[test]
    fn hdc_kernel_lowers_to_one_triple_per_op() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 10, 10, 8192, 1);
        TorchToCimPass.run(&mut m).unwrap();
        verify_module(&m, &standard_registry()).unwrap();
        let names: Vec<String> = m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect();
        // transpose, matmul, topk → 3 triples; constant_int → arith.
        assert_eq!(
            names.iter().filter(|n| *n == "cim.acquire").count(),
            3,
            "{names:?}"
        );
        assert_eq!(names.iter().filter(|n| *n == "cim.execute").count(), 3);
        assert_eq!(names.iter().filter(|n| *n == "cim.release").count(), 3);
        assert_eq!(names.iter().filter(|n| *n == "cim.transpose").count(), 1);
        assert_eq!(names.iter().filter(|n| *n == "cim.matmul").count(), 1);
        assert_eq!(names.iter().filter(|n| *n == "cim.topk").count(), 1);
        assert!(!names.iter().any(|n| n.starts_with("torch.")), "{names:?}");
    }

    #[test]
    fn knn_kernel_lowers_and_verifies() {
        let mut m = Module::new();
        let _ = torch::build_knn_eucl(&mut m, 64, 128, 3);
        TorchToCimPass.run(&mut m).unwrap();
        verify_module(&m, &standard_registry()).unwrap();
    }

    #[test]
    fn constants_become_host_constants() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let t = m.tensor_ty(&[2, 2], f32t);
        let (func, entry) = c4cam_ir::builder::build_func(&mut m, "f", &[], &[t]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c = torch::build_constant(&mut b, &[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        b.op("func.return", &[c], &[], vec![]);
        TorchToCimPass.run(&mut m).unwrap();
        let names: Vec<String> = m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect();
        assert!(names.contains(&"arith.constant".to_string()));
        assert!(!names.contains(&"torch.constant".to_string()));
        verify_module(&m, &standard_registry()).unwrap();
    }

    #[test]
    fn execute_regions_reference_outer_values() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 4, 4, 64, 1);
        TorchToCimPass.run(&mut m).unwrap();
        // The matmul execute consumes the transpose execute's result.
        let mut found = false;
        for op in m.walk(func) {
            if m.op(op).name == "cim.matmul" {
                let rhs = m.op(op).operands[1];
                let def = crate::passes::defining_op(&m, rhs).unwrap();
                assert_eq!(m.op(def).name, "cim.execute");
                found = true;
            }
        }
        assert!(found);
    }
}
