//! `cim-to-cam` + `cam-map`: lower fused similarity kernels to the `cam`
//! dialect and map them onto the accelerator hierarchy (paper §III-D2,
//! Fig. 6).
//!
//! The paper describes two passes — the `cim-to-cam` conversion
//! (acquire/execute/release → cam allocation + write/search/read, with
//! bufferization) and the `cam-map` hierarchy mapping. Both share the
//! placement computation, so this implementation performs them as one
//! transformation; [`lower_flat_single_subarray`] additionally provides
//! the paper's "simple system" lowering (one bank/mat/array/subarray)
//! for kernels that fit a single subarray.
//!
//! ## Generated structure
//!
//! Two loop nests over the hierarchy (banks → mats → arrays →
//! subarrays), in the iteration-space of hierarchy coordinates:
//!
//! * a **setup nest** that allocates the hierarchy, records subarray
//!   handles in an address table, and programs the stored tiles
//!   (`cam.write_value`), and
//! * a **query nest** (inside a sequential loop over queries) that
//!   searches each subarray (`cam.search` + `cam.read`) and accumulates
//!   partial scores into a global buffer
//!   (`cam.merge_partial_subarray`), followed by per-level periphery
//!   merges (`cam.merge_level`) and a sequential host accumulation
//!   across banks.
//!
//! The optimization configurations (§IV-C1) shape the nest:
//!
//! * **base** — every level iterates with `scf.parallel`;
//! * **power** — the subarray loop becomes `scf.for` (at most one
//!   subarray active per array at a time);
//! * **density** — selective search packs `floor(R / rows_used)` tiles
//!   per subarray; an inner sequential batch loop searches each tile's
//!   row window (selective precharge);
//! * **power+density** — both.

use c4cam_ir::builder::OpBuilder;
use c4cam_ir::pass::{Pass, PassError};
use c4cam_ir::{Attribute, BlockId, Module, ValueId};

use crate::dialects::tensor_ops::{build_extract_slice_2d, OffsetSpec};
use crate::dialects::{cam, memref, scf};
use crate::mapping::{place, MappingProblem, Placement};
use crate::passes::cim_partition::{find_similarity_kernels, SimilarityKernel};
use c4cam_arch::{ArchSpec, MatchKind, Metric};

/// The combined `cim-to-cam` / `cam-map` pass.
#[derive(Debug)]
pub struct CamMapPass {
    /// Target architecture (geometry, hierarchy, optimization target).
    pub spec: ArchSpec,
}

impl Pass for CamMapPass {
    fn name(&self) -> &'static str {
        "cam-map"
    }

    fn run(&self, m: &mut Module) -> Result<(), PassError> {
        let kernels = find_similarity_kernels(m);
        if kernels.is_empty() {
            return Err(PassError::new(
                self.name(),
                "no fused cim.similarity kernel found (run cim-fuse-ops first)",
            ));
        }
        for k in kernels {
            map_kernel(m, &self.spec, &k).map_err(|e| PassError::new(self.name(), e))?;
        }
        Ok(())
    }
}

/// Device metric for a similarity metric.
///
/// `dot` (and `cos`) execute as symbol-match counting on the device —
/// the Hamming complement — exactly like the FeFET CAM hardware the
/// paper validates against \[22\]. Match-count ranking coincides with
/// true dot-product ranking when the stored rows are norm-balanced
/// (random hypervectors are); see DESIGN.md §4. Euclidean is exact.
fn device_metric(metric: &str) -> Metric {
    match metric {
        "eucl" => Metric::Euclidean,
        _ => Metric::Dot,
    }
}

struct Ctx {
    idx_cache: std::collections::HashMap<i64, ValueId>,
}

impl Ctx {
    fn new() -> Ctx {
        Ctx {
            idx_cache: std::collections::HashMap::new(),
        }
    }

    /// Constant index, cached per enclosing entry block region.
    fn cidx(&mut self, b: &mut OpBuilder<'_>, v: i64) -> ValueId {
        if let Some(&c) = self.idx_cache.get(&v) {
            return c;
        }
        let c = b.const_index(v);
        self.idx_cache.insert(v, c);
        c
    }
}

fn binop(b: &mut OpBuilder<'_>, name: &str, lhs: ValueId, rhs: ValueId) -> ValueId {
    let idx = b.module().index_ty();
    let op = b.op(name, &[lhs, rhs], &[idx], vec![]);
    b.module().result(op, 0)
}

/// `scf.if (lhs < rhs)`: returns the then-block; caller fills it and it
/// is auto-terminated by [`finish_if`].
fn begin_if_ult(b: &mut OpBuilder<'_>, lhs: ValueId, rhs: ValueId) -> BlockId {
    let i1 = b.module().i1_ty();
    let cmp = b.op(
        "arith.cmpi",
        &[lhs, rhs],
        &[i1],
        vec![("predicate", "ult".into())],
    );
    let cond = b.module().result(cmp, 0);
    let if_op = b.op_with_regions("scf.if", &[cond], &[], vec![], 1);
    b.module().add_block(if_op, 0, &[])
}

fn finish_block(m: &mut Module, block: BlockId) {
    scf::end_body(m, block, &[]);
}

/// Parameters shared by the setup and query nests.
struct NestParams {
    banks: i64,
    mats: i64,
    arrays: i64,
    subs: i64,
    batches: i64,
    logical: i64,
    physical: i64,
    col_chunks: i64,
    rows_used: i64,
    cols: i64,
    rows: i64,
    /// Loop kind per hierarchy level (bank, mat, array, subarray):
    /// `true` = concurrent (`scf.parallel`). Derived from the spec's
    /// per-level access modes (§III-B) and the optimization target
    /// (cam-power serializes the subarray level).
    parallel_levels: [bool; 4],
    /// Selective search in use (cam-density).
    selective: bool,
}

impl NestParams {
    fn new(spec: &ArchSpec, p: &Placement) -> NestParams {
        use c4cam_arch::AccessMode;
        let par = |mode: AccessMode| mode == AccessMode::Parallel;
        let mut parallel_levels = [
            par(spec.access.bank),
            par(spec.access.mat),
            par(spec.access.array),
            par(spec.access.subarray),
        ];
        if spec.optimization.limits_power() {
            // cam-power: at most one subarray active per array at a time.
            parallel_levels[3] = false;
        }
        NestParams {
            banks: p.banks as i64,
            mats: spec.mats_per_bank as i64,
            arrays: spec.arrays_per_mat as i64,
            subs: spec.subarrays_per_array as i64,
            batches: p.batches_per_subarray as i64,
            logical: p.logical_tiles as i64,
            physical: p.physical_subarrays as i64,
            col_chunks: p.col_chunks as i64,
            rows_used: p.rows_used as i64,
            cols: spec.cols_per_subarray as i64,
            rows: spec.rows_per_subarray as i64,
            parallel_levels,
            selective: p.batches_per_subarray > 1,
        }
    }
}

/// Build a loop of the configured kind for hierarchy `level`
/// (0 = bank … 3 = subarray).
fn build_level_loop(
    b: &mut OpBuilder<'_>,
    np: &NestParams,
    level: usize,
    lb: ValueId,
    ub: ValueId,
    step: ValueId,
) -> (c4cam_ir::OpId, BlockId, ValueId) {
    if np.parallel_levels[level] {
        scf::build_parallel(b, lb, ub, step)
    } else {
        scf::build_for(b, lb, ub, step)
    }
}

/// Open the 4-level hierarchy nest inside `block`. Returns the innermost
/// (subarray-loop) body and the ivs `(bank, mat, array, sub)` plus the
/// bodies of each level for post-loop merge insertion.
struct Nest {
    innermost: BlockId,
    ivs: [ValueId; 4],
    /// (bank_body, mat_body, array_body) for appending merge ops; the
    /// loops inside them are already placed.
    level_bodies: [BlockId; 3],
}

fn open_nest(m: &mut Module, block: BlockId, ctx: &mut Ctx, np: &NestParams) -> Nest {
    let mut b = OpBuilder::at_end(m, block);
    let c0 = ctx.cidx(&mut b, 0);
    let c1 = ctx.cidx(&mut b, 1);
    let cb = ctx.cidx(&mut b, np.banks);
    let (_, bank_body, bank_iv) = build_level_loop(&mut b, np, 0, c0, cb, c1);

    let mut b = OpBuilder::at_end(m, bank_body);
    let cm = b.const_index(np.mats);
    let c0b = b.const_index(0);
    let c1b = b.const_index(1);
    let (_, mat_body, mat_iv) = build_level_loop(&mut b, np, 1, c0b, cm, c1b);

    let mut b = OpBuilder::at_end(m, mat_body);
    let ca = b.const_index(np.arrays);
    let c0m = b.const_index(0);
    let c1m = b.const_index(1);
    let (_, array_body, array_iv) = build_level_loop(&mut b, np, 2, c0m, ca, c1m);

    let mut b = OpBuilder::at_end(m, array_body);
    let cs = b.const_index(np.subs);
    let c0a = b.const_index(0);
    let c1a = b.const_index(1);
    let (_, sub_body, sub_iv) = build_level_loop(&mut b, np, 3, c0a, cs, c1a);

    Nest {
        innermost: sub_body,
        ivs: [bank_iv, mat_iv, array_iv, sub_iv],
        level_bodies: [bank_body, mat_body, array_body],
    }
}

/// Linearized physical subarray index
/// `((bank*mats + mat)*arrays + array)*subs + sub`.
fn linear_subarray(b: &mut OpBuilder<'_>, np: &NestParams, ivs: &[ValueId; 4]) -> ValueId {
    let cm = b.const_index(np.mats);
    let ca = b.const_index(np.arrays);
    let cs = b.const_index(np.subs);
    let t0 = binop(b, "arith.muli", ivs[0], cm);
    let t1 = binop(b, "arith.addi", t0, ivs[1]);
    let t2 = binop(b, "arith.muli", t1, ca);
    let t3 = binop(b, "arith.addi", t2, ivs[2]);
    let t4 = binop(b, "arith.muli", t3, cs);
    binop(b, "arith.addi", t4, ivs[3])
}

/// Tile coordinates of logical tile `l`: returns
/// `(row_off, col_off, write_row)` index values.
fn tile_coords(
    b: &mut OpBuilder<'_>,
    np: &NestParams,
    l: ValueId,
    batch: ValueId,
) -> (ValueId, ValueId, ValueId) {
    let c_chunks = b.const_index(np.col_chunks);
    let c_rows_used = b.const_index(np.rows_used);
    let c_cols = b.const_index(np.cols);
    let rg = binop(b, "arith.divui", l, c_chunks);
    let cc = binop(b, "arith.remui", l, c_chunks);
    let row_off = binop(b, "arith.muli", rg, c_rows_used);
    let col_off = binop(b, "arith.muli", cc, c_cols);
    let write_row = binop(b, "arith.muli", batch, c_rows_used);
    (row_off, col_off, write_row)
}

fn map_kernel(m: &mut Module, spec: &ArchSpec, k: &SimilarityKernel) -> Result<(), String> {
    let problem = MappingProblem {
        stored_rows: k.stored_rows,
        feature_dims: k.feature_dims,
        queries: k.queries,
    };
    let p = place(spec, &problem).map_err(|e| e.message)?;
    let np = NestParams::new(spec, &p);
    let metric = device_metric(&k.metric);
    let nq = k.queries as i64;
    let mut ctx = Ctx::new();

    // ------------------------------------------------------------------
    // Prologue: buffers and constants (before the old acquire).
    // ------------------------------------------------------------------
    let mut b = OpBuilder::before(m, k.acquire);
    let handles = memref::build_alloc_f32(&mut b, &[np.physical]);
    let acc = memref::build_alloc_f32(&mut b, &[nq, p.padded_rows as i64]);

    // ------------------------------------------------------------------
    // Setup nest: allocate + program.
    // ------------------------------------------------------------------
    // The nest lives where the acquire used to be; open it in the parent
    // block at that position.
    let parent = m.op(k.acquire).parent.ok_or("kernel not placed")?;
    let pos = m.position_in_block(k.acquire).unwrap();
    let setup_anchor = {
        // Anchor block: we create the nest by building loops appended at
        // a temporary position. OpBuilder inserts sequentially, so
        // everything lands right before the old acquire.
        let _ = pos;
        parent
    };
    let _ = setup_anchor;

    let mut b = OpBuilder::before(m, k.acquire);
    let c_rows = ctx.cidx(&mut b, np.rows);
    let c_cols_geom = ctx.cidx(&mut b, np.cols);

    // Build the setup nest manually so allocation ops land at each level.
    let c0 = ctx.cidx(&mut b, 0);
    let c1 = ctx.cidx(&mut b, 1);
    let cb = ctx.cidx(&mut b, np.banks);
    let (_, bank_body, bank_iv) = build_level_loop(&mut b, &np, 0, c0, cb, c1);
    let mut bb = OpBuilder::at_end(m, bank_body);
    let bank = cam::build_alloc_bank(&mut bb, c_rows, c_cols_geom);
    let cm = bb.const_index(np.mats);
    let c0x = bb.const_index(0);
    let c1x = bb.const_index(1);
    let (_, mat_body, mat_iv) = build_level_loop(&mut bb, &np, 1, c0x, cm, c1x);
    let mut bb = OpBuilder::at_end(m, mat_body);
    let mat = cam::build_alloc_child(&mut bb, bank);
    let ca = bb.const_index(np.arrays);
    let c0y = bb.const_index(0);
    let c1y = bb.const_index(1);
    let (_, array_body, array_iv) = build_level_loop(&mut bb, &np, 2, c0y, ca, c1y);
    let mut bb = OpBuilder::at_end(m, array_body);
    let array = cam::build_alloc_child(&mut bb, mat);
    let cs = bb.const_index(np.subs);
    let c0z = bb.const_index(0);
    let c1z = bb.const_index(1);
    let (_, sub_body, sub_iv) = build_level_loop(&mut bb, &np, 3, c0z, cs, c1z);

    // Innermost setup body.
    {
        let mut bi = OpBuilder::at_end(m, sub_body);
        let ivs = [bank_iv, mat_iv, array_iv, sub_iv];
        let lin = linear_subarray(&mut bi, &np, &ivs);
        let c_phys = bi.const_index(np.physical);
        let guard = begin_if_ult(&mut bi, lin, c_phys);
        {
            let mut bg = OpBuilder::at_end(m, guard);
            let sub = cam::build_alloc_child(&mut bg, array);
            bg.op("cam.store_handle", &[handles, lin, sub], &[], vec![]);
            // Batch loop: write each co-resident tile.
            let c0g = bg.const_index(0);
            let c1g = bg.const_index(1);
            let cbt = bg.const_index(np.batches);
            let (_, batch_body, batch_iv) = scf::build_for(&mut bg, c0g, cbt, c1g);
            {
                let mut bt = OpBuilder::at_end(m, batch_body);
                let cbatches = bt.const_index(np.batches);
                let t = binop(&mut bt, "arith.muli", lin, cbatches);
                let l = binop(&mut bt, "arith.addi", t, batch_iv);
                let c_logical = bt.const_index(np.logical);
                let lguard = begin_if_ult(&mut bt, l, c_logical);
                {
                    let mut bl = OpBuilder::at_end(m, lguard);
                    let (row_off, col_off, write_row) = tile_coords(&mut bl, &np, l, batch_iv);
                    let data = build_extract_slice_2d(
                        &mut bl,
                        k.stored,
                        [OffsetSpec::Dynamic(row_off), OffsetSpec::Dynamic(col_off)],
                        [np.rows_used, np.cols],
                    );
                    bl.op("cam.write_value", &[sub, data, write_row], &[], vec![]);
                }
                finish_block(m, lguard);
            }
            finish_block(m, batch_body);
        }
        finish_block(m, guard);
    }
    finish_block(m, sub_body);
    finish_block(m, array_body);
    finish_block(m, mat_body);
    finish_block(m, bank_body);

    // ------------------------------------------------------------------
    // Query nest.
    // ------------------------------------------------------------------
    let mut b = OpBuilder::before(m, k.acquire);
    b.op(
        "cam.phase_marker",
        &[],
        &[],
        vec![("name", "setup-complete".into())],
    );
    let c0q = b.const_index(0);
    let c1q = b.const_index(1);
    let cnq = b.const_index(nq);
    let (_, q_body, q_iv) = scf::build_for(&mut b, c0q, cnq, c1q);
    {
        let nest = open_nest(m, q_body, &mut Ctx::new(), &np);
        {
            let mut bi = OpBuilder::at_end(m, nest.innermost);
            let lin = linear_subarray(&mut bi, &np, &nest.ivs);
            let c_phys = bi.const_index(np.physical);
            let guard = begin_if_ult(&mut bi, lin, c_phys);
            {
                let mut bg = OpBuilder::at_end(m, guard);
                let sub_ty = bg.module().cam_ty(c4cam_ir::CamLevel::Subarray);
                let load = bg.op("cam.load_handle", &[handles, lin], &[sub_ty], vec![]);
                let sub = bg.module().result(load, 0);
                let c0g = bg.const_index(0);
                let c1g = bg.const_index(1);
                let cbt = bg.const_index(np.batches);
                let (_, batch_body, batch_iv) = scf::build_for(&mut bg, c0g, cbt, c1g);
                {
                    let mut bt = OpBuilder::at_end(m, batch_body);
                    let cbatches = bt.const_index(np.batches);
                    let t = binop(&mut bt, "arith.muli", lin, cbatches);
                    let l = binop(&mut bt, "arith.addi", t, batch_iv);
                    let c_logical = bt.const_index(np.logical);
                    let lguard = begin_if_ult(&mut bt, l, c_logical);
                    {
                        let mut bl = OpBuilder::at_end(m, lguard);
                        let (row_off, col_off, write_row) = tile_coords(&mut bl, &np, l, batch_iv);
                        let qslice = build_extract_slice_2d(
                            &mut bl,
                            k.query,
                            [OffsetSpec::Dynamic(q_iv), OffsetSpec::Dynamic(col_off)],
                            [1, np.cols],
                        );
                        let selective = if np.selective {
                            let c_len = bl.const_index(np.rows_used);
                            Some((write_row, c_len))
                        } else {
                            None
                        };
                        let search_op = cam::build_search(
                            &mut bl,
                            sub,
                            qslice,
                            MatchKind::Best,
                            metric,
                            selective,
                        );
                        if np.selective {
                            bl.module().set_attr(
                                search_op,
                                "broadcast_share",
                                Attribute::Float(1.0 / np.batches as f64),
                            );
                        }
                        let (vals, idx) = cam::build_read(&mut bl, sub, np.rows);
                        // stored_row = read_index + (row_off - write_row)
                        let offset = binop(&mut bl, "arith.subi", row_off, write_row);
                        bl.op(
                            "cam.merge_partial_subarray",
                            &[sub, acc, vals, idx, q_iv, offset],
                            &[],
                            vec![("dir", "horizontal".into())],
                        );
                    }
                    finish_block(m, lguard);
                }
                finish_block(m, batch_body);
            }
            finish_block(m, guard);
        }
        finish_block(m, nest.innermost);
        // Per-level periphery merges.
        let [bank_body_q, mat_body_q, array_body_q] = nest.level_bodies;
        let elems = Attribute::Int(np.rows_used);
        let mut ba = OpBuilder::at_end(m, array_body_q);
        ba.op(
            "cam.merge_level",
            &[],
            &[],
            vec![("level", "array".into()), ("elems", elems.clone())],
        );
        finish_block(m, array_body_q);
        let mut bm = OpBuilder::at_end(m, mat_body_q);
        bm.op(
            "cam.merge_level",
            &[],
            &[],
            vec![("level", "mat".into()), ("elems", elems.clone())],
        );
        finish_block(m, mat_body_q);
        finish_block(m, bank_body_q);
        // Host accumulation across banks: sequential.
        let mut bh = OpBuilder::at_end(m, q_body);
        let c0h = bh.const_index(0);
        let c1h = bh.const_index(1);
        let cbh = bh.const_index(np.banks);
        let (_, host_body, _) = scf::build_for(&mut bh, c0h, cbh, c1h);
        let mut bhb = OpBuilder::at_end(m, host_body);
        bhb.op(
            "cam.merge_level",
            &[],
            &[],
            vec![("level", "bank".into()), ("elems", elems)],
        );
        finish_block(m, host_body);
    }
    finish_block(m, q_body);

    // ------------------------------------------------------------------
    // Final reduce + result wiring.
    // ------------------------------------------------------------------
    let select_largest = if k.metric == "eucl" {
        k.largest
    } else {
        // Device scores for dot/cos are negated overlap counts: flip.
        !k.largest
    };
    let f32t = m.f32_ty();
    // Result buffers adopt the original result shapes (e.g. KNN's
    // rank-1 `[k]`), defaulting to `[nq, k]`.
    let old_result_tys: Vec<c4cam_ir::Type> = m
        .op(k.execute)
        .results
        .iter()
        .map(|&r| m.value_type(r))
        .collect();
    let out_buf_tys: Vec<c4cam_ir::Type> = (0..2usize)
        .map(|i| {
            let shape = k
                .yield_select
                .iter()
                .position(|&s| s == i)
                .and_then(|pos| m.kind(old_result_tys[pos]).shape().map(|s| s.to_vec()))
                .unwrap_or_else(|| vec![nq, k.k_static]);
            m.memref_ty(&shape, f32t)
        })
        .collect();
    let mut b = OpBuilder::before(m, k.acquire);
    let reduce = b.op(
        "cam.reduce",
        &[acc],
        &out_buf_tys,
        vec![
            ("k", Attribute::Int(k.k_static)),
            ("n_valid", Attribute::Int(k.stored_rows as i64)),
            ("select_largest", Attribute::Bool(select_largest)),
            ("metric", k.metric.as_str().into()),
        ],
    );
    let vals_buf = m.result(reduce, 0);
    let idx_buf = m.result(reduce, 1);
    let mut b = OpBuilder::before(m, k.acquire);
    let vals_t = memref::build_to_tensor(&mut b, vals_buf);
    let idx_t = memref::build_to_tensor(&mut b, idx_buf);
    let new_results = [vals_t, idx_t];

    let old_results = m.op(k.execute).results.clone();
    for (i, &old) in old_results.iter().enumerate() {
        m.replace_all_uses(old, new_results[k.yield_select[i]]);
    }
    m.erase_op(k.release);
    m.erase_op(k.execute);
    m.erase_op(k.acquire);
    Ok(())
}

/// The paper's flat "simple system" lowering (§III-D2): for kernels that
/// fit one subarray, replace the triple with a bank/mat/array/subarray
/// allocation chain plus write/search/read/merge/reduce — no loops.
///
/// # Errors
/// Fails if the kernel does not fit a single subarray.
pub fn lower_flat_single_subarray(
    m: &mut Module,
    spec: &ArchSpec,
    k: &SimilarityKernel,
) -> Result<(), String> {
    let p = place(
        spec,
        &MappingProblem {
            stored_rows: k.stored_rows,
            feature_dims: k.feature_dims,
            queries: k.queries,
        },
    )
    .map_err(|e| e.message)?;
    if p.physical_subarrays != 1 || k.queries != 1 {
        return Err(format!(
            "kernel needs {} subarrays / {} queries; flat lowering requires 1/1",
            p.physical_subarrays, k.queries
        ));
    }
    let metric = device_metric(&k.metric);
    let nq = 1i64;
    let mut b = OpBuilder::before(m, k.acquire);
    let acc = memref::build_alloc_f32(&mut b, &[nq, p.padded_rows as i64]);
    let c_rows = b.const_index(spec.rows_per_subarray as i64);
    let c_cols = b.const_index(spec.cols_per_subarray as i64);
    let bank = cam::build_alloc_bank(&mut b, c_rows, c_cols);
    let mat = cam::build_alloc_child(&mut b, bank);
    let array = cam::build_alloc_child(&mut b, mat);
    let sub = cam::build_alloc_child(&mut b, array);
    let c0 = b.const_index(0);
    b.op("cam.write_value", &[sub, k.stored, c0], &[], vec![]);
    cam::build_search(&mut b, sub, k.query, MatchKind::Best, metric, None);
    let (vals, idx) = cam::build_read(&mut b, sub, spec.rows_per_subarray as i64);
    b.op(
        "cam.merge_partial_subarray",
        &[sub, acc, vals, idx, c0, c0],
        &[],
        vec![("dir", "horizontal".into())],
    );
    let select_largest = if k.metric == "eucl" {
        k.largest
    } else {
        !k.largest
    };
    let f32t = b.module().f32_ty();
    let old_result_tys: Vec<c4cam_ir::Type> = b
        .module_ref()
        .op(k.execute)
        .results
        .iter()
        .map(|&r| b.module_ref().value_type(r))
        .collect();
    let out_tys: Vec<c4cam_ir::Type> = (0..2usize)
        .map(|i| {
            let shape = k
                .yield_select
                .iter()
                .position(|&s| s == i)
                .and_then(|pos| {
                    b.module_ref()
                        .kind(old_result_tys[pos])
                        .shape()
                        .map(|s| s.to_vec())
                })
                .unwrap_or_else(|| vec![nq, k.k_static]);
            b.module().memref_ty(&shape, f32t)
        })
        .collect();
    let reduce = b.op(
        "cam.reduce",
        &[acc],
        &out_tys,
        vec![
            ("k", Attribute::Int(k.k_static)),
            ("n_valid", Attribute::Int(k.stored_rows as i64)),
            ("select_largest", Attribute::Bool(select_largest)),
            ("metric", k.metric.as_str().into()),
        ],
    );
    let vals_buf = m.result(reduce, 0);
    let idx_buf = m.result(reduce, 1);
    let mut b = OpBuilder::before(m, k.acquire);
    let vals_t = memref::build_to_tensor(&mut b, vals_buf);
    let idx_t = memref::build_to_tensor(&mut b, idx_buf);
    let new_results = [vals_t, idx_t];
    let old_results = m.op(k.execute).results.clone();
    for (i, &old) in old_results.iter().enumerate() {
        m.replace_all_uses(old, new_results[k.yield_select[i]]);
    }
    m.erase_op(k.release);
    m.erase_op(k.execute);
    m.erase_op(k.acquire);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::{standard_registry, torch};
    use crate::passes::{CimFusePass, TorchToCimPass};
    use c4cam_arch::Optimization;
    use c4cam_ir::verify::verify_module;

    fn spec(opt: Optimization) -> ArchSpec {
        ArchSpec::builder()
            .subarray(32, 32)
            .hierarchy(4, 4, 8)
            .optimization(opt)
            .build()
            .unwrap()
    }

    fn lower(m: &mut Module, s: &ArchSpec) {
        TorchToCimPass.run(m).unwrap();
        CimFusePass.run(m).unwrap();
        CamMapPass { spec: s.clone() }.run(m).unwrap();
        verify_module(m, &standard_registry()).unwrap();
    }

    fn names(m: &Module, func: c4cam_ir::OpId) -> Vec<String> {
        m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect()
    }

    #[test]
    fn base_config_generates_parallel_nest() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 2, 10, 1024, 1);
        lower(&mut m, &spec(Optimization::Base));
        let ns = names(&m, func);
        for op in [
            "cam.alloc_bank",
            "cam.alloc_mat",
            "cam.alloc_array",
            "cam.alloc_subarray",
            "cam.store_handle",
            "cam.load_handle",
            "cam.write_value",
            "cam.search",
            "cam.read",
            "cam.merge_partial_subarray",
            "cam.merge_level",
            "cam.reduce",
        ] {
            assert!(ns.contains(&op.to_string()), "missing {op} in {ns:?}");
        }
        assert!(!ns.contains(&"cim.similarity".to_string()));
        assert!(!ns.contains(&"cim.execute".to_string()));
        // base: subarray loops parallel → 8 scf.parallel in setup+query
        // (2 nests × 4 levels).
        let parallel = ns.iter().filter(|n| *n == "scf.parallel").count();
        assert_eq!(parallel, 8, "{ns:?}");
    }

    #[test]
    fn power_config_serializes_subarray_loops() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 2, 10, 1024, 1);
        lower(&mut m, &spec(Optimization::Power));
        let ns = names(&m, func);
        let parallel = ns.iter().filter(|n| *n == "scf.parallel").count();
        // Subarray level became scf.for in both nests: 6 parallel loops.
        assert_eq!(parallel, 6, "{ns:?}");
    }

    #[test]
    fn density_config_emits_selective_search() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 2, 10, 1024, 1);
        lower(&mut m, &spec(Optimization::Density));
        let mut saw_selective = false;
        for op in m.walk(func) {
            if m.op(op).name == "cam.search" {
                assert_eq!(
                    m.op(op).attr("selective").and_then(Attribute::as_bool),
                    Some(true)
                );
                assert_eq!(m.op(op).operands.len(), 4);
                saw_selective = true;
            }
        }
        assert!(saw_selective);
    }

    #[test]
    fn base_config_search_is_not_selective() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 2, 10, 1024, 1);
        lower(&mut m, &spec(Optimization::Base));
        for op in m.walk(func) {
            if m.op(op).name == "cam.search" {
                assert_eq!(
                    m.op(op).attr("selective").and_then(Attribute::as_bool),
                    Some(false)
                );
                assert_eq!(m.op(op).operands.len(), 2);
            }
        }
    }

    #[test]
    fn reduce_flips_selection_for_dot_metric() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 2, 10, 1024, 1);
        lower(&mut m, &spec(Optimization::Base));
        for op in m.walk(func) {
            if m.op(op).name == "cam.reduce" {
                // Original topk: largest=false on dot products; device
                // scores are negated → select_largest = true.
                assert_eq!(
                    m.op(op).attr("select_largest").and_then(Attribute::as_bool),
                    Some(true)
                );
            }
        }
        let _ = func;
    }

    #[test]
    fn flat_lowering_handles_single_subarray_kernels() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 1, 10, 32, 1);
        TorchToCimPass.run(&mut m).unwrap();
        CimFusePass.run(&mut m).unwrap();
        let kernels = find_similarity_kernels(&m);
        assert_eq!(kernels.len(), 1);
        lower_flat_single_subarray(&mut m, &spec(Optimization::Base), &kernels[0]).unwrap();
        verify_module(&m, &standard_registry()).unwrap();
        let ns = names(&m, func);
        assert!(ns.contains(&"cam.alloc_bank".to_string()));
        assert!(!ns.contains(&"scf.parallel".to_string()));
        assert!(!ns.contains(&"scf.for".to_string()));
    }

    #[test]
    fn flat_lowering_rejects_oversized_kernels() {
        let mut m = Module::new();
        let _ = torch::build_hdc_dot(&mut m, 1, 10, 8192, 1);
        TorchToCimPass.run(&mut m).unwrap();
        CimFusePass.run(&mut m).unwrap();
        let kernels = find_similarity_kernels(&m);
        let e =
            lower_flat_single_subarray(&mut m, &spec(Optimization::Base), &kernels[0]).unwrap_err();
        assert!(e.contains("flat lowering"), "{e}");
    }

    #[test]
    fn access_modes_shape_the_loop_nest() {
        use c4cam_arch::{AccessMode, LevelAccess};
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 2, 10, 1024, 1);
        let s = ArchSpec::builder()
            .subarray(32, 32)
            .hierarchy(4, 4, 8)
            .access(LevelAccess {
                bank: AccessMode::Parallel,
                mat: AccessMode::Sequential,
                array: AccessMode::Parallel,
                subarray: AccessMode::Parallel,
            })
            .build()
            .unwrap();
        lower(&mut m, &s);
        let ns = names(&m, func);
        // The mat level serializes in both nests: 6 parallel loops left.
        assert_eq!(
            ns.iter().filter(|n| *n == "scf.parallel").count(),
            6,
            "{ns:?}"
        );
        assert!(ns.iter().filter(|n| *n == "scf.for").count() >= 2);
    }

    #[test]
    fn cam_map_fails_without_fused_kernel() {
        let mut m = Module::new();
        let _ = torch::build_hdc_dot(&mut m, 2, 10, 1024, 1);
        // No torch-to-cim / fuse: nothing to map.
        let e = CamMapPass {
            spec: spec(Optimization::Base),
        }
        .run(&mut m)
        .unwrap_err();
        assert!(e.message.contains("cim-fuse-ops"), "{e}");
    }
}
