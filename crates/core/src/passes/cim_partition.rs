//! `cim-partition`: compulsory partitioning (paper §III-D1, Fig. 5d).
//!
//! Kernels whose operands exceed one subarray are tiled into
//! subarray-sized slices. The rewrite turns a fused `cim.similarity`
//! into a sequential `scf.for` over logical tiles: each iteration slices
//! the stored and query tensors, computes the tile's partial score
//! matrix on an acquired device (`cim.similarity_scores`), and
//! accumulates it with `cim.merge_partial`. A final `cim.reduce`
//! performs the top-k selection the original operation promised.
//!
//! The loop is expressed with `scf.for` iter-args, so the partitioned
//! form stays purely functional — it is directly executable by the host
//! reference interpreter, which is how the partitioning equivalence
//! tests validate this pass against the unpartitioned semantics.

use c4cam_ir::builder::OpBuilder;
use c4cam_ir::pass::{Pass, PassError};
use c4cam_ir::{Attribute, Module, OpId, ValueId};

use crate::dialects::tensor_ops::{build_extract_slice_2d, OffsetSpec};
use crate::dialects::{cim, scf};
use crate::mapping::{place, MappingProblem};
use crate::passes::defining_op;
use c4cam_arch::ArchSpec;

/// The `cim-partition` pass.
#[derive(Debug)]
pub struct CimPartitionPass {
    /// Target architecture (supplies subarray geometry).
    pub spec: ArchSpec,
}

impl Pass for CimPartitionPass {
    fn name(&self) -> &'static str {
        "cim-partition"
    }

    fn run(&self, m: &mut Module) -> Result<(), PassError> {
        let kernels = find_similarity_kernels(m);
        for k in kernels {
            partition_kernel(m, &self.spec, &k).map_err(|e| PassError::new(self.name(), e))?;
        }
        Ok(())
    }
}

/// A fused similarity kernel: the acquire/execute/release triple plus
/// its extracted parameters. Produced by [`find_similarity_kernels`] and
/// consumed by the partitioning and mapping passes.
#[derive(Debug, Clone)]
pub struct SimilarityKernel {
    /// The `cim.acquire` op of the triple.
    pub acquire: OpId,
    /// The `cim.execute` op of the triple.
    pub execute: OpId,
    /// The `cim.release` op of the triple.
    pub release: OpId,
    /// The inner `cim.similarity` op.
    pub similarity: OpId,
    /// Stored patterns tensor (`[N, d]`).
    pub stored: ValueId,
    /// Query tensor (`[nq, d]`).
    pub query: ValueId,
    /// The `k` operand value.
    pub k_value: ValueId,
    /// Static value of `k`.
    pub k_static: i64,
    /// Similarity metric (`dot` / `eucl` / `cos`).
    pub metric: String,
    /// `largest` flag of the original top-k.
    pub largest: bool,
    /// For each execute result, which similarity result it yields
    /// (0 = values, 1 = indices).
    pub yield_select: Vec<usize>,
    /// `N`: stored row count.
    pub stored_rows: usize,
    /// `d`: feature dimensionality.
    pub feature_dims: usize,
    /// `nq`: query count.
    pub queries: usize,
}

/// Locate all fused `cim.similarity` kernels in the module.
pub fn find_similarity_kernels(m: &Module) -> Vec<SimilarityKernel> {
    let mut out = Vec::new();
    for op in m.walk_all() {
        if m.op(op).name != "cim.execute" {
            continue;
        }
        let body = match m.op(op).regions[0].first() {
            Some(&b) => b,
            None => continue,
        };
        let ops = m.block(body).ops.clone();
        if ops.len() != 2 {
            continue;
        }
        let (sim, yld) = (ops[0], ops[1]);
        if m.op(sim).name != "cim.similarity" || m.op(yld).name != "cim.yield" {
            continue;
        }
        let handle = m.op(op).operands[0];
        let acquire = match defining_op(m, handle) {
            Some(a) if m.op(a).name == "cim.acquire" => a,
            _ => continue,
        };
        let parent = match m.op(op).parent {
            Some(p) => p,
            None => continue,
        };
        let release = match m
            .block(parent)
            .ops
            .iter()
            .copied()
            .find(|&r| m.op(r).name == "cim.release" && m.op(r).operands[0] == handle)
        {
            Some(r) => r,
            None => continue,
        };
        let sim_results = m.op(sim).results.clone();
        let yield_select: Option<Vec<usize>> = m
            .op(yld)
            .operands
            .iter()
            .map(|v| sim_results.iter().position(|r| r == v))
            .collect();
        let yield_select = match yield_select {
            Some(s) => s,
            None => continue,
        };
        let stored = m.op(sim).operands[0];
        let query = m.op(sim).operands[1];
        let k_value = m.op(sim).operands[2];
        let k_static = match m.op(sim).int_attr("k") {
            Some(k) => k,
            None => continue,
        };
        let metric = match m.op(sim).str_attr("metric") {
            Some(x) => x.to_string(),
            None => continue,
        };
        let largest = m
            .op(sim)
            .attr("largest")
            .and_then(Attribute::as_bool)
            .unwrap_or(false);
        let s_shape = match m.kind(m.value_type(stored)).shape() {
            Some(s) => s.to_vec(),
            None => continue,
        };
        let q_shape = match m.kind(m.value_type(query)).shape() {
            Some(s) => s.to_vec(),
            None => continue,
        };
        out.push(SimilarityKernel {
            acquire,
            execute: op,
            release,
            similarity: sim,
            stored,
            query,
            k_value,
            k_static,
            metric,
            largest,
            yield_select,
            stored_rows: s_shape[0] as usize,
            feature_dims: s_shape[1] as usize,
            queries: q_shape[0] as usize,
        });
    }
    out
}

fn partition_kernel(m: &mut Module, spec: &ArchSpec, k: &SimilarityKernel) -> Result<(), String> {
    let problem = MappingProblem {
        stored_rows: k.stored_rows,
        feature_dims: k.feature_dims,
        queries: k.queries,
    };
    let p = place(spec, &problem).map_err(|e| e.message)?;
    if p.logical_tiles <= 1 {
        // Fits one subarray: no partitioning required (paper only tiles
        // when operand sizes exceed the array).
        return Ok(());
    }
    let nq = k.queries as i64;
    let rows_used = p.rows_used as i64;
    let padded = p.padded_rows as i64;
    let cols = spec.cols_per_subarray as i64;
    let f32t = m.f32_ty();
    let acc_ty = m.tensor_ty(&[nq, padded], f32t);

    let mut b = OpBuilder::before(m, k.acquire);
    // Accumulator initialized to zero scores.
    let init_op = b.op(
        "cim.init_acc",
        &[],
        &[acc_ty],
        vec![(
            "shape",
            Attribute::Array(vec![Attribute::Int(nq), Attribute::Int(padded)]),
        )],
    );
    let acc0 = b.module().result(init_op, 0);
    let c0 = b.const_index(0);
    let c1 = b.const_index(1);
    let c_tiles = b.const_index(p.logical_tiles as i64);
    let c_chunks = b.const_index(p.col_chunks as i64);
    let c_rows_used = b.const_index(rows_used);
    let c_cols = b.const_index(cols);

    let (for_op, body, lin, carried) = scf::build_for_iter(&mut b, c0, c_tiles, c1, &[acc0]);
    let acc_in = carried[0];

    // Loop body.
    let mut bb = OpBuilder::at_end(m, body);
    let idx_ty = bb.module().index_ty();
    let rg_op = bb.op("arith.divui", &[lin, c_chunks], &[idx_ty], vec![]);
    let rg = bb.module().result(rg_op, 0);
    let cc_op = bb.op("arith.remui", &[lin, c_chunks], &[idx_ty], vec![]);
    let cc = bb.module().result(cc_op, 0);
    let row_off_op = bb.op("arith.muli", &[rg, c_rows_used], &[idx_ty], vec![]);
    let row_off = bb.module().result(row_off_op, 0);
    let col_off_op = bb.op("arith.muli", &[cc, c_cols], &[idx_ty], vec![]);
    let col_off = bb.module().result(col_off_op, 0);

    let s_slice = build_extract_slice_2d(
        &mut bb,
        k.stored,
        [OffsetSpec::Dynamic(row_off), OffsetSpec::Dynamic(col_off)],
        [rows_used, cols],
    );
    let q_slice = build_extract_slice_2d(
        &mut bb,
        k.query,
        [OffsetSpec::Static(0), OffsetSpec::Dynamic(col_off)],
        [nq, cols],
    );

    let handle = cim::build_acquire(&mut bb);
    let scores_ty = bb.module().tensor_ty(&[nq, rows_used], f32t);
    let (exec, exec_body) = cim::build_execute(&mut bb, handle, &[s_slice, q_slice], &[scores_ty]);
    cim::build_release(&mut bb, handle);
    let exec_scores = bb.module().result(exec, 0);
    let merge_op = bb.op(
        "cim.merge_partial",
        &[acc_in, exec_scores, row_off],
        &[acc_ty],
        vec![("dir", "horizontal".into())],
    );
    let merged = bb.module().result(merge_op, 0);
    scf::end_body(m, body, &[merged]);

    // Fill the execute body.
    let scores = m.create_op(
        "cim.similarity_scores",
        &[s_slice, q_slice],
        &[scores_ty],
        vec![("metric", k.metric.as_str().into())],
        0,
    );
    m.push_op(exec_body, scores);
    let scores_res = m.result(scores, 0);
    cim::build_yield(m, exec_body, &[scores_res]);

    // Final reduce after the loop. Result types adopt the original
    // execute's yielded types (e.g. KNN's rank-1 `[k]`), defaulting to
    // the canonical `[nq, k]`.
    let acc_final = m.result(for_op, 0);
    let old_result_tys: Vec<c4cam_ir::Type> = m
        .op(k.execute)
        .results
        .iter()
        .map(|&r| m.value_type(r))
        .collect();
    let default_ty = m.tensor_ty(&[nq, k.k_static], f32t);
    let out_tys: Vec<c4cam_ir::Type> = (0..2usize)
        .map(|i| {
            k.yield_select
                .iter()
                .position(|&s| s == i)
                .map(|pos| old_result_tys[pos])
                .unwrap_or(default_ty)
        })
        .collect();
    let mut b = OpBuilder::before(m, k.acquire);
    let reduce = b.op(
        "cim.reduce",
        &[acc_final, k.k_value],
        &out_tys,
        vec![
            ("largest", Attribute::Bool(k.largest)),
            ("metric", k.metric.as_str().into()),
            ("k", Attribute::Int(k.k_static)),
            ("n_valid", Attribute::Int(k.stored_rows as i64)),
        ],
    );
    let reduce_results = [m.result(reduce, 0), m.result(reduce, 1)];

    // Rewire and clean up the original triple.
    let old_results = m.op(k.execute).results.clone();
    for (i, &old) in old_results.iter().enumerate() {
        m.replace_all_uses(old, reduce_results[k.yield_select[i]]);
    }
    m.erase_op(k.release);
    m.erase_op(k.execute);
    m.erase_op(k.acquire);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::{standard_registry, torch};
    use crate::passes::{CimFusePass, TorchToCimPass};
    use c4cam_ir::verify::verify_module;

    fn spec_32() -> ArchSpec {
        ArchSpec::builder().subarray(32, 32).build().unwrap()
    }

    fn lower_to_partitioned(m: &mut Module, spec: &ArchSpec) {
        TorchToCimPass.run(m).unwrap();
        CimFusePass.run(m).unwrap();
        CimPartitionPass { spec: spec.clone() }.run(m).unwrap();
        verify_module(m, &standard_registry()).unwrap();
    }

    #[test]
    fn hdc_partitions_into_tile_loop() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 10, 10, 8192, 1);
        lower_to_partitioned(&mut m, &spec_32());
        let names: Vec<String> = m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect();
        assert!(names.contains(&"scf.for".to_string()), "{names:?}");
        assert!(names.contains(&"cim.similarity_scores".to_string()));
        assert!(names.contains(&"cim.merge_partial".to_string()));
        assert!(names.contains(&"cim.reduce".to_string()));
        assert!(names.contains(&"tensor.extract_slice".to_string()));
        assert!(!names.contains(&"cim.similarity".to_string()));
        // 8192 / 32 = 256 tiles.
        for op in m.walk(func) {
            if m.op(op).name == "scf.for" {
                assert_eq!(scf::const_bounds(&m, op), Some((0, 256, 1)));
            }
        }
    }

    #[test]
    fn small_kernels_stay_unpartitioned() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 4, 4, 16, 1);
        lower_to_partitioned(&mut m, &spec_32());
        let names: Vec<String> = m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect();
        assert!(names.contains(&"cim.similarity".to_string()));
        assert!(!names.contains(&"scf.for".to_string()));
    }

    #[test]
    fn knn_partitions_rows_and_columns() {
        let mut m = Module::new();
        let func = torch::build_knn_eucl(&mut m, 100, 64, 3);
        lower_to_partitioned(&mut m, &spec_32());
        // 100 rows / 32 = 4 row groups (ceil), 64/32 = 2 col chunks → 8.
        let mut found = false;
        for op in m.walk(func) {
            if m.op(op).name == "scf.for" {
                assert_eq!(scf::const_bounds(&m, op), Some((0, 8, 1)));
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn reduce_carries_selection_attributes() {
        let mut m = Module::new();
        let func = torch::build_knn_eucl(&mut m, 100, 64, 3);
        lower_to_partitioned(&mut m, &spec_32());
        for op in m.walk(func) {
            if m.op(op).name == "cim.reduce" {
                assert_eq!(m.op(op).int_attr("k"), Some(3));
                assert_eq!(m.op(op).int_attr("n_valid"), Some(100));
                assert_eq!(m.op(op).str_attr("metric"), Some("eucl"));
            }
        }
    }
}
