//! `cim-fuse-ops`: fuse dependent execute blocks and recover similarity
//! kernels (paper §III-D1, Algorithm 1 *SimilarityMatching*).
//!
//! Phase 1 merges chains of `cim.acquire`/`cim.execute`/`cim.release`
//! triples whose executes are connected by dataflow into a single execute
//! block (Fig. 5b). Phase 2 pattern-matches the execute body against the
//! three similarity patterns — dot product, Euclidean norm and cosine —
//! and rewrites matches to `cim.similarity` (Fig. 5c).

use c4cam_ir::builder::OpBuilder;
use c4cam_ir::pass::{Pass, PassError};
use c4cam_ir::{BlockId, Module, OpId, ValueId};
use std::collections::HashMap;

use crate::dialects::cim;
use crate::passes::{const_int_value, defining_op};

/// The `cim-fuse-ops` pass (with the similarity flag enabled, as in the
/// paper's evaluation).
#[derive(Debug, Default)]
pub struct CimFusePass;

impl Pass for CimFusePass {
    fn name(&self) -> &'static str {
        "cim-fuse-ops"
    }

    fn run(&self, m: &mut Module) -> Result<(), PassError> {
        for func in m.top_level_ops() {
            if m.op(func).name != "func.func" {
                continue;
            }
            let entry = m.op(func).regions[0][0];
            fuse_block(m, entry).map_err(|e| PassError::new(self.name(), e))?;
            match_similarity_block(m, entry).map_err(|e| PassError::new(self.name(), e))?;
        }
        Ok(())
    }
}

/// One acquire/execute/release triple found in a block.
#[derive(Debug, Clone, Copy)]
struct Triple {
    acquire: OpId,
    execute: OpId,
    release: OpId,
}

fn find_triples(m: &Module, block: BlockId) -> Vec<Triple> {
    let mut triples = Vec::new();
    for &op in &m.block(block).ops {
        if m.op(op).name != "cim.execute" {
            continue;
        }
        let handle = m.op(op).operands[0];
        let acquire = match defining_op(m, handle) {
            Some(a) if m.op(a).name == "cim.acquire" => a,
            _ => continue,
        };
        let release = m
            .block(block)
            .ops
            .iter()
            .copied()
            .find(|&r| m.op(r).name == "cim.release" && m.op(r).operands[0] == handle);
        let release = match release {
            Some(r) => r,
            None => continue,
        };
        triples.push(Triple {
            acquire,
            execute: op,
            release,
        });
    }
    triples
}

/// Phase 1: merge all dataflow-connected triples in `block` into one.
///
/// Adjacent triples (in block order) are fused when the later one
/// consumes the earlier one's results and nothing else uses them;
/// repeating to fixpoint folds whole dependence chains (Fig. 5b).
fn fuse_block(m: &mut Module, block: BlockId) -> Result<(), String> {
    loop {
        let triples = find_triples(m, block);
        if triples.len() < 2 {
            return Ok(());
        }
        let mut fused_any = false;
        for pair in triples.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let a_results = m.op(a.execute).results.clone();
            let consumes = m
                .op(b.execute)
                .operands
                .iter()
                .any(|o| a_results.contains(o));
            if consumes && results_used_only_within(m, a.execute, b.execute) {
                fuse_pair(m, a, b)?;
                fused_any = true;
                break;
            }
        }
        if !fused_any {
            return Ok(());
        }
    }
}

/// Whether every use of `a`'s results lies inside `b` (the op itself or
/// its regions) — the precondition for internalizing them during fusion.
fn results_used_only_within(m: &Module, a: OpId, b: OpId) -> bool {
    let b_ops: std::collections::HashSet<OpId> = m.walk(b).into_iter().collect();
    m.op(a)
        .results
        .iter()
        .all(|&r| m.uses_of(r).iter().all(|(user, _)| b_ops.contains(user)))
}

/// Merge triple `b` into triple `a` (b consumes a's results).
fn fuse_pair(m: &mut Module, a: Triple, b: Triple) -> Result<(), String> {
    // Map a's execute results to the yielded inner values.
    let a_body = m.op(a.execute).regions[0][0];
    let a_yield = *m.block(a_body).ops.last().ok_or("empty execute body")?;
    let a_yield_vals = m.op(a_yield).operands.clone();
    let a_results = m.op(a.execute).results.clone();
    let result_map: HashMap<ValueId, ValueId> = a_results
        .iter()
        .copied()
        .zip(a_yield_vals.iter().copied())
        .collect();

    // Collect b's inner ops (except terminator) and rewrite their uses of
    // a's execute results to the inner values.
    let b_body = m.op(b.execute).regions[0][0];
    let b_ops = m.block(b_body).ops.clone();
    let (b_inner, b_yield) = b_ops.split_at(b_ops.len() - 1);
    let b_yield = b_yield[0];
    let b_yield_vals = m.op(b_yield).operands.clone();
    let b_result_tys: Vec<_> = m
        .op(b.execute)
        .results
        .iter()
        .map(|&r| m.value_type(r))
        .collect();
    let b_results = m.op(b.execute).results.clone();

    // New fused operands: union of a's and b's execute inputs (minus
    // handles and minus a's results, which become internal).
    let mut fused_inputs: Vec<ValueId> = Vec::new();
    for &v in m.op(a.execute).operands.iter().skip(1) {
        if !fused_inputs.contains(&v) {
            fused_inputs.push(v);
        }
    }
    for &v in m.op(b.execute).operands.iter().skip(1) {
        if !a_results.contains(&v) && !fused_inputs.contains(&v) {
            fused_inputs.push(v);
        }
    }

    // Build the fused triple at b's position: everything a's body needs
    // is defined before a (and thus before b), while host ops between the
    // two triples (e.g. the materialized `k` constant) stay visible to
    // later consumers.
    let mut builder = OpBuilder::before(m, b.acquire);
    let handle = cim::build_acquire(&mut builder);
    let (fused_exec, fused_body) =
        cim::build_execute(&mut builder, handle, &fused_inputs, &b_result_tys);
    cim::build_release(&mut builder, handle);

    // Move a's inner ops (minus yield), then b's, into the fused body.
    let a_inner = {
        let ops = m.block(a_body).ops.clone();
        ops[..ops.len() - 1].to_vec()
    };
    for &op in a_inner.iter().chain(b_inner.iter()) {
        m.detach_op(op);
        m.push_op(fused_body, op);
    }
    // Rewrite b's inner ops' references to a's execute results.
    for (&old, &new) in &result_map {
        m.replace_all_uses(old, new);
    }
    // Fused yield = b's yield values.
    cim::build_yield(m, fused_body, &b_yield_vals);

    // RAUW b's execute results to fused results; erase both old triples.
    for (i, &old) in b_results.iter().enumerate() {
        let new = m.result(fused_exec, i);
        m.replace_all_uses(old, new);
    }
    m.erase_op(b.release);
    m.erase_op(b.execute);
    m.erase_op(b.acquire);
    m.erase_op(a.release);
    m.erase_op(a.execute);
    m.erase_op(a.acquire);
    Ok(())
}

/// Phase 2: Algorithm 1 — *SimilarityMatching*.
///
/// Checks whether an execute body matches the dot-product, Euclidean-norm
/// or cosine similarity data-flow patterns, and rewrites matches to
/// `cim.similarity`.
fn match_similarity_block(m: &mut Module, block: BlockId) -> Result<(), String> {
    for triple in find_triples(m, block) {
        let body = m.op(triple.execute).regions[0][0];
        let ops = m.block(body).ops.clone();
        let names: Vec<String> = ops.iter().map(|&o| m.op(o).name.clone()).collect();
        // Algorithm 1: opSize == 4 → DotProd or EuclNorm; opSize == 6 → Cos.
        let matched = match names.len() {
            4 => match_dot(m, triple, &ops)? || match_eucl(m, triple, &ops)?,
            6 => match_cos(m, triple, &ops)?,
            _ => false,
        };
        let _ = matched;
    }
    Ok(())
}

/// DotProdSimPattern: transpose → matmul(v1) → topk(v2) → yield.
fn match_dot(m: &mut Module, triple: Triple, ops: &[OpId]) -> Result<bool, String> {
    let [tr, mm, topk, yld] = [ops[0], ops[1], ops[2], ops[3]];
    if m.op(tr).name != "cim.transpose"
        || m.op(mm).name != "cim.matmul"
        || m.op(topk).name != "cim.topk"
        || m.op(yld).name != "cim.yield"
    {
        return Ok(false);
    }
    // Data flow: matmul's rhs is the transpose result; topk input is the
    // matmul result.
    if m.op(mm).operands[1] != m.result(tr, 0) || m.op(topk).operands[0] != m.result(mm, 0) {
        return Ok(false);
    }
    let stored = m.op(tr).operands[0];
    let query = m.op(mm).operands[0];
    let k_value = m.op(topk).operands[1];
    let largest = m
        .op(topk)
        .attr("largest")
        .and_then(c4cam_ir::Attribute::as_bool)
        .unwrap_or(false);
    let select = match yield_selection(m, yld, topk) {
        Some(s) => s,
        None => return Ok(false),
    };
    rewrite_to_similarity(m, triple, "dot", stored, query, k_value, largest, select)?;
    Ok(true)
}

/// Map each value yielded by the execute body onto the index of the
/// producing op's result (0 = values, 1 = indices). Returns `None` if a
/// yielded value does not come from `producer`.
fn yield_selection(m: &Module, yld: OpId, producer: OpId) -> Option<Vec<usize>> {
    let producer_results = m.op(producer).results.clone();
    m.op(yld)
        .operands
        .iter()
        .map(|v| producer_results.iter().position(|r| r == v))
        .collect()
}

/// EuclNormPattern: sub → norm(v1) → topk(v2) → yield.
fn match_eucl(m: &mut Module, triple: Triple, ops: &[OpId]) -> Result<bool, String> {
    let [sub, norm, topk, yld] = [ops[0], ops[1], ops[2], ops[3]];
    if m.op(sub).name != "cim.sub"
        || m.op(norm).name != "cim.norm"
        || m.op(topk).name != "cim.topk"
        || m.op(yld).name != "cim.yield"
    {
        return Ok(false);
    }
    if m.op(norm).operands[0] != m.result(sub, 0) || m.op(topk).operands[0] != m.result(norm, 0) {
        return Ok(false);
    }
    let stored = m.op(sub).operands[0];
    let query = m.op(sub).operands[1];
    let k_value = m.op(topk).operands[1];
    let largest = m
        .op(topk)
        .attr("largest")
        .and_then(c4cam_ir::Attribute::as_bool)
        .unwrap_or(false);
    let select = match yield_selection(m, yld, topk) {
        Some(s) => s,
        None => return Ok(false),
    };
    rewrite_to_similarity(m, triple, "eucl", stored, query, k_value, largest, select)?;
    Ok(true)
}

/// CosSimPattern: norm → norm → transpose → matmul(v3) → div(v4,v2,v1)
/// → yield.
fn match_cos(m: &mut Module, triple: Triple, ops: &[OpId]) -> Result<bool, String> {
    let [n1, n2, tr, mm, div, yld] = [ops[0], ops[1], ops[2], ops[3], ops[4], ops[5]];
    if m.op(n1).name != "cim.norm"
        || m.op(n2).name != "cim.norm"
        || m.op(tr).name != "cim.transpose"
        || m.op(mm).name != "cim.matmul"
        || m.op(div).name != "cim.div"
        || m.op(yld).name != "cim.yield"
    {
        return Ok(false);
    }
    if m.op(mm).operands[1] != m.result(tr, 0) {
        return Ok(false);
    }
    let div_ops = m.op(div).operands.clone();
    if div_ops.len() != 3
        || div_ops[0] != m.result(mm, 0)
        || div_ops[1] != m.result(n2, 0)
        || div_ops[2] != m.result(n1, 0)
    {
        return Ok(false);
    }
    let stored = m.op(tr).operands[0];
    let query = m.op(mm).operands[0];
    let select = match yield_selection(m, yld, div) {
        // The div result plays the role of the similarity "values".
        Some(s) if s.iter().all(|&i| i == 0) => s,
        _ => return Ok(false),
    };
    // Cosine has no topk in the pattern: select over all stored rows.
    let n_stored = m
        .kind(m.value_type(stored))
        .shape()
        .ok_or("cos similarity stored operand must be shaped")?[0];
    let mut b = OpBuilder::before(m, triple.acquire);
    let k_value = crate::dialects::torch::build_constant_int(&mut b, n_stored);
    rewrite_to_similarity(m, triple, "cos", stored, query, k_value, true, select)?;
    Ok(true)
}

/// Replace a matched triple with an acquire/execute(similarity)/release.
///
/// `yield_select[i]` names which similarity result (0 = values,
/// 1 = indices) the execute's `i`-th result corresponds to — the original
/// program may return any subset (the paper's Fig. 4a returns only the
/// indices).
#[allow(clippy::too_many_arguments)]
fn rewrite_to_similarity(
    m: &mut Module,
    triple: Triple,
    metric: &str,
    stored: ValueId,
    query: ValueId,
    k_value: ValueId,
    largest: bool,
    yield_select: Vec<usize>,
) -> Result<(), String> {
    let k_static = const_int_value(m, k_value)
        .ok_or("similarity k must come from a constant (dynamic k unsupported)")?;
    let old_results = m.op(triple.execute).results.clone();
    if old_results.len() != yield_select.len() {
        return Err("execute results / yield selection mismatch".into());
    }
    let result_tys: Vec<_> = old_results.iter().map(|&r| m.value_type(r)).collect();

    let mut b = OpBuilder::before(m, triple.acquire);
    let handle = cim::build_acquire(&mut b);
    let (exec, body) = cim::build_execute(&mut b, handle, &[stored, query, k_value], &result_tys);
    cim::build_release(&mut b, handle);

    // Inner similarity op: always produces (values, indices). Each
    // result adopts the original program's type when that result is
    // yielded (e.g. KNN's rank-1 `[k]` with a single query); otherwise
    // the canonical `[nq, k]` shape.
    let nq = m
        .kind(m.value_type(query))
        .shape()
        .ok_or("similarity query must be shaped")?[0];
    let f32t = m.f32_ty();
    let default_ty = m.tensor_ty(&[nq, k_static], f32t);
    let sim_tys: Vec<c4cam_ir::Type> = (0..2)
        .map(|i| {
            yield_select
                .iter()
                .position(|&s| s == i)
                .map(|pos| result_tys[pos])
                .unwrap_or(default_ty)
        })
        .collect();
    let inner = m.create_op(
        "cim.similarity",
        &[stored, query, k_value],
        &sim_tys,
        vec![
            ("metric", metric.into()),
            ("largest", largest.into()),
            ("k", k_static.into()),
        ],
        0,
    );
    m.push_op(body, inner);
    let inner_results = m.op(inner).results.clone();
    let yielded: Vec<ValueId> = yield_select.iter().map(|&i| inner_results[i]).collect();
    cim::build_yield(m, body, &yielded);

    for (i, &old) in old_results.iter().enumerate() {
        let new = m.result(exec, i);
        m.replace_all_uses(old, new);
    }
    m.erase_op(triple.release);
    m.erase_op(triple.execute);
    m.erase_op(triple.acquire);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::{standard_registry, torch};
    use crate::passes::TorchToCimPass;
    use c4cam_ir::verify::verify_module;

    fn lower_and_fuse(m: &mut Module) {
        TorchToCimPass.run(m).unwrap();
        CimFusePass.run(m).unwrap();
        verify_module(m, &standard_registry()).unwrap();
    }

    fn op_names(m: &Module, func: OpId) -> Vec<String> {
        m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect()
    }

    #[test]
    fn hdc_dot_fuses_to_similarity() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 10, 10, 8192, 1);
        lower_and_fuse(&mut m);
        let names = op_names(&m, func);
        assert_eq!(
            names.iter().filter(|n| *n == "cim.execute").count(),
            1,
            "{names:?}"
        );
        assert_eq!(names.iter().filter(|n| *n == "cim.similarity").count(), 1);
        assert!(!names.contains(&"cim.matmul".to_string()));
        // metric attribute is dot
        for op in m.walk(func) {
            if m.op(op).name == "cim.similarity" {
                assert_eq!(m.op(op).str_attr("metric"), Some("dot"));
                assert_eq!(m.op(op).int_attr("k"), Some(1));
            }
        }
    }

    #[test]
    fn knn_eucl_fuses_to_similarity() {
        let mut m = Module::new();
        let func = torch::build_knn_eucl(&mut m, 64, 128, 5);
        lower_and_fuse(&mut m);
        let names = op_names(&m, func);
        assert_eq!(names.iter().filter(|n| *n == "cim.similarity").count(), 1);
        for op in m.walk(func) {
            if m.op(op).name == "cim.similarity" {
                assert_eq!(m.op(op).str_attr("metric"), Some("eucl"));
                assert_eq!(m.op(op).int_attr("k"), Some(5));
            }
        }
    }

    #[test]
    fn fusion_preserves_function_results() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 4, 4, 64, 1);
        lower_and_fuse(&mut m);
        // func.return must reference the new execute's results.
        let mut ret_defs = Vec::new();
        for op in m.walk(func) {
            if m.op(op).name == "func.return" {
                for &v in &m.op(op).operands {
                    let d = defining_op(&m, v).unwrap();
                    ret_defs.push(m.op(d).name.clone());
                }
            }
        }
        assert_eq!(ret_defs, vec!["cim.execute", "cim.execute"]);
    }

    #[test]
    fn unrelated_executes_are_not_fused() {
        // Two independent transposes: no dataflow between them.
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let t = m.tensor_ty(&[4, 4], f32t);
        let (func, entry) = c4cam_ir::builder::build_func(&mut m, "f", &[t, t], &[t, t]);
        let x = m.block(entry).args[0];
        let y = m.block(entry).args[1];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let tx = torch::build_transpose(&mut b, x, -2, -1);
        let ty2 = torch::build_transpose(&mut b, y, -2, -1);
        b.op("func.return", &[tx, ty2], &[], vec![]);
        TorchToCimPass.run(&mut m).unwrap();
        CimFusePass.run(&mut m).unwrap();
        verify_module(&m, &standard_registry()).unwrap();
        let names = op_names(&m, func);
        assert_eq!(names.iter().filter(|n| *n == "cim.execute").count(), 2);
    }

    #[test]
    fn cos_pattern_matches_six_op_bodies() {
        // Build: norm(a), norm(b), transpose(b), matmul(a, t), div(mm, n2, n1)
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let a_ty = m.tensor_ty(&[3, 16], f32t);
        let b_ty = m.tensor_ty(&[5, 16], f32t);
        let out_ty = m.tensor_ty(&[3, 5], f32t);
        let (func, entry) = c4cam_ir::builder::build_func(&mut m, "f", &[a_ty, b_ty], &[out_ty]);
        let a = m.block(entry).args[0];
        let bb = m.block(entry).args[1];
        let mut builder = OpBuilder::at_end(&mut m, entry);
        let n1 = torch::build_norm(&mut builder, a);
        let n2 = torch::build_norm(&mut builder, bb);
        let tr = torch::build_transpose(&mut builder, bb, -2, -1);
        let mm = torch::build_matmul(&mut builder, a, tr);
        let div_op = builder.op("torch.div", &[mm, n2, n1], &[out_ty], vec![]);
        let div = m.result(div_op, 0);
        let mut builder = OpBuilder::at_end(&mut m, entry);
        builder.op("func.return", &[div], &[], vec![]);
        TorchToCimPass.run(&mut m).unwrap();
        // The 5 ops live in 5 executes; fusion folds them into one with a
        // 6-op body (incl. yield) and Algorithm 1 fires the cosine
        // pattern. The similarity "values" result (the normalized
        // similarity matrix) replaces the div result.
        CimFusePass.run(&mut m).unwrap();
        verify_module(&m, &standard_registry()).unwrap();
        let names = op_names(&m, func);
        assert_eq!(names.iter().filter(|n| *n == "cim.execute").count(), 1);
        assert_eq!(names.iter().filter(|n| *n == "cim.similarity").count(), 1);
        assert!(!names.contains(&"cim.div".to_string()));
        for op in m.walk(func) {
            if m.op(op).name == "cim.similarity" {
                assert_eq!(m.op(op).str_attr("metric"), Some("cos"));
                assert_eq!(m.op(op).int_attr("k"), Some(5));
            }
        }
    }
}
