//! `canonicalize`: the generic cleanup optimizations of the paper's
//! Fig. 3 ("Generic optimizations & conversion to LLVM IR" box),
//! implemented as three cooperating rewrites run to fixpoint:
//!
//! * **DCE** — erase side-effect-free ops whose results are unused
//!   (e.g. the `k` constant left behind by similarity fusion);
//! * **constant folding** — fold integer `arith` ops over constants
//!   (the mapping passes emit offset arithmetic that often becomes
//!   constant for single-bank placements);
//! * **trivial-loop collapse** — inline `scf.for`/`scf.parallel` bodies
//!   whose static trip count is exactly one (single-bank/single-batch
//!   placements produce several), eliminating interpretation overhead
//!   without changing timing semantics (a 1-trip parallel scope folds
//!   as the identity).

use c4cam_ir::builder::OpBuilder;
use c4cam_ir::pass::{Pass, PassError};
use c4cam_ir::{Attribute, Module, OpId};

use crate::dialects::scf::const_bounds;

/// The `canonicalize` pass.
#[derive(Debug, Default)]
pub struct CanonicalizePass;

impl Pass for CanonicalizePass {
    fn name(&self) -> &'static str {
        "canonicalize"
    }

    fn run(&self, m: &mut Module) -> Result<(), PassError> {
        // Run the three rewrites to a joint fixpoint (bounded).
        for _ in 0..32 {
            let folded = fold_constants(m).map_err(|e| PassError::new(self.name(), e))?;
            let collapsed =
                collapse_trivial_loops(m).map_err(|e| PassError::new(self.name(), e))?;
            let erased = dce(m);
            if folded + collapsed + erased == 0 {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Ops that may be erased when unused (no memory or device effects).
fn is_pure(name: &str) -> bool {
    if let Some(rest) = name.strip_prefix("arith.") {
        return !rest.is_empty();
    }
    if let Some(rest) = name.strip_prefix("torch.") {
        return !rest.is_empty();
    }
    if name.starts_with("tensor.") {
        return true;
    }
    matches!(
        name,
        "memref.to_tensor"
            | "cim.transpose"
            | "cim.matmul"
            | "cim.sub"
            | "cim.div"
            | "cim.norm"
            | "cim.topk"
            | "cim.similarity"
            | "cim.similarity_scores"
            | "cim.init_acc"
            | "cim.merge_partial"
            | "cim.reduce"
    )
}

/// One sweep of dead-code elimination; returns ops erased.
fn dce(m: &mut Module) -> usize {
    let mut erased = 0;
    loop {
        let mut any = false;
        for op in m.walk_all() {
            if !m.is_live_op(op) {
                continue;
            }
            let data = m.op(op);
            if data.results.is_empty() || !is_pure(&data.name) {
                continue;
            }
            let unused = data.results.iter().all(|&r| !m.has_uses(r));
            if unused {
                m.erase_op(op);
                erased += 1;
                any = true;
            }
        }
        if !any {
            return erased;
        }
    }
}

/// Fold integer arithmetic over `arith.constant` operands; returns the
/// number of folds.
fn fold_constants(m: &mut Module) -> Result<usize, String> {
    let mut folds = 0;
    for op in m.walk_all() {
        if !m.is_live_op(op) {
            continue;
        }
        let name = m.op(op).name.clone();
        let folded: Option<i64> = match name.as_str() {
            "arith.addi" | "arith.subi" | "arith.muli" | "arith.divui" | "arith.remui"
            | "arith.minui" | "arith.maxui" => {
                let a = crate::passes::const_int_value(m, m.operand(op, 0));
                let b = crate::passes::const_int_value(m, m.operand(op, 1));
                match (a, b) {
                    (Some(a), Some(b)) => match name.as_str() {
                        "arith.addi" => Some(a.wrapping_add(b)),
                        "arith.subi" => Some(a.wrapping_sub(b)),
                        "arith.muli" => Some(a.wrapping_mul(b)),
                        "arith.divui" if b != 0 => Some(((a as u64) / (b as u64)) as i64),
                        "arith.remui" if b != 0 => Some(((a as u64) % (b as u64)) as i64),
                        "arith.minui" => Some(((a as u64).min(b as u64)) as i64),
                        "arith.maxui" => Some(((a as u64).max(b as u64)) as i64),
                        _ => None,
                    },
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(value) = folded {
            let ty = m.value_type(m.result(op, 0));
            let mut b = OpBuilder::before(m, op);
            let c = b.op(
                "arith.constant",
                &[],
                &[ty],
                vec![("value", Attribute::Int(value))],
            );
            let new = m.result(c, 0);
            let old = m.result(op, 0);
            m.replace_all_uses(old, new);
            m.erase_op(op);
            folds += 1;
        }
    }
    Ok(folds)
}

/// Inline loops with a static trip count of one; returns loops removed.
fn collapse_trivial_loops(m: &mut Module) -> Result<usize, String> {
    let mut collapsed = 0;
    'outer: loop {
        for op in m.walk_all() {
            if !m.is_live_op(op) {
                continue;
            }
            let name = m.op(op).name.clone();
            if name != "scf.for" && name != "scf.parallel" {
                continue;
            }
            let Some((lb, ub, step)) = const_bounds(m, op) else {
                continue;
            };
            if step <= 0 || lb >= ub || ub - lb > step {
                continue; // zero or multiple iterations
            }
            inline_single_iteration(m, op, lb)?;
            collapsed += 1;
            continue 'outer; // walk list invalidated
        }
        return Ok(collapsed);
    }
}

fn inline_single_iteration(m: &mut Module, loop_op: OpId, lb: i64) -> Result<(), String> {
    let body = m.op(loop_op).regions[0][0];
    let args = m.block(body).args.clone();
    let operands = m.op(loop_op).operands.clone();
    let results = m.op(loop_op).results.clone();
    let parent = m.op(loop_op).parent.ok_or("loop not placed")?;
    let pos = m.position_in_block(loop_op).ok_or("loop not in block")?;

    // Materialize the induction value.
    let idx_ty = m.index_ty();
    let iv_const = m.create_op(
        "arith.constant",
        &[],
        &[idx_ty],
        vec![("value", Attribute::Int(lb))],
        0,
    );
    m.insert_op(parent, pos, iv_const);
    let iv_value = m.result(iv_const, 0);
    m.replace_all_uses(args[0], iv_value);
    // Iter-args take their init values.
    for (i, &arg) in args.iter().skip(1).enumerate() {
        m.replace_all_uses(arg, operands[3 + i]);
    }

    // Move body ops (minus the terminator) before the loop.
    let body_ops = m.block(body).ops.clone();
    let (inner, yield_op) = body_ops.split_at(body_ops.len() - 1);
    let yield_operands = m.op(yield_op[0]).operands.clone();
    let insert_at = m.position_in_block(loop_op).ok_or("loop vanished")?;
    for (at, &inner_op) in (insert_at..).zip(inner) {
        m.detach_op(inner_op);
        m.insert_op(parent, at, inner_op);
    }
    // Loop results take the yielded values.
    for (&r, &y) in results.iter().zip(&yield_operands) {
        m.replace_all_uses(r, y);
    }
    m.erase_op(loop_op);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::{scf, standard_registry, torch};
    use crate::passes::{CimFusePass, TorchToCimPass};
    use c4cam_ir::builder::build_func;
    use c4cam_ir::verify::verify_module;

    #[test]
    fn dce_removes_leftover_constants() {
        let mut m = Module::new();
        let func = torch::build_hdc_dot(&mut m, 2, 4, 64, 1);
        TorchToCimPass.run(&mut m).unwrap();
        CimFusePass.run(&mut m).unwrap();
        // After fusion, the materialized k constant feeds the similarity
        // op but the *original* torch constant conversion may linger.
        let before = m.walk(func).len();
        CanonicalizePass.run(&mut m).unwrap();
        verify_module(&m, &standard_registry()).unwrap();
        assert!(m.walk(func).len() <= before);
        // Everything that remains is used.
        for op in m.walk(func) {
            let data = m.op(op);
            if is_pure(&data.name) && !data.results.is_empty() {
                assert!(
                    data.results.iter().any(|&r| m.has_uses(r)),
                    "dead op survived: {}",
                    data.name
                );
            }
        }
    }

    #[test]
    fn constant_folding_chains() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c4 = b.const_index(4);
        let c8 = b.const_index(8);
        let idx = b.module().index_ty();
        let add = b.op("arith.addi", &[c4, c8], &[idx], vec![]);
        let add_res = m.result(add, 0);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c2 = b.const_index(2);
        let mul = b.op("arith.muli", &[add_res, c2], &[idx], vec![]);
        let mul_res = m.result(mul, 0);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("test.use", &[mul_res], &[], vec![]);
        b.op("func.return", &[], &[], vec![]);

        CanonicalizePass.run(&mut m).unwrap();
        // (4 + 8) * 2 folds to 24 feeding test.use.
        let func = m.lookup_symbol("f").unwrap();
        let names: Vec<String> = m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect();
        assert!(!names.contains(&"arith.addi".to_string()));
        assert!(!names.contains(&"arith.muli".to_string()));
        let use_op = m
            .walk(func)
            .into_iter()
            .find(|&o| m.op(o).name == "test.use")
            .unwrap();
        let def = crate::passes::defining_op(&m, m.operand(use_op, 0)).unwrap();
        assert_eq!(m.op(def).int_attr("value"), Some(24));
    }

    #[test]
    fn single_trip_loops_inline() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let (_, body, iv) = scf::build_parallel(&mut b, c0, c1, c1);
        let mut bb = OpBuilder::at_end(&mut m, body);
        let idx = bb.module().index_ty();
        bb.op("test.effect", &[iv], &[idx], vec![]);
        scf::end_body(&mut m, body, &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[], &[], vec![]);

        CanonicalizePass.run(&mut m).unwrap();
        let func = m.lookup_symbol("f").unwrap();
        let names: Vec<String> = m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect();
        assert!(!names.contains(&"scf.parallel".to_string()), "{names:?}");
        assert!(names.contains(&"test.effect".to_string()));
    }

    #[test]
    fn multi_trip_loops_are_kept() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let c4 = b.const_index(4);
        let (_, body, _) = scf::build_for(&mut b, c0, c4, c1);
        let mut bb = OpBuilder::at_end(&mut m, body);
        bb.op("test.effect", &[], &[], vec![]);
        scf::end_body(&mut m, body, &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[], &[], vec![]);
        CanonicalizePass.run(&mut m).unwrap();
        let func = m.lookup_symbol("f").unwrap();
        let names: Vec<String> = m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect();
        assert!(names.contains(&"scf.for".to_string()));
    }

    #[test]
    fn single_trip_for_with_iter_args_forwards_values() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let t = m.tensor_ty(&[2, 2], f32t);
        let (_, entry) = build_func(&mut m, "f", &[t], &[t]);
        let init = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let (loop_op, body, _iv, carried) = scf::build_for_iter(&mut b, c0, c1, c1, &[init]);
        let mut bb = OpBuilder::at_end(&mut m, body);
        let transformed = bb.op("test.tweak", &[carried[0]], &[t], vec![]);
        let tr = m.result(transformed, 0);
        scf::end_body(&mut m, body, &[tr]);
        let loop_res = m.result(loop_op, 0);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[loop_res], &[], vec![]);

        CanonicalizePass.run(&mut m).unwrap();
        let func = m.lookup_symbol("f").unwrap();
        // The return now uses test.tweak's result directly.
        let ret = m
            .walk(func)
            .into_iter()
            .find(|&o| m.op(o).name == "func.return")
            .unwrap();
        let def = crate::passes::defining_op(&m, m.operand(ret, 0)).unwrap();
        assert_eq!(m.op(def).name, "test.tweak");
    }
}
