//! The C4CAM compilation pipeline (paper Fig. 3).
//!
//! [`C4camPipeline`] assembles the pass sequence for a given
//! [`ArchSpec`] and compiles a torch-level module either down to the
//! `cam` dialect (device path, default) or to the partitioned `cim`
//! form (host/loops path — the paper's "lower to loops, and optimize"
//! branch, which our host interpreter executes directly).

use c4cam_arch::ArchSpec;
use c4cam_ir::pass::{Pass, PassError, PassManager, PassTiming};
use c4cam_ir::print::print_module;
use c4cam_ir::verify::verify_module;
use c4cam_ir::Module;
use std::sync::Arc;

use crate::dialects::standard_registry;
use crate::passes::{CamMapPass, CanonicalizePass, CimFusePass, CimPartitionPass, TorchToCimPass};

/// Which backend the pipeline lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Target {
    /// Lower to the `cam` dialect for the CAM simulator (default).
    #[default]
    CamDevice,
    /// Stop at the partitioned `cim` form (host loops backend).
    HostLoops,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Verify the module against the standard registry after every pass.
    pub verify_each: bool,
    /// Record a textual IR snapshot after every stage (for `ir_tour` and
    /// FileCheck-style tests).
    pub keep_snapshots: bool,
    /// Lowering target.
    pub target: Target,
    /// Run the `canonicalize` cleanup (DCE, constant folding, trivial
    /// loop collapse) after lowering.
    pub canonicalize: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            verify_each: true,
            keep_snapshots: false,
            target: Target::CamDevice,
            canonicalize: false,
        }
    }
}

/// Result of a pipeline run.
#[derive(Debug)]
pub struct CompiledKernel {
    /// The lowered module.
    pub module: Module,
    /// `(stage name, IR text)` snapshots, if requested.
    pub snapshots: Vec<(String, String)>,
    /// Per-pass wall-clock timings.
    pub timings: Vec<PassTiming>,
}

/// The C4CAM compiler driver.
#[derive(Debug, Clone)]
pub struct C4camPipeline {
    spec: ArchSpec,
    options: PipelineOptions,
}

impl C4camPipeline {
    /// Pipeline for an architecture with default options.
    pub fn new(spec: ArchSpec) -> C4camPipeline {
        C4camPipeline {
            spec,
            options: PipelineOptions::default(),
        }
    }

    /// Override the options.
    pub fn with_options(mut self, options: PipelineOptions) -> C4camPipeline {
        self.options = options;
        self
    }

    /// The architecture this pipeline targets.
    pub fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Names of the passes that will run, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        let mut names = match self.options.target {
            Target::CamDevice => vec!["torch-to-cim", "cim-fuse-ops", "cam-map"],
            Target::HostLoops => vec!["torch-to-cim", "cim-fuse-ops", "cim-partition"],
        };
        if self.options.canonicalize {
            names.push("canonicalize");
        }
        names
    }

    /// Compile a torch-level module.
    ///
    /// # Errors
    /// Propagates the first pass or verification failure.
    pub fn compile(&self, mut module: Module) -> Result<CompiledKernel, PassError> {
        let registry = Arc::new(standard_registry());
        let mut snapshots = Vec::new();
        if self.options.keep_snapshots {
            snapshots.push(("torch".to_string(), print_module(&module)));
        }
        verify_module(&module, &registry)
            .map_err(|e| PassError::new("input-verify", e.to_string()))?;

        let mut passes: Vec<Box<dyn Pass>> = match self.options.target {
            Target::CamDevice => vec![
                Box::new(TorchToCimPass),
                Box::new(CimFusePass),
                Box::new(CamMapPass {
                    spec: self.spec.clone(),
                }),
            ],
            Target::HostLoops => vec![
                Box::new(TorchToCimPass),
                Box::new(CimFusePass),
                Box::new(CimPartitionPass {
                    spec: self.spec.clone(),
                }),
            ],
        };
        if self.options.canonicalize {
            passes.push(Box::new(CanonicalizePass));
        }

        let mut timings = Vec::new();
        for pass in passes {
            let mut pm = PassManager::new();
            pm.add(pass);
            if self.options.verify_each {
                pm.verify_each(registry.clone());
            }
            pm.run(&mut module)?;
            timings.extend(pm.timings().iter().cloned());
            if self.options.keep_snapshots {
                let name = timings.last().map(|t| t.name).unwrap_or("?");
                snapshots.push((name.to_string(), print_module(&module)));
            }
        }
        Ok(CompiledKernel {
            module,
            snapshots,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::torch;
    use c4cam_arch::Optimization;

    fn spec() -> ArchSpec {
        ArchSpec::builder()
            .subarray(32, 32)
            .optimization(Optimization::Base)
            .build()
            .unwrap()
    }

    #[test]
    fn device_pipeline_lowers_hdc_to_cam() {
        let mut m = Module::new();
        torch::build_hdc_dot(&mut m, 2, 10, 1024, 1);
        let compiled = C4camPipeline::new(spec()).compile(m).unwrap();
        let text = print_module(&compiled.module);
        assert!(text.contains("cam.search"));
        assert!(!text.contains("torch."));
        assert_eq!(compiled.timings.len(), 3);
    }

    #[test]
    fn host_pipeline_stops_at_partitioned_cim() {
        let mut m = Module::new();
        torch::build_hdc_dot(&mut m, 2, 10, 1024, 1);
        let pipeline = C4camPipeline::new(spec()).with_options(PipelineOptions {
            target: Target::HostLoops,
            ..PipelineOptions::default()
        });
        let compiled = pipeline.compile(m).unwrap();
        let text = print_module(&compiled.module);
        assert!(text.contains("cim.similarity_scores"));
        assert!(!text.contains("cam."));
    }

    #[test]
    fn snapshots_record_every_stage() {
        let mut m = Module::new();
        torch::build_hdc_dot(&mut m, 2, 10, 1024, 1);
        let pipeline = C4camPipeline::new(spec()).with_options(PipelineOptions {
            keep_snapshots: true,
            ..PipelineOptions::default()
        });
        let compiled = pipeline.compile(m).unwrap();
        let stages: Vec<&str> = compiled.snapshots.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            stages,
            vec!["torch", "torch-to-cim", "cim-fuse-ops", "cam-map"]
        );
        // Fig. 5a: the torch-to-cim snapshot shows acquire/execute.
        assert!(compiled.snapshots[1].1.contains("cim.acquire"));
        // Fig. 5c: the fused snapshot shows cim.similarity.
        assert!(compiled.snapshots[2].1.contains("cim.similarity"));
        // Fig. 6: the mapped snapshot shows the hierarchy loops.
        assert!(compiled.snapshots[3].1.contains("cam.alloc_bank"));
        assert!(compiled.snapshots[3].1.contains("scf.parallel"));
    }

    #[test]
    fn malformed_input_is_rejected_before_passes() {
        let mut m = Module::new();
        // A func with a bogus op that fails registry verification.
        let (_, entry) = c4cam_ir::builder::build_func(&mut m, "f", &[], &[]);
        let mut b = c4cam_ir::builder::OpBuilder::at_end(&mut m, entry);
        b.op("bogus.op", &[], &[], vec![]);
        b.op("func.return", &[], &[], vec![]);
        let e = C4camPipeline::new(spec()).compile(m).unwrap_err();
        assert_eq!(e.pass, "input-verify");
    }

    #[test]
    fn pass_names_reflect_target() {
        let p = C4camPipeline::new(spec());
        assert_eq!(
            p.pass_names(),
            vec!["torch-to-cim", "cim-fuse-ops", "cam-map"]
        );
    }
}
