//! Placement arithmetic: how a similarity kernel's stored patterns are
//! tiled over subarrays and the hierarchy (paper §III-D2 and Table I).
//!
//! Shared by the `cam-map` pass and the evaluation harness, so Table I's
//! counts are produced by exactly the code that drives code generation.

use c4cam_arch::{ArchSpec, SpecError};

/// Problem geometry: what must be stored and searched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingProblem {
    /// Number of stored rows (HDC: classes; KNN: training patterns).
    pub stored_rows: usize,
    /// Feature dimensionality of each row.
    pub feature_dims: usize,
    /// Number of queries per kernel invocation.
    pub queries: usize,
}

/// Result of placing a [`MappingProblem`] onto an [`ArchSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Stored rows per row-group (`min(N, R)`).
    pub rows_used: usize,
    /// Number of row groups (`ceil(N / rows_used)`).
    pub row_groups: usize,
    /// Column chunks per row group (`ceil(d / C)`).
    pub col_chunks: usize,
    /// Logical subarray-sized tiles = `row_groups × col_chunks`.
    pub logical_tiles: usize,
    /// Tiles co-resident per physical subarray via selective search
    /// (1 without density packing, else `floor(R / rows_used)`).
    pub batches_per_subarray: usize,
    /// Physical subarrays = `ceil(logical / batches)` (Table I).
    pub physical_subarrays: usize,
    /// Banks provisioned.
    pub banks: usize,
    /// Accumulator width: `row_groups × rows_used` (padded stored rows).
    pub padded_rows: usize,
}

impl Placement {
    /// Hierarchy capacity actually provisioned (subarray slots).
    pub fn provisioned_subarrays(&self, spec: &ArchSpec) -> usize {
        self.banks * spec.subarrays_per_bank()
    }
}

/// Place a problem onto an architecture.
///
/// # Errors
/// Fails on degenerate problems (zero rows/dims) or if a fixed bank
/// budget cannot hold the data.
pub fn place(spec: &ArchSpec, problem: &MappingProblem) -> Result<Placement, SpecError> {
    if problem.stored_rows == 0 || problem.feature_dims == 0 || problem.queries == 0 {
        return Err(SpecError {
            message: "mapping problem must have nonzero rows, dims and queries".into(),
        });
    }
    let r = spec.rows_per_subarray;
    let c = spec.cols_per_subarray;
    let rows_used = problem.stored_rows.min(r);
    let row_groups = problem.stored_rows.div_ceil(rows_used);
    let col_chunks = problem.feature_dims.div_ceil(c);
    let logical_tiles = row_groups * col_chunks;
    let batches_per_subarray = if spec.optimization.uses_selective_search() {
        (r / rows_used).max(1)
    } else {
        1
    };
    let physical_subarrays = logical_tiles.div_ceil(batches_per_subarray);
    let banks = spec.banks_for_subarrays(physical_subarrays)?;
    Ok(Placement {
        rows_used,
        row_groups,
        col_chunks,
        logical_tiles,
        batches_per_subarray,
        physical_subarrays,
        banks,
        padded_rows: row_groups * rows_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_arch::Optimization;

    /// HDC on MNIST with 8k dimensions and 10 classes (paper Table I).
    fn hdc() -> MappingProblem {
        MappingProblem {
            stored_rows: 10,
            feature_dims: 8192,
            queries: 1,
        }
    }

    fn square_spec(n: usize, opt: Optimization) -> ArchSpec {
        ArchSpec::builder()
            .subarray(n, n)
            .hierarchy(4, 4, 8)
            .optimization(opt)
            .build()
            .unwrap()
    }

    #[test]
    fn table1_cam_based_counts_match_exactly() {
        // Paper Table I, row "cam-based": 512, 256, 128, 64, 32.
        let expected = [(16, 512), (32, 256), (64, 128), (128, 64), (256, 32)];
        for (n, count) in expected {
            let p = place(&square_spec(n, Optimization::Base), &hdc()).unwrap();
            assert_eq!(p.physical_subarrays, count, "N={n}");
            assert_eq!(p.batches_per_subarray, 1);
        }
    }

    #[test]
    fn table1_cam_density_counts_match_exactly() {
        // Paper Table I, row "cam-density": 512, 86, 22, 6, 2.
        let expected = [(16, 512), (32, 86), (64, 22), (128, 6), (256, 2)];
        for (n, count) in expected {
            let p = place(&square_spec(n, Optimization::Density), &hdc()).unwrap();
            assert_eq!(p.physical_subarrays, count, "N={n}");
        }
    }

    #[test]
    fn banks_follow_subarray_demand() {
        // 512 subarrays at 128 per bank → 4 banks.
        let p = place(&square_spec(16, Optimization::Base), &hdc()).unwrap();
        assert_eq!(p.banks, 4);
        assert_eq!(
            p.provisioned_subarrays(&square_spec(16, Optimization::Base)),
            512
        );
        // 32 subarrays → 1 bank.
        let p = place(&square_spec(256, Optimization::Base), &hdc()).unwrap();
        assert_eq!(p.banks, 1);
    }

    #[test]
    fn row_groups_cover_large_stored_sets() {
        // KNN-like: 5216 patterns of 4096 dims on 16×16 subarrays.
        let spec = square_spec(16, Optimization::Base);
        let p = place(
            &spec,
            &MappingProblem {
                stored_rows: 5216,
                feature_dims: 4096,
                queries: 1,
            },
        )
        .unwrap();
        assert_eq!(p.rows_used, 16);
        assert_eq!(p.row_groups, 326);
        assert_eq!(p.col_chunks, 256);
        assert_eq!(p.logical_tiles, 326 * 256);
        assert_eq!(p.padded_rows, 326 * 16);
        assert!(p.banks >= (326usize * 256).div_ceil(128));
    }

    #[test]
    fn non_divisible_dims_round_up() {
        let spec = square_spec(32, Optimization::Base);
        let p = place(
            &spec,
            &MappingProblem {
                stored_rows: 33,
                feature_dims: 100,
                queries: 2,
            },
        )
        .unwrap();
        assert_eq!(p.row_groups, 2);
        assert_eq!(p.col_chunks, 4);
        assert_eq!(p.padded_rows, 64);
    }

    #[test]
    fn degenerate_problems_error() {
        let spec = square_spec(32, Optimization::Base);
        assert!(place(
            &spec,
            &MappingProblem {
                stored_rows: 0,
                feature_dims: 8,
                queries: 1
            }
        )
        .is_err());
    }

    #[test]
    fn power_config_does_not_change_placement() {
        let base = place(&square_spec(64, Optimization::Base), &hdc()).unwrap();
        let power = place(&square_spec(64, Optimization::Power), &hdc()).unwrap();
        assert_eq!(base, power);
    }
}
