//! `cam` dialect: the novel device-specific abstraction for CAM
//! accelerators (paper §III-D2).
//!
//! Allocation walks the hierarchy (`cam.alloc_bank` → `cam.alloc_mat` →
//! `cam.alloc_array` → `cam.alloc_subarray`); `cim.execute` lowers to
//! `cam.write_value` + `cam.search` + `cam.read`; partial results are
//! combined with `cam.merge_partial_subarray` and the final selection is
//! `cam.reduce`. `cam.store_handle`/`cam.load_handle` model the
//! subarray address table the runtime keeps so that the query loop can
//! address subarrays programmed during setup.

use c4cam_ir::builder::OpBuilder;
use c4cam_ir::verify::{Arity, DialectRegistry, OpSpec};
use c4cam_ir::{Attribute, CamLevel, Module, OpId, TypeKind, ValueId};

/// Register the `cam` ops.
pub fn register(r: &mut DialectRegistry) {
    r.register(
        OpSpec::new("cam.alloc_bank", "allocate a CAM bank (rows, cols)")
            .operands(Arity::Exact(2))
            .results(Arity::Exact(1))
            .verifier(|m, op| expect_handle_result(m, op, CamLevel::Bank)),
    );
    r.register(
        OpSpec::new("cam.alloc_mat", "allocate a mat within a bank")
            .operands(Arity::Exact(1))
            .results(Arity::Exact(1))
            .verifier(|m, op| {
                expect_handle_operand(m, op, 0, CamLevel::Bank)?;
                expect_handle_result(m, op, CamLevel::Mat)
            }),
    );
    r.register(
        OpSpec::new("cam.alloc_array", "allocate an array within a mat")
            .operands(Arity::Exact(1))
            .results(Arity::Exact(1))
            .verifier(|m, op| {
                expect_handle_operand(m, op, 0, CamLevel::Mat)?;
                expect_handle_result(m, op, CamLevel::Array)
            }),
    );
    r.register(
        OpSpec::new("cam.alloc_subarray", "allocate a subarray within an array")
            .operands(Arity::Exact(1))
            .results(Arity::Exact(1))
            .verifier(|m, op| {
                expect_handle_operand(m, op, 0, CamLevel::Array)?;
                expect_handle_result(m, op, CamLevel::Subarray)
            }),
    );
    r.register(
        OpSpec::new(
            "cam.store_handle",
            "record a subarray handle in the address table",
        )
        .operands(Arity::Exact(3))
        .results(Arity::Exact(0))
        .verifier(|m, op| expect_handle_operand(m, op, 2, CamLevel::Subarray)),
    );
    r.register(
        OpSpec::new(
            "cam.load_handle",
            "look up a subarray handle from the address table",
        )
        .operands(Arity::Exact(2))
        .results(Arity::Exact(1))
        .verifier(|m, op| expect_handle_result(m, op, CamLevel::Subarray)),
    );
    r.register(
        OpSpec::new("cam.write_value", "program stored rows (data, row offset)")
            .operands(Arity::Exact(3))
            .results(Arity::Exact(0))
            .verifier(|m, op| expect_handle_operand(m, op, 0, CamLevel::Subarray)),
    );
    r.register(
        OpSpec::new("cam.search", "search a query against a subarray")
            .operands(Arity::AtLeast(2))
            .results(Arity::Exact(0))
            .verifier(verify_search),
    );
    r.register(
        OpSpec::new("cam.read", "read values/indices of the last search")
            .operands(Arity::Exact(1))
            .results(Arity::Exact(2))
            .verifier(|m, op| expect_handle_operand(m, op, 0, CamLevel::Subarray)),
    );
    r.register(
        OpSpec::new(
            "cam.merge_partial_subarray",
            "accumulate a subarray's partial result into the score buffer",
        )
        .operands(Arity::Exact(6))
        .results(Arity::Exact(0))
        .verifier(|m, op| expect_handle_operand(m, op, 0, CamLevel::Subarray)),
    );
    r.register(
        OpSpec::new(
            "cam.merge_level",
            "hierarchy-level accumulation cost (array/mat/bank periphery)",
        )
        .operands(Arity::Exact(0))
        .results(Arity::Exact(0))
        .verifier(verify_merge_level),
    );
    r.register(
        OpSpec::new(
            "cam.phase_marker",
            "statistics phase boundary (no hardware effect)",
        )
        .operands(Arity::Exact(0))
        .results(Arity::Exact(0))
        .verifier(|m, op| {
            m.op(op)
                .str_attr("name")
                .map(|_| ())
                .ok_or_else(|| "cam.phase_marker requires a 'name' attribute".to_string())
        }),
    );
    r.register(
        OpSpec::new("cam.reduce", "host-side final top-k over the score buffer")
            .operands(Arity::Exact(1))
            .results(Arity::Exact(2))
            .verifier(verify_reduce),
    );
}

fn expect_handle_result(m: &Module, op: OpId, level: CamLevel) -> Result<(), String> {
    match m.kind(m.value_type(m.op(op).results[0])) {
        TypeKind::CamHandle(l) if *l == level => Ok(()),
        _ => Err(format!("result must be !cam.{}", level.keyword())),
    }
}

fn expect_handle_operand(m: &Module, op: OpId, idx: usize, level: CamLevel) -> Result<(), String> {
    match m.kind(m.value_type(m.op(op).operands[idx])) {
        TypeKind::CamHandle(l) if *l == level => Ok(()),
        _ => Err(format!("operand {idx} must be !cam.{}", level.keyword())),
    }
}

fn verify_search(m: &Module, op: OpId) -> Result<(), String> {
    expect_handle_operand(m, op, 0, CamLevel::Subarray)?;
    let data = m.op(op);
    let kind = data
        .str_attr("kind")
        .ok_or("cam.search requires a 'kind' attribute (exact|best|threshold)")?;
    if c4cam_arch::MatchKind::from_keyword(kind).is_none() {
        return Err(format!("unknown search kind '{kind}'"));
    }
    let metric = data
        .str_attr("metric")
        .ok_or("cam.search requires a 'metric' attribute")?;
    if c4cam_arch::Metric::from_keyword(metric).is_none() {
        return Err(format!("unknown search metric '{metric}'"));
    }
    let selective = data
        .attr("selective")
        .and_then(Attribute::as_bool)
        .unwrap_or(false);
    let expected = if selective { 4 } else { 2 };
    if data.operands.len() != expected {
        return Err(format!(
            "cam.search with selective={selective} takes {expected} operands, has {}",
            data.operands.len()
        ));
    }
    Ok(())
}

fn verify_merge_level(m: &Module, op: OpId) -> Result<(), String> {
    let level = m
        .op(op)
        .str_attr("level")
        .ok_or("cam.merge_level requires a 'level' attribute")?;
    match level {
        "bank" | "mat" | "array" | "subarray" => Ok(()),
        other => Err(format!("unknown merge level '{other}'")),
    }
}

fn verify_reduce(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.int_attr("k").is_none() {
        return Err("cam.reduce requires an integer 'k' attribute".into());
    }
    if data.int_attr("n_valid").is_none() {
        return Err("cam.reduce requires an integer 'n_valid' attribute".into());
    }
    if data
        .attr("select_largest")
        .and_then(Attribute::as_bool)
        .is_none()
    {
        return Err("cam.reduce requires a boolean 'select_largest' attribute".into());
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Builders
// ----------------------------------------------------------------------

/// Build `cam.alloc_bank` with constant row/col size operands.
pub fn build_alloc_bank(b: &mut OpBuilder<'_>, rows: ValueId, cols: ValueId) -> ValueId {
    let ty = b.module().cam_ty(CamLevel::Bank);
    let op = b.op("cam.alloc_bank", &[rows, cols], &[ty], vec![]);
    b.module().result(op, 0)
}

/// Build a child-level allocation (`cam.alloc_mat` / `alloc_array` /
/// `alloc_subarray`) from a parent handle.
pub fn build_alloc_child(b: &mut OpBuilder<'_>, parent: ValueId) -> ValueId {
    let parent_ty = b.module_ref().value_type(parent);
    let parent_level = match b.module_ref().kind(parent_ty) {
        TypeKind::CamHandle(l) => *l,
        _ => panic!("build_alloc_child expects a cam handle"),
    };
    let child = parent_level.child().expect("subarray has no children");
    let name = match child {
        CamLevel::Mat => "cam.alloc_mat",
        CamLevel::Array => "cam.alloc_array",
        CamLevel::Subarray => "cam.alloc_subarray",
        CamLevel::Bank => unreachable!(),
    };
    let ty = b.module().cam_ty(child);
    let op = b.op(name, &[parent], &[ty], vec![]);
    b.module().result(op, 0)
}

/// Build `cam.search`. `selective` optionally supplies `(start, len)`
/// index values for selective row precharging.
pub fn build_search(
    b: &mut OpBuilder<'_>,
    sub: ValueId,
    query: ValueId,
    kind: c4cam_arch::MatchKind,
    metric: c4cam_arch::Metric,
    selective: Option<(ValueId, ValueId)>,
) -> OpId {
    let mut operands = vec![sub, query];
    let is_selective = selective.is_some();
    if let Some((start, len)) = selective {
        operands.push(start);
        operands.push(len);
    }
    b.op(
        "cam.search",
        &operands,
        &[],
        vec![
            ("kind", kind.keyword().into()),
            ("metric", metric.keyword().into()),
            ("selective", Attribute::Bool(is_selective)),
        ],
    )
}

/// Build `cam.read` returning `(values, indices)` memrefs sized
/// `[rows, 1]`.
pub fn build_read(b: &mut OpBuilder<'_>, sub: ValueId, rows: i64) -> (ValueId, ValueId) {
    let f32t = b.module().f32_ty();
    let ty = b.module().memref_ty(&[rows, 1], f32t);
    let op = b.op("cam.read", &[sub], &[ty, ty], vec![]);
    (b.module().result(op, 0), b.module().result(op, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_arch::{MatchKind, Metric};
    use c4cam_ir::builder::build_func;
    use c4cam_ir::verify::verify_module;
    use c4cam_ir::Module;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.allow_unregistered = true;
        register(&mut r);
        crate::dialects::arith::register(&mut r);
        crate::dialects::memref::register(&mut r);
        r
    }

    #[test]
    fn allocation_chain_builds_and_verifies() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let rows = b.const_index(32);
        let cols = b.const_index(32);
        let bank = build_alloc_bank(&mut b, rows, cols);
        let mat = build_alloc_child(&mut b, bank);
        let array = build_alloc_child(&mut b, mat);
        let sub = build_alloc_child(&mut b, array);
        assert!(matches!(
            m.kind(m.value_type(sub)),
            TypeKind::CamHandle(CamLevel::Subarray)
        ));
        verify_module(&m, &registry()).unwrap();
    }

    #[test]
    fn alloc_child_rejects_wrong_parent_level() {
        let mut m = Module::new();
        let bank_ty = m.cam_ty(CamLevel::Bank);
        let sub_ty = m.cam_ty(CamLevel::Subarray);
        let (_, entry) = build_func(&mut m, "f", &[bank_ty], &[]);
        let bank = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        // alloc_array directly from a bank: wrong.
        b.op("cam.alloc_array", &[bank], &[sub_ty], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("mat"), "{e}");
    }

    #[test]
    fn search_builder_emits_valid_op() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let sub_ty = m.cam_ty(CamLevel::Subarray);
        let q_ty = m.tensor_ty(&[1, 32], f32t);
        let (_, entry) = build_func(&mut m, "f", &[sub_ty, q_ty], &[]);
        let sub = m.block(entry).args[0];
        let q = m.block(entry).args[1];
        let mut b = OpBuilder::at_end(&mut m, entry);
        build_search(&mut b, sub, q, MatchKind::Best, Metric::Hamming, None);
        let (vals, _idx) = build_read(&mut b, sub, 32);
        assert!(matches!(
            m.kind(m.value_type(vals)),
            TypeKind::MemRef { .. }
        ));
        verify_module(&m, &registry()).unwrap();
    }

    #[test]
    fn selective_search_requires_window_operands() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let sub_ty = m.cam_ty(CamLevel::Subarray);
        let q_ty = m.tensor_ty(&[1, 32], f32t);
        let (_, entry) = build_func(&mut m, "f", &[sub_ty, q_ty], &[]);
        let sub = m.block(entry).args[0];
        let q = m.block(entry).args[1];
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op(
            "cam.search",
            &[sub, q],
            &[],
            vec![
                ("kind", "best".into()),
                ("metric", "hamming".into()),
                ("selective", Attribute::Bool(true)), // but no window operands
            ],
        );
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("selective"), "{e}");
    }

    #[test]
    fn search_rejects_unknown_kind_or_metric() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let sub_ty = m.cam_ty(CamLevel::Subarray);
        let q_ty = m.tensor_ty(&[1, 32], f32t);
        let (_, entry) = build_func(&mut m, "f", &[sub_ty, q_ty], &[]);
        let sub = m.block(entry).args[0];
        let q = m.block(entry).args[1];
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op(
            "cam.search",
            &[sub, q],
            &[],
            vec![
                ("kind", "fuzzy".into()),
                ("metric", "hamming".into()),
                ("selective", Attribute::Bool(false)),
            ],
        );
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("kind"), "{e}");
    }

    #[test]
    fn reduce_requires_selection_attrs() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let acc_ty = m.memref_ty(&[4, 16], f32t);
        let out_ty = m.memref_ty(&[4, 1], f32t);
        let (_, entry) = build_func(&mut m, "f", &[acc_ty], &[]);
        let acc = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("cam.reduce", &[acc], &[out_ty, out_ty], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("'k'"), "{e}");
    }

    #[test]
    fn merge_level_validates_level_names() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("cam.merge_level", &[], &[], vec![("level", "rack".into())]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("merge level"), "{e}");
    }
}
