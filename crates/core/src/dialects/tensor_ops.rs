//! `tensor` dialect subset: rectangular slicing used by the partitioning
//! and mapping passes (paper Fig. 5d).
//!
//! Our `tensor.extract_slice` supports *clamped* semantics: when the
//! window (driven by a dynamic loop offset) reaches past the tensor's
//! extent, the runtime clamps the window to the tensor and zero-pads the
//! remainder. This mirrors what the CAM hardware does with unused
//! columns (don't-care cells never mismatch) and lets the mapping passes
//! emit fully static loop nests for non-divisible sizes.

use c4cam_ir::verify::{Arity, DialectRegistry, OpSpec};
use c4cam_ir::{Attribute, Module, OpId, TypeKind, ValueId};

/// Sentinel in `static_offsets` marking "offset supplied as operand".
pub const DYNAMIC_OFFSET: i64 = i64::MIN;

/// Register the `tensor` ops.
pub fn register(r: &mut DialectRegistry) {
    r.register(
        OpSpec::new(
            "tensor.extract_slice",
            "rectangular slice (clamp + zero-pad)",
        )
        .operands(Arity::AtLeast(1))
        .results(Arity::Exact(1))
        .verifier(verify_extract_slice),
    );
    r.register(
        OpSpec::new("tensor.insert_slice", "write a patch into a tensor")
            .operands(Arity::AtLeast(2))
            .results(Arity::Exact(1)),
    );
}

fn verify_extract_slice(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let src_ty = m.kind(m.value_type(data.operands[0])).clone();
    let rank = match &src_ty {
        TypeKind::RankedTensor { shape, .. } => shape.len(),
        _ => return Err("extract_slice source must be a ranked tensor".into()),
    };
    let offsets = data
        .attr("static_offsets")
        .and_then(Attribute::as_int_array)
        .ok_or("extract_slice requires 'static_offsets'")?;
    let sizes = data
        .attr("sizes")
        .and_then(Attribute::as_int_array)
        .ok_or("extract_slice requires 'sizes'")?;
    if offsets.len() != rank || sizes.len() != rank {
        return Err(format!("extract_slice offsets/sizes must have rank {rank}"));
    }
    let dynamic = offsets.iter().filter(|&&o| o == DYNAMIC_OFFSET).count();
    if data.operands.len() != 1 + dynamic {
        return Err(format!(
            "extract_slice has {dynamic} dynamic offsets but {} offset operands",
            data.operands.len() - 1
        ));
    }
    let res_ty = m.kind(m.value_type(data.results[0])).clone();
    match &res_ty {
        TypeKind::RankedTensor { shape, .. } => {
            if shape.as_slice() != sizes.as_slice() {
                return Err("extract_slice result shape must equal 'sizes'".into());
            }
        }
        _ => return Err("extract_slice result must be a ranked tensor".into()),
    }
    Ok(())
}

/// Build a 2-D `tensor.extract_slice` with dynamic offsets.
///
/// `offsets` supplies one [`OffsetSpec`] per dimension; `sizes` are the
/// static window sizes.
pub fn build_extract_slice_2d(
    b: &mut c4cam_ir::builder::OpBuilder<'_>,
    src: ValueId,
    offsets: [OffsetSpec; 2],
    sizes: [i64; 2],
) -> ValueId {
    let src_ty = b.module_ref().value_type(src);
    let elem = b.module_ref().kind(src_ty).elem().expect("shaped source");
    let res_ty = b.module().tensor_ty(&sizes, elem);
    let mut static_offsets = Vec::new();
    let mut operands = vec![src];
    for off in offsets {
        match off {
            OffsetSpec::Static(v) => static_offsets.push(Attribute::Int(v)),
            OffsetSpec::Dynamic(v) => {
                static_offsets.push(Attribute::Int(DYNAMIC_OFFSET));
                operands.push(v);
            }
        }
    }
    let op = b.op(
        "tensor.extract_slice",
        &operands,
        &[res_ty],
        vec![
            ("static_offsets", Attribute::Array(static_offsets)),
            (
                "sizes",
                Attribute::Array(sizes.iter().map(|&s| Attribute::Int(s)).collect()),
            ),
        ],
    );
    b.module().result(op, 0)
}

/// A per-dimension slice offset: compile-time constant or SSA value.
#[derive(Debug, Clone, Copy)]
pub enum OffsetSpec {
    /// Known at compile time.
    Static(i64),
    /// Supplied by an index-typed SSA value (loop iv).
    Dynamic(ValueId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_ir::builder::{build_func, OpBuilder};
    use c4cam_ir::verify::verify_module;
    use c4cam_ir::Module;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.allow_unregistered = true;
        register(&mut r);
        crate::dialects::arith::register(&mut r);
        r
    }

    #[test]
    fn static_and_dynamic_offsets_verify() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let src_ty = m.tensor_ty(&[10, 8192], f32t);
        let (_, entry) = build_func(&mut m, "f", &[src_ty], &[]);
        let src = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let iv = b.const_index(64);
        let slice = build_extract_slice_2d(
            &mut b,
            src,
            [OffsetSpec::Static(0), OffsetSpec::Dynamic(iv)],
            [10, 32],
        );
        assert_eq!(m.kind(m.value_type(slice)).shape(), Some(&[10i64, 32][..]));
        verify_module(&m, &registry()).unwrap();
    }

    #[test]
    fn operand_count_mismatch_is_rejected() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let src_ty = m.tensor_ty(&[10, 64], f32t);
        let slice_ty = m.tensor_ty(&[10, 32], f32t);
        let (_, entry) = build_func(&mut m, "f", &[src_ty], &[]);
        let src = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op(
            "tensor.extract_slice",
            &[src],
            &[slice_ty],
            vec![
                (
                    "static_offsets",
                    Attribute::Array(vec![
                        Attribute::Int(0),
                        Attribute::Int(DYNAMIC_OFFSET), // claims dynamic, no operand
                    ]),
                ),
                (
                    "sizes",
                    Attribute::Array(vec![Attribute::Int(10), Attribute::Int(32)]),
                ),
            ],
        );
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("dynamic"), "{e}");
    }

    #[test]
    fn result_shape_must_match_sizes() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let src_ty = m.tensor_ty(&[10, 64], f32t);
        let bad_ty = m.tensor_ty(&[10, 16], f32t);
        let (_, entry) = build_func(&mut m, "f", &[src_ty], &[]);
        let src = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op(
            "tensor.extract_slice",
            &[src],
            &[bad_ty],
            vec![
                (
                    "static_offsets",
                    Attribute::Array(vec![Attribute::Int(0), Attribute::Int(0)]),
                ),
                (
                    "sizes",
                    Attribute::Array(vec![Attribute::Int(10), Attribute::Int(32)]),
                ),
            ],
        );
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("result shape"), "{e}");
    }
}
