//! `cim` dialect: the device-agnostic compute-in-memory abstraction
//! (extended from CINM \[16\], paper §III-D1).
//!
//! The programming model is acquire / execute / release: `cim.acquire`
//! returns a device handle, `cim.execute` wraps a region of
//! device-amenable ops, `cim.release` frees the handle. The C4CAM
//! extension adds the similarity analyses: after fusion, execute regions
//! matching Algorithm 1's patterns are rewritten to `cim.similarity`,
//! partials are combined with `cim.merge_partial`, and `cim.reduce`
//! performs the final top-k selection over accumulated scores.

use c4cam_ir::builder::OpBuilder;
use c4cam_ir::verify::{Arity, DialectRegistry, OpSpec};
use c4cam_ir::{Attribute, Module, OpId, TypeKind, ValueId};

/// Known similarity metrics for `cim.similarity` (paper Algorithm 1).
pub const SIMILARITY_METRICS: [&str; 3] = ["dot", "eucl", "cos"];

/// Register the `cim` ops.
pub fn register(r: &mut DialectRegistry) {
    r.register(
        OpSpec::new("cim.acquire", "acquire a CIM device handle")
            .operands(Arity::Exact(0))
            .results(Arity::Exact(1))
            .verifier(|m, op| match m.kind(m.value_type(m.op(op).results[0])) {
                TypeKind::Index => Ok(()),
                _ => Err("cim.acquire returns an index handle".into()),
            }),
    );
    r.register(
        OpSpec::new("cim.execute", "run a region on an acquired device")
            .operands(Arity::AtLeast(1))
            .regions(Arity::Exact(1))
            .requires_terminator()
            .verifier(verify_execute),
    );
    r.register(
        OpSpec::new("cim.yield", "execute-region terminator")
            .results(Arity::Exact(0))
            .terminator(),
    );
    r.register(
        OpSpec::new("cim.release", "release a device handle")
            .operands(Arity::Exact(1))
            .results(Arity::Exact(0)),
    );
    // Device-compatible compute ops (mirrors of the torch subset).
    for (name, summary) in [
        ("cim.transpose", "device transpose"),
        ("cim.norm", "device row-wise L2 norm"),
    ] {
        r.register(
            OpSpec::new(name_static(name), summary)
                .operands(Arity::Exact(1))
                .results(Arity::Exact(1)),
        );
    }
    for (name, summary) in [
        ("cim.matmul", "device matrix multiplication"),
        ("cim.sub", "device (broadcasting) subtraction"),
    ] {
        r.register(
            OpSpec::new(name_static(name), summary)
                .operands(Arity::Exact(2))
                .results(Arity::Exact(1)),
        );
    }
    r.register(
        OpSpec::new("cim.div", "device division (2 or 3 operands for cosine)")
            .operands(Arity::AtLeast(2))
            .results(Arity::Exact(1)),
    );
    r.register(
        OpSpec::new("cim.topk", "device top-k")
            .operands(Arity::Exact(2))
            .results(Arity::Exact(2)),
    );
    r.register(
        OpSpec::new("cim.similarity", "fused similarity search (Algorithm 1)")
            .operands(Arity::Exact(3))
            .results(Arity::Exact(2))
            .verifier(verify_similarity),
    );
    r.register(
        OpSpec::new(
            "cim.similarity_scores",
            "partial similarity: per-(query,stored) score matrix",
        )
        .operands(Arity::Exact(2))
        .results(Arity::Exact(1))
        .verifier(verify_similarity_scores),
    );
    r.register(
        OpSpec::new("cim.init_acc", "zero-initialized score accumulator")
            .operands(Arity::Exact(0))
            .results(Arity::Exact(1)),
    );
    r.register(
        OpSpec::new(
            "cim.merge_partial",
            "accumulate partial scores (acc, partial, column offset)",
        )
        .operands(Arity::Exact(3))
        .results(Arity::Exact(1))
        .verifier(verify_merge_partial),
    );
    r.register(
        OpSpec::new("cim.reduce", "final top-k over accumulated scores")
            .operands(Arity::Exact(2))
            .results(Arity::Exact(2))
            .verifier(verify_reduce),
    );
}

fn name_static(name: &str) -> &'static str {
    match name {
        "cim.transpose" => "cim.transpose",
        "cim.norm" => "cim.norm",
        "cim.matmul" => "cim.matmul",
        "cim.sub" => "cim.sub",
        _ => unreachable!(),
    }
}

fn verify_execute(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    match m.kind(m.value_type(data.operands[0])) {
        TypeKind::Index => {}
        _ => return Err("cim.execute operand 0 must be the device handle (index)".into()),
    }
    let block = data.regions[0]
        .first()
        .copied()
        .ok_or("cim.execute requires a body block")?;
    if let Some(&last) = m.block(block).ops.last() {
        let term = m.op(last);
        if term.name != "cim.yield" {
            return Err("cim.execute body must end with cim.yield".into());
        }
        if term.operands.len() != data.results.len() {
            return Err(format!(
                "cim.yield carries {} values but execute has {} results",
                term.operands.len(),
                data.results.len()
            ));
        }
        for (i, (&y, &r)) in term.operands.iter().zip(&data.results).enumerate() {
            if m.value_type(y) != m.value_type(r) {
                return Err(format!("cim.yield value {i} type mismatch with result"));
            }
        }
    }
    Ok(())
}

fn metric_attr(m: &Module, op: OpId) -> Result<String, String> {
    let metric = m
        .op(op)
        .str_attr("metric")
        .ok_or("similarity op requires a 'metric' attribute")?;
    if !SIMILARITY_METRICS.contains(&metric) {
        return Err(format!("unknown similarity metric '{metric}'"));
    }
    Ok(metric.to_string())
}

fn verify_similarity(m: &Module, op: OpId) -> Result<(), String> {
    metric_attr(m, op)?;
    let data = m.op(op);
    if data.attr("largest").and_then(Attribute::as_bool).is_none() {
        return Err("cim.similarity requires a boolean 'largest' attribute".into());
    }
    match m.kind(m.value_type(data.operands[2])) {
        TypeKind::Integer { .. } => {}
        _ => return Err("cim.similarity 'k' operand must be an integer".into()),
    }
    let stored = m.kind(m.value_type(data.operands[0])).clone();
    let query = m.kind(m.value_type(data.operands[1])).clone();
    match (stored.shape(), query.shape()) {
        (Some(s), Some(q)) if s.len() == 2 && q.len() == 2 => {
            if s[1] != q[1] {
                return Err(format!(
                    "similarity feature dims differ: stored {} vs query {}",
                    s[1], q[1]
                ));
            }
            Ok(())
        }
        _ => Err("similarity operands must be rank-2 tensors".into()),
    }
}

fn verify_similarity_scores(m: &Module, op: OpId) -> Result<(), String> {
    metric_attr(m, op)?;
    let data = m.op(op);
    let stored = m.kind(m.value_type(data.operands[0])).clone();
    let query = m.kind(m.value_type(data.operands[1])).clone();
    let res = m.kind(m.value_type(data.results[0])).clone();
    match (stored.shape(), query.shape(), res.shape()) {
        (Some(s), Some(q), Some(r)) if s.len() == 2 && q.len() == 2 && r.len() == 2 => {
            if s[1] != q[1] {
                return Err("similarity_scores feature dims differ".into());
            }
            if r[0] != q[0] || r[1] != s[0] {
                return Err(format!(
                    "similarity_scores result must be [queries={}, stored={}], got {:?}",
                    q[0], s[0], r
                ));
            }
            Ok(())
        }
        _ => Err("similarity_scores operands/result must be rank-2 tensors".into()),
    }
}

fn verify_merge_partial(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let dir = data
        .str_attr("dir")
        .ok_or("cim.merge_partial requires a 'dir' attribute")?;
    if dir != "horizontal" && dir != "vertical" {
        return Err(format!("unknown merge direction '{dir}'"));
    }
    let acc = m.value_type(data.operands[0]);
    if m.value_type(data.results[0]) != acc {
        return Err("merge_partial result type must match accumulator".into());
    }
    Ok(())
}

fn verify_reduce(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.attr("largest").and_then(Attribute::as_bool).is_none() {
        return Err("cim.reduce requires a boolean 'largest' attribute".into());
    }
    metric_attr(m, op)?;
    Ok(())
}

// ----------------------------------------------------------------------
// Builders
// ----------------------------------------------------------------------

/// Build `cim.acquire` returning the handle value.
pub fn build_acquire(b: &mut OpBuilder<'_>) -> ValueId {
    let idx = b.module().index_ty();
    let op = b.op("cim.acquire", &[], &[idx], vec![]);
    b.module().result(op, 0)
}

/// Build `cim.release`.
pub fn build_release(b: &mut OpBuilder<'_>, handle: ValueId) {
    b.op("cim.release", &[handle], &[], vec![]);
}

/// Build an empty `cim.execute` with the given operands and result
/// types; returns `(op, body_block)`. The caller fills the body and must
/// terminate it with `cim.yield`.
pub fn build_execute(
    b: &mut OpBuilder<'_>,
    handle: ValueId,
    inputs: &[ValueId],
    result_types: &[c4cam_ir::Type],
) -> (OpId, c4cam_ir::BlockId) {
    let mut operands = vec![handle];
    operands.extend_from_slice(inputs);
    let op = b.op_with_regions("cim.execute", &operands, result_types, vec![], 1);
    let body = b.module().add_block(op, 0, &[]);
    (op, body)
}

/// Append a `cim.yield` to an execute body.
pub fn build_yield(m: &mut Module, body: c4cam_ir::BlockId, values: &[ValueId]) {
    let y = m.create_op("cim.yield", values, &[], vec![], 0);
    m.push_op(body, y);
}

/// Build `cim.similarity` with inferred `[nq, k] × 2` results.
pub fn build_similarity(
    b: &mut OpBuilder<'_>,
    metric: &str,
    stored: ValueId,
    query: ValueId,
    k_value: ValueId,
    k_static: i64,
    largest: bool,
) -> (ValueId, ValueId) {
    let query_ty = b.module_ref().value_type(query);
    let q = b
        .module_ref()
        .kind(query_ty)
        .shape()
        .expect("query must be shaped")[0];
    let f32t = b.module().f32_ty();
    let out = b.module().tensor_ty(&[q, k_static], f32t);
    let op = b.op(
        "cim.similarity",
        &[stored, query, k_value],
        &[out, out],
        vec![
            ("metric", metric.into()),
            ("largest", Attribute::Bool(largest)),
            ("k", Attribute::Int(k_static)),
        ],
    );
    (b.module().result(op, 0), b.module().result(op, 1))
}

/// Build a complete function holding a fused similarity kernel — the IR
/// shape `cim-fuse-ops` produces (Fig. 5c) — directly at the `cim`
/// level. Used by drivers/benches that enter the pipeline below torch
/// (e.g. batched KNN, whose torch-level expression is single-query).
///
/// Signature: `(stored [n, dims], queries [nq, dims]) ->
/// (values [nq, k], indices [nq, k])`.
#[allow(clippy::too_many_arguments)] // mirrors the op's attribute list
pub fn build_similarity_kernel(
    m: &mut Module,
    name: &str,
    metric: &str,
    stored_rows: i64,
    dims: i64,
    queries: i64,
    k: i64,
    largest: bool,
) -> OpId {
    let f32t = m.f32_ty();
    let stored_ty = m.tensor_ty(&[stored_rows, dims], f32t);
    let query_ty = m.tensor_ty(&[queries, dims], f32t);
    let out_ty = m.tensor_ty(&[queries, k], f32t);
    let (func, entry) =
        c4cam_ir::builder::build_func(m, name, &[stored_ty, query_ty], &[out_ty, out_ty]);
    let stored = m.block(entry).args[0];
    let query = m.block(entry).args[1];
    let mut b = OpBuilder::at_end(m, entry);
    let k_value = crate::dialects::torch::build_constant_int(&mut b, k);
    let handle = build_acquire(&mut b);
    let (exec, body) = build_execute(&mut b, handle, &[stored, query, k_value], &[out_ty, out_ty]);
    build_release(&mut b, handle);
    let exec_res = [m.result(exec, 0), m.result(exec, 1)];
    let ret = m.create_op("func.return", &exec_res, &[], vec![], 0);
    m.push_op(entry, ret);
    let sim = m.create_op(
        "cim.similarity",
        &[stored, query, k_value],
        &[out_ty, out_ty],
        vec![
            ("metric", metric.into()),
            ("largest", Attribute::Bool(largest)),
            ("k", Attribute::Int(k)),
        ],
        0,
    );
    m.push_op(body, sim);
    let sim_res = m.op(sim).results.clone();
    build_yield(m, body, &sim_res);
    func
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_ir::builder::build_func;
    use c4cam_ir::verify::verify_module;
    use c4cam_ir::Module;

    #[test]
    fn similarity_kernel_builder_verifies() {
        let mut m = Module::new();
        let func = build_similarity_kernel(&mut m, "knn", "eucl", 100, 64, 8, 3, false);
        let mut r = DialectRegistry::new();
        r.allow_unregistered = true;
        register(&mut r);
        crate::dialects::torch::register(&mut r);
        verify_module(&m, &r).unwrap();
        let names: Vec<String> = m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect();
        assert!(names.contains(&"cim.similarity".to_string()));
    }

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.allow_unregistered = true;
        register(&mut r);
        crate::dialects::torch::register(&mut r);
        r
    }

    #[test]
    fn acquire_execute_release_roundtrip() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let t = m.tensor_ty(&[4, 8], f32t);
        let tt = m.tensor_ty(&[8, 4], f32t);
        let (_, entry) = build_func(&mut m, "f", &[t], &[]);
        let arg = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let h = build_acquire(&mut b);
        let (exec, body) = build_execute(&mut b, h, &[arg], &[tt]);
        build_release(&mut b, h);
        b.op("func.return", &[], &[], vec![]);
        // fill execute body
        let tr = m.create_op("cim.transpose", &[arg], &[tt], vec![], 0);
        m.push_op(body, tr);
        let tr_res = m.result(tr, 0);
        build_yield(&mut m, body, &[tr_res]);
        verify_module(&m, &registry()).unwrap();
        assert_eq!(m.op(exec).name, "cim.execute");
    }

    #[test]
    fn execute_yield_arity_mismatch_rejected() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let t = m.tensor_ty(&[4, 8], f32t);
        let (_, entry) = build_func(&mut m, "f", &[t], &[]);
        let arg = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let h = build_acquire(&mut b);
        let (_, body) = build_execute(&mut b, h, &[arg], &[t]);
        b.op("func.return", &[], &[], vec![]);
        build_yield(&mut m, body, &[]); // yields nothing, result expects 1
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("cim.yield"), "{e}");
    }

    #[test]
    fn similarity_builder_and_verifier() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let stored_ty = m.tensor_ty(&[10, 64], f32t);
        let query_ty = m.tensor_ty(&[3, 64], f32t);
        let (_, entry) = build_func(&mut m, "f", &[stored_ty, query_ty], &[]);
        let stored = m.block(entry).args[0];
        let query = m.block(entry).args[1];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let k = crate::dialects::torch::build_constant_int(&mut b, 1);
        let (vals, idx) = build_similarity(&mut b, "dot", stored, query, k, 1, false);
        assert_eq!(m.kind(m.value_type(vals)).shape(), Some(&[3i64, 1][..]));
        assert_eq!(m.kind(m.value_type(idx)).shape(), Some(&[3i64, 1][..]));
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[], &[], vec![]);
        verify_module(&m, &registry()).unwrap();
    }

    #[test]
    fn similarity_rejects_bad_metric_and_dims() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let stored_ty = m.tensor_ty(&[10, 64], f32t);
        let query_ty = m.tensor_ty(&[3, 32], f32t);
        let out = m.tensor_ty(&[3, 1], f32t);
        let (_, entry) = build_func(&mut m, "f", &[stored_ty, query_ty], &[]);
        let stored = m.block(entry).args[0];
        let query = m.block(entry).args[1];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let k = crate::dialects::torch::build_constant_int(&mut b, 1);
        b.op(
            "cim.similarity",
            &[stored, query, k],
            &[out, out],
            vec![
                ("metric", "dot".into()),
                ("largest", Attribute::Bool(false)),
            ],
        );
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("feature dims"), "{e}");
    }

    #[test]
    fn similarity_scores_shape_is_checked() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let stored_ty = m.tensor_ty(&[10, 64], f32t);
        let query_ty = m.tensor_ty(&[3, 64], f32t);
        let bad = m.tensor_ty(&[10, 3], f32t); // transposed
        let (_, entry) = build_func(&mut m, "f", &[stored_ty, query_ty], &[]);
        let stored = m.block(entry).args[0];
        let query = m.block(entry).args[1];
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op(
            "cim.similarity_scores",
            &[stored, query],
            &[bad],
            vec![("metric", "eucl".into())],
        );
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("similarity_scores result"), "{e}");
    }

    #[test]
    fn merge_partial_checks_direction() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let t = m.tensor_ty(&[3, 10], f32t);
        let (_, entry) = build_func(&mut m, "f", &[t, t], &[]);
        let a = m.block(entry).args[0];
        let p = m.block(entry).args[1];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let off = b.const_index(0);
        b.op(
            "cim.merge_partial",
            &[a, p, off],
            &[t],
            vec![("dir", "diagonal".into())],
        );
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("merge direction"), "{e}");
    }
}
