//! `memref` dialect subset: the buffers introduced by bufferization in
//! the `cim`-to-`cam` lowering (paper §III-D2: "The cim to cam
//! conversion pass also performs bufferization of tensors").

use c4cam_ir::verify::{Arity, DialectRegistry, OpSpec};
use c4cam_ir::{Module, OpId, TypeKind, ValueId};

/// Register the `memref` ops.
pub fn register(r: &mut DialectRegistry) {
    r.register(
        OpSpec::new("memref.alloc", "allocate a zero-initialized buffer")
            .operands(Arity::Exact(0))
            .results(Arity::Exact(1))
            .verifier(verify_alloc),
    );
    r.register(
        OpSpec::new(
            "memref.alloc_copy",
            "allocate a buffer holding a tensor copy",
        )
        .operands(Arity::Exact(1))
        .results(Arity::Exact(1))
        .verifier(verify_alloc_copy),
    );
    r.register(
        OpSpec::new("memref.to_tensor", "read a buffer back into a tensor value")
            .operands(Arity::Exact(1))
            .results(Arity::Exact(1))
            .verifier(verify_to_tensor),
    );
}

fn verify_alloc(m: &Module, op: OpId) -> Result<(), String> {
    match m.kind(m.value_type(m.op(op).results[0])) {
        TypeKind::MemRef { .. } => Ok(()),
        _ => Err("memref.alloc result must be a memref".into()),
    }
}

fn verify_alloc_copy(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let src = m.kind(m.value_type(data.operands[0])).clone();
    let dst = m.kind(m.value_type(data.results[0])).clone();
    match (&src, &dst) {
        (
            TypeKind::RankedTensor { shape: s, elem: se },
            TypeKind::MemRef { shape: d, elem: de },
        ) if s == d && se == de => Ok(()),
        _ => Err("alloc_copy must copy tensor<S> into memref<S>".into()),
    }
}

fn verify_to_tensor(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let src = m.kind(m.value_type(data.operands[0])).clone();
    let dst = m.kind(m.value_type(data.results[0])).clone();
    match (&src, &dst) {
        (
            TypeKind::MemRef { shape: s, elem: se },
            TypeKind::RankedTensor { shape: d, elem: de },
        ) if s == d && se == de => Ok(()),
        _ => Err("to_tensor must read memref<S> into tensor<S>".into()),
    }
}

/// Build `memref.alloc` of the given f32 shape.
pub fn build_alloc_f32(b: &mut c4cam_ir::builder::OpBuilder<'_>, shape: &[i64]) -> ValueId {
    let f32t = b.module().f32_ty();
    let ty = b.module().memref_ty(shape, f32t);
    let op = b.op("memref.alloc", &[], &[ty], vec![]);
    b.module().result(op, 0)
}

/// Build `memref.to_tensor`.
pub fn build_to_tensor(b: &mut c4cam_ir::builder::OpBuilder<'_>, buf: ValueId) -> ValueId {
    let buf_ty = b.module_ref().value_type(buf);
    let kind = b.module_ref().kind(buf_ty).clone();
    let (shape, elem) = match kind {
        TypeKind::MemRef { shape, elem } => (shape, elem),
        _ => panic!("build_to_tensor expects a memref value"),
    };
    let ty = b.module().tensor_ty(&shape, elem);
    let op = b.op("memref.to_tensor", &[buf], &[ty], vec![]);
    b.module().result(op, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_ir::builder::{build_func, OpBuilder};
    use c4cam_ir::verify::verify_module;
    use c4cam_ir::Module;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.allow_unregistered = true;
        register(&mut r);
        r
    }

    #[test]
    fn alloc_and_to_tensor_roundtrip_types() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let buf = build_alloc_f32(&mut b, &[10, 16]);
        let t = build_to_tensor(&mut b, buf);
        assert_eq!(m.kind(m.value_type(t)).shape(), Some(&[10i64, 16][..]));
        verify_module(&m, &registry()).unwrap();
    }

    #[test]
    fn alloc_copy_shape_mismatch_rejected() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let src_ty = m.tensor_ty(&[4, 4], f32t);
        let bad = m.memref_ty(&[4, 5], f32t);
        let (_, entry) = build_func(&mut m, "f", &[src_ty], &[]);
        let src = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("memref.alloc_copy", &[src], &[bad], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("alloc_copy"), "{e}");
    }

    #[test]
    fn alloc_result_must_be_memref() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let t = m.tensor_ty(&[2], f32t);
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("memref.alloc", &[], &[t], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("memref"), "{e}");
    }
}
