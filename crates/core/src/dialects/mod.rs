//! Dialect definitions: op specs, builder helpers and verifiers.
//!
//! Each submodule registers its ops into a [`DialectRegistry`];
//! [`standard_registry`] assembles the full C4CAM configuration.

use c4cam_ir::verify::DialectRegistry;

pub mod arith;
pub mod cam;
pub mod cim;
pub mod func;
pub mod memref;
pub mod scf;
pub mod tensor_ops;
pub mod torch;

/// Registry containing every dialect the C4CAM pipeline can produce.
pub fn standard_registry() -> DialectRegistry {
    let mut r = DialectRegistry::new();
    func::register(&mut r);
    arith::register(&mut r);
    scf::register(&mut r);
    tensor_ops::register(&mut r);
    memref::register(&mut r);
    torch::register(&mut r);
    cim::register(&mut r);
    cam::register(&mut r);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_contains_all_dialects() {
        let r = standard_registry();
        for op in [
            "func.func",
            "func.return",
            "arith.constant",
            "scf.for",
            "scf.parallel",
            "scf.yield",
            "tensor.extract_slice",
            "memref.alloc",
            "torch.matmul",
            "torch.topk",
            "cim.execute",
            "cim.similarity",
            "cam.alloc_bank",
            "cam.search",
            "cam.reduce",
        ] {
            assert!(r.spec(op).is_some(), "missing op spec: {op}");
        }
        assert!(r.len() > 40, "expected a rich op set, got {}", r.len());
    }
}
