//! `func` dialect: functions, returns and calls.

use c4cam_ir::verify::{Arity, DialectRegistry, OpSpec};
use c4cam_ir::{Module, OpId, TypeKind};

/// Register the `func` ops.
pub fn register(r: &mut DialectRegistry) {
    r.register(
        OpSpec::new("func.func", "function definition")
            .operands(Arity::Exact(0))
            .results(Arity::Exact(0))
            .regions(Arity::Exact(1))
            .requires_terminator()
            .verifier(verify_func),
    );
    r.register(
        OpSpec::new("func.return", "function terminator")
            .results(Arity::Exact(0))
            .terminator()
            .verifier(verify_return),
    );
    r.register(OpSpec::new("func.call", "direct call").verifier(verify_call));
}

fn verify_func(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.str_attr("sym_name").is_none() {
        return Err("func.func requires a 'sym_name' string attribute".into());
    }
    let fty = data
        .attr("function_type")
        .and_then(|a| a.as_type())
        .ok_or("func.func requires a 'function_type' attribute")?;
    let (inputs, _) = match m.kind(fty) {
        TypeKind::Function { inputs, results } => (inputs.clone(), results.clone()),
        _ => return Err("'function_type' must be a function type".into()),
    };
    let entry = match data.regions[0].first() {
        Some(&b) => b,
        None => return Err("func.func requires an entry block".into()),
    };
    let args = &m.block(entry).args;
    if args.len() != inputs.len() {
        return Err(format!(
            "entry block has {} args but function type has {} inputs",
            args.len(),
            inputs.len()
        ));
    }
    for (i, (&a, &t)) in args.iter().zip(&inputs).enumerate() {
        if m.value_type(a) != t {
            return Err(format!(
                "entry block arg {i} type differs from function type"
            ));
        }
    }
    Ok(())
}

fn verify_return(m: &Module, op: OpId) -> Result<(), String> {
    // Result types must match the enclosing function's result types.
    let block = match m.op(op).parent {
        Some(b) => b,
        None => return Ok(()), // detached; structural checks handle this
    };
    let parent_op = match m.block(block).parent {
        Some((p, _)) => p,
        None => return Err("func.return outside a function".into()),
    };
    if m.op(parent_op).name != "func.func" {
        // Returns may appear in nested regions of other dialect tests.
        return Ok(());
    }
    let fty = match m
        .op(parent_op)
        .attr("function_type")
        .and_then(|a| a.as_type())
    {
        Some(t) => t,
        None => return Ok(()),
    };
    let results = match m.kind(fty) {
        TypeKind::Function { results, .. } => results.clone(),
        _ => return Ok(()),
    };
    let operands = &m.op(op).operands;
    if operands.len() != results.len() {
        return Err(format!(
            "func.return has {} operands but function returns {} values",
            operands.len(),
            results.len()
        ));
    }
    for (i, (&v, &t)) in operands.iter().zip(&results).enumerate() {
        if m.value_type(v) != t {
            return Err(format!("func.return operand {i} type mismatch"));
        }
    }
    Ok(())
}

fn verify_call(m: &Module, op: OpId) -> Result<(), String> {
    if m.op(op).str_attr("callee").is_none() {
        return Err("func.call requires a 'callee' string attribute".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_ir::builder::{build_func, OpBuilder};
    use c4cam_ir::verify::verify_module;
    use c4cam_ir::Module;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.allow_unregistered = true;
        register(&mut r);
        r
    }

    #[test]
    fn well_formed_function_verifies() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let (_, entry) = build_func(&mut m, "f", &[f32t], &[f32t]);
        let arg = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[arg], &[], vec![]);
        verify_module(&m, &registry()).unwrap();
    }

    #[test]
    fn return_arity_mismatch_is_caught() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let (_, entry) = build_func(&mut m, "f", &[f32t], &[f32t]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[], &[], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("operands"), "{e}");
    }

    #[test]
    fn return_type_mismatch_is_caught() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let i64t = m.i64_ty();
        let (_, entry) = build_func(&mut m, "f", &[i64t], &[f32t]);
        let arg = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[arg], &[], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("type mismatch"), "{e}");
    }

    #[test]
    fn func_requires_sym_name_and_type() {
        let mut m = Module::new();
        let func = m.create_op("func.func", &[], &[], vec![], 1);
        let body = m.body();
        m.push_op(body, func);
        m.add_block(func, 0, &[]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("sym_name"), "{e}");
    }

    #[test]
    fn call_requires_callee() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.call", &[], &[], vec![]);
        b.op("func.return", &[], &[], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("callee"), "{e}");
    }
}
