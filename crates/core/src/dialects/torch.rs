//! `torch` dialect: the ATen subset that reaches C4CAM from the
//! TorchScript front end (paper §III-C), including the front-end
//! extensions for the search primitives `norm` and `topk`.

use c4cam_ir::builder::{build_func, OpBuilder};
use c4cam_ir::verify::{Arity, DialectRegistry, OpSpec};
use c4cam_ir::{Attribute, Module, OpId, TypeKind, ValueId};

/// Register the `torch` ops.
pub fn register(r: &mut DialectRegistry) {
    r.register(
        OpSpec::new("torch.constant", "dense tensor literal (weights)")
            .operands(Arity::Exact(0))
            .results(Arity::Exact(1))
            .verifier(verify_constant),
    );
    r.register(
        OpSpec::new("torch.constant_int", "integer literal")
            .operands(Arity::Exact(0))
            .results(Arity::Exact(1))
            .verifier(|m, op| {
                m.op(op)
                    .int_attr("value")
                    .map(|_| ())
                    .ok_or_else(|| "torch.constant_int requires 'value'".to_string())
            }),
    );
    r.register(
        OpSpec::new("torch.transpose", "swap two tensor dimensions")
            .operands(Arity::Exact(1))
            .results(Arity::Exact(1))
            .verifier(verify_transpose),
    );
    r.register(
        OpSpec::new("torch.matmul", "matrix multiplication")
            .operands(Arity::Exact(2))
            .results(Arity::Exact(1))
            .verifier(verify_matmul),
    );
    r.register(
        OpSpec::new("torch.mm", "matrix multiplication (aten.mm)")
            .operands(Arity::Exact(2))
            .results(Arity::Exact(1))
            .verifier(verify_matmul),
    );
    r.register(
        OpSpec::new("torch.sub", "elementwise (broadcasting) subtraction")
            .operands(Arity::Exact(2))
            .results(Arity::Exact(1)),
    );
    r.register(
        OpSpec::new("torch.div", "elementwise (broadcasting) division")
            .operands(Arity::AtLeast(2))
            .results(Arity::Exact(1)),
    );
    r.register(
        OpSpec::new("torch.norm", "row-wise L2 norm (front-end extension)")
            .operands(Arity::Exact(1))
            .results(Arity::Exact(1))
            .verifier(verify_norm),
    );
    r.register(
        OpSpec::new("torch.topk", "top-k selection (front-end extension)")
            .operands(Arity::Exact(2))
            .results(Arity::Exact(2))
            .verifier(verify_topk),
    );
}

fn verify_constant(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let (shape, n) = match data.attr("value") {
        Some(Attribute::Dense { shape, data }) => (shape.clone(), data.len()),
        _ => return Err("torch.constant requires a dense 'value' attribute".into()),
    };
    let expected: i64 = shape.iter().product();
    if expected as usize != n {
        return Err(format!(
            "dense payload has {n} elements but shape {shape:?} needs {expected}"
        ));
    }
    match m.kind(m.value_type(data.results[0])) {
        TypeKind::RankedTensor { shape: s, .. } if *s == shape => Ok(()),
        _ => Err("torch.constant result type must match dense shape".into()),
    }
}

fn verify_transpose(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.int_attr("dim0").is_none() || data.int_attr("dim1").is_none() {
        return Err("torch.transpose requires 'dim0' and 'dim1'".into());
    }
    Ok(())
}

fn verify_matmul(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let a = m.kind(m.value_type(data.operands[0])).clone();
    let b = m.kind(m.value_type(data.operands[1])).clone();
    match (a.shape(), b.shape()) {
        (Some(sa), Some(sb)) if sa.len() == 2 && sb.len() == 2 => {
            if sa[1] != sb[0] {
                return Err(format!(
                    "matmul inner dimensions differ: {} vs {}",
                    sa[1], sb[0]
                ));
            }
            Ok(())
        }
        _ => Err("matmul operands must be rank-2 tensors".into()),
    }
}

fn verify_norm(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let src = m.kind(m.value_type(data.operands[0])).clone();
    if !src.is_shaped() {
        return Err("torch.norm operand must be a tensor".into());
    }
    Ok(())
}

fn verify_topk(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    match m.kind(m.value_type(data.operands[1])) {
        TypeKind::Integer { .. } => {}
        _ => return Err("torch.topk 'k' operand must be an integer".into()),
    }
    if data.attr("largest").and_then(Attribute::as_bool).is_none() {
        return Err("torch.topk requires a boolean 'largest' attribute".into());
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Builders (used by the front end and tests)
// ----------------------------------------------------------------------

/// Build `torch.constant` from a dense f32 payload.
pub fn build_constant(b: &mut OpBuilder<'_>, shape: &[i64], values: Vec<f32>) -> ValueId {
    let f32t = b.module().f32_ty();
    let ty = b.module().tensor_ty(shape, f32t);
    let op = b.op(
        "torch.constant",
        &[],
        &[ty],
        vec![("value", Attribute::dense_f32(shape.to_vec(), values))],
    );
    b.module().result(op, 0)
}

/// Build `torch.constant_int`.
pub fn build_constant_int(b: &mut OpBuilder<'_>, value: i64) -> ValueId {
    let ty = b.module().i64_ty();
    let op = b.op(
        "torch.constant_int",
        &[],
        &[ty],
        vec![("value", Attribute::Int(value))],
    );
    b.module().result(op, 0)
}

/// Build `torch.transpose` swapping the last two dims of a rank-2 tensor.
pub fn build_transpose(b: &mut OpBuilder<'_>, t: ValueId, dim0: i64, dim1: i64) -> ValueId {
    let src_ty = b.module_ref().value_type(t);
    let kind = b.module_ref().kind(src_ty).clone();
    let (shape, elem) = match kind {
        TypeKind::RankedTensor { shape, elem } => (shape, elem),
        _ => panic!("transpose expects tensor"),
    };
    let mut out = shape.clone();
    let rank = shape.len() as i64;
    let d0 = ((dim0 % rank) + rank) % rank;
    let d1 = ((dim1 % rank) + rank) % rank;
    out.swap(d0 as usize, d1 as usize);
    let ty = b.module().tensor_ty(&out, elem);
    let op = b.op(
        "torch.transpose",
        &[t],
        &[ty],
        vec![
            ("dim0", Attribute::Int(dim0)),
            ("dim1", Attribute::Int(dim1)),
        ],
    );
    b.module().result(op, 0)
}

/// Build `torch.matmul` with inferred result type.
pub fn build_matmul(b: &mut OpBuilder<'_>, lhs: ValueId, rhs: ValueId) -> ValueId {
    let lhs_ty = b.module_ref().value_type(lhs);
    let a = b.module_ref().kind(lhs_ty).clone();
    let rhs_ty = b.module_ref().value_type(rhs);
    let c = b.module_ref().kind(rhs_ty).clone();
    let (sa, elem) = match &a {
        TypeKind::RankedTensor { shape, elem } => (shape.clone(), *elem),
        _ => panic!("matmul expects tensors"),
    };
    let sb = c.shape().expect("matmul expects tensors").to_vec();
    let ty = b.module().tensor_ty(&[sa[0], sb[1]], elem);
    let op = b.op("torch.matmul", &[lhs, rhs], &[ty], vec![]);
    b.module().result(op, 0)
}

/// Build `torch.sub` (rhs may broadcast a single row).
pub fn build_sub(b: &mut OpBuilder<'_>, lhs: ValueId, rhs: ValueId) -> ValueId {
    let ty = b.module().value_type(lhs);
    let op = b.op("torch.sub", &[lhs, rhs], &[ty], vec![]);
    b.module().result(op, 0)
}

/// Build `torch.norm` reducing the last dimension (row-wise L2).
pub fn build_norm(b: &mut OpBuilder<'_>, t: ValueId) -> ValueId {
    let src_ty = b.module_ref().value_type(t);
    let kind = b.module_ref().kind(src_ty).clone();
    let (shape, elem) = match kind {
        TypeKind::RankedTensor { shape, elem } => (shape, elem),
        _ => panic!("norm expects tensor"),
    };
    let out: Vec<i64> = shape[..shape.len() - 1].to_vec();
    let ty = b.module().tensor_ty(&out, elem);
    let op = b.op("torch.norm", &[t], &[ty], vec![("dim", Attribute::Int(-1))]);
    b.module().result(op, 0)
}

/// Build `torch.topk` along the last dim. Returns `(values, indices)`.
pub fn build_topk(
    b: &mut OpBuilder<'_>,
    t: ValueId,
    k_value: ValueId,
    k_static: i64,
    largest: bool,
) -> (ValueId, ValueId) {
    let src_ty = b.module_ref().value_type(t);
    let kind = b.module_ref().kind(src_ty).clone();
    let (shape, elem) = match kind {
        TypeKind::RankedTensor { shape, elem } => (shape, elem),
        _ => panic!("topk expects tensor"),
    };
    let out: Vec<i64> = if shape.len() == 1 {
        vec![k_static]
    } else {
        let mut s = shape.clone();
        *s.last_mut().unwrap() = k_static;
        s
    };
    let ty = b.module().tensor_ty(&out, elem);
    let op = b.op(
        "torch.topk",
        &[t, k_value],
        &[ty, ty],
        vec![
            ("largest", Attribute::Bool(largest)),
            ("dim", Attribute::Int(-1)),
            ("sorted", Attribute::Bool(true)),
        ],
    );
    (b.module().result(op, 0), b.module().result(op, 1))
}

// ----------------------------------------------------------------------
// Reference kernel builders (paper Fig. 4 and the KNN motivating kernel)
// ----------------------------------------------------------------------

/// Build the paper's Fig. 4 HDC dot-similarity kernel at torch level:
/// `transpose(weight) → matmul(input, ·) → topk(·, k, largest=false)`.
///
/// `queries` query hypervectors of `dims` dimensions are compared against
/// `classes` stored class hypervectors; returns the `func.func` op.
pub fn build_hdc_dot(m: &mut Module, queries: i64, classes: i64, dims: i64, k: i64) -> OpId {
    // largest=false mirrors the paper's Fig. 4a listing verbatim.
    build_hdc_dot_with(m, queries, classes, dims, k, false)
}

/// [`build_hdc_dot`] with an explicit `largest` flag (classification
/// drivers select the *most* similar prototype, i.e. `largest = true`).
pub fn build_hdc_dot_with(
    m: &mut Module,
    queries: i64,
    classes: i64,
    dims: i64,
    k: i64,
    largest: bool,
) -> OpId {
    let f32t = m.f32_ty();
    let in_ty = m.tensor_ty(&[queries, dims], f32t);
    let w_ty = m.tensor_ty(&[classes, dims], f32t);
    let out_ty = m.tensor_ty(&[queries, k], f32t);
    let (func, entry) = build_func(m, "forward", &[in_ty, w_ty], &[out_ty, out_ty]);
    let input = m.block(entry).args[0];
    let weight = m.block(entry).args[1];
    let mut b = OpBuilder::at_end(m, entry);
    let others = build_transpose(&mut b, weight, -2, -1);
    let mm = build_matmul(&mut b, input, others);
    let kv = build_constant_int(&mut b, k);
    let (vals, idx) = build_topk(&mut b, mm, kv, k, largest);
    b.op("func.return", &[vals, idx], &[], vec![]);
    func
}

/// Build a KNN kernel using the Euclidean-norm pattern (Algorithm 1,
/// line 2): `sub(stored, query) → norm → topk`.
///
/// One query of `dims` features against `patterns` stored rows; returns
/// the `func.func` op.
pub fn build_knn_eucl(m: &mut Module, patterns: i64, dims: i64, k: i64) -> OpId {
    let f32t = m.f32_ty();
    let stored_ty = m.tensor_ty(&[patterns, dims], f32t);
    let query_ty = m.tensor_ty(&[1, dims], f32t);
    let out_ty = m.tensor_ty(&[k], f32t);
    let (func, entry) = build_func(m, "knn", &[stored_ty, query_ty], &[out_ty, out_ty]);
    let stored = m.block(entry).args[0];
    let query = m.block(entry).args[1];
    let mut b = OpBuilder::at_end(m, entry);
    let diff = build_sub(&mut b, stored, query);
    let dist = build_norm(&mut b, diff);
    let kv = build_constant_int(&mut b, k);
    let (vals, idx) = build_topk(&mut b, dist, kv, k, false);
    b.op("func.return", &[vals, idx], &[], vec![]);
    func
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_ir::builder::build_func;
    use c4cam_ir::verify::verify_module;
    use c4cam_ir::Module;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.allow_unregistered = true;
        register(&mut r);
        r
    }

    #[test]
    fn hdc_dot_kernel_builds_and_verifies() {
        let mut m = Module::new();
        let func = build_hdc_dot(&mut m, 10, 10, 8192, 1);
        verify_module(&m, &registry()).unwrap();
        let names: Vec<String> = m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "func.func",
                "torch.transpose",
                "torch.matmul",
                "torch.constant_int",
                "torch.topk",
                "func.return"
            ]
        );
    }

    #[test]
    fn knn_eucl_kernel_builds_and_verifies() {
        let mut m = Module::new();
        let func = build_knn_eucl(&mut m, 64, 128, 5);
        verify_module(&m, &registry()).unwrap();
        let names: Vec<String> = m.walk(func).iter().map(|&o| m.op(o).name.clone()).collect();
        assert!(names.contains(&"torch.sub".to_string()));
        assert!(names.contains(&"torch.norm".to_string()));
        assert!(names.contains(&"torch.topk".to_string()));
    }

    #[test]
    fn constant_payload_must_match_shape() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let ty = m.tensor_ty(&[2, 2], f32t);
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op(
            "torch.constant",
            &[],
            &[ty],
            vec![("value", Attribute::dense_f32(vec![2, 2], vec![1.0]))],
        );
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("elements"), "{e}");
    }

    #[test]
    fn matmul_inner_dim_mismatch_rejected() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let a = m.tensor_ty(&[2, 3], f32t);
        let c = m.tensor_ty(&[4, 2], f32t);
        let r2 = m.tensor_ty(&[2, 2], f32t);
        let (_, entry) = build_func(&mut m, "f", &[a, c], &[]);
        let x = m.block(entry).args[0];
        let y = m.block(entry).args[1];
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("torch.matmul", &[x, y], &[r2], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("inner dimensions"), "{e}");
    }

    #[test]
    fn topk_requires_largest_attr() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let t = m.tensor_ty(&[4, 4], f32t);
        let (_, entry) = build_func(&mut m, "f", &[t], &[]);
        let x = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let k = build_constant_int(&mut b, 1);
        let o = m.tensor_ty(&[4, 1], f32t);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("torch.topk", &[x, k], &[o, o], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("largest"), "{e}");
    }

    #[test]
    fn transpose_negative_dims_infer_shape() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let t = m.tensor_ty(&[10, 8192], f32t);
        let (_, entry) = build_func(&mut m, "f", &[t], &[]);
        let x = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let y = build_transpose(&mut b, x, -2, -1);
        assert_eq!(m.kind(m.value_type(y)).shape(), Some(&[8192i64, 10][..]));
    }
}
