//! `arith` dialect: constants and the scalar/index arithmetic the
//! mapping passes generate for offset computations.

use c4cam_ir::verify::{Arity, DialectRegistry, OpSpec};
use c4cam_ir::{Attribute, Module, OpId};

/// Register the `arith` ops.
pub fn register(r: &mut DialectRegistry) {
    r.register(
        OpSpec::new("arith.constant", "compile-time constant")
            .operands(Arity::Exact(0))
            .results(Arity::Exact(1))
            .verifier(verify_constant),
    );
    for name in [
        "arith.addi",
        "arith.subi",
        "arith.muli",
        "arith.divui",
        "arith.remui",
        "arith.minui",
        "arith.maxui",
    ] {
        r.register(
            OpSpec::new(binary_name(name), "integer/index binary arithmetic")
                .operands(Arity::Exact(2))
                .results(Arity::Exact(1))
                .verifier(verify_same_type_binary),
        );
    }
    r.register(
        OpSpec::new("arith.cmpi", "integer comparison")
            .operands(Arity::Exact(2))
            .results(Arity::Exact(1))
            .verifier(verify_cmpi),
    );
    for name in ["arith.addf", "arith.subf", "arith.mulf", "arith.divf"] {
        r.register(
            OpSpec::new(binary_name(name), "float binary arithmetic")
                .operands(Arity::Exact(2))
                .results(Arity::Exact(1))
                .verifier(verify_same_type_binary),
        );
    }
    r.register(
        OpSpec::new("arith.index_cast", "index <-> integer cast")
            .operands(Arity::Exact(1))
            .results(Arity::Exact(1)),
    );
}

/// Map a runtime string to its registered `&'static str` name.
fn binary_name(name: &str) -> &'static str {
    match name {
        "arith.addi" => "arith.addi",
        "arith.subi" => "arith.subi",
        "arith.muli" => "arith.muli",
        "arith.divui" => "arith.divui",
        "arith.remui" => "arith.remui",
        "arith.minui" => "arith.minui",
        "arith.maxui" => "arith.maxui",
        "arith.addf" => "arith.addf",
        "arith.subf" => "arith.subf",
        "arith.mulf" => "arith.mulf",
        "arith.divf" => "arith.divf",
        _ => unreachable!("unknown arith op {name}"),
    }
}

fn verify_constant(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    match data.attr("value") {
        Some(Attribute::Int(_))
        | Some(Attribute::Float(_))
        | Some(Attribute::Dense { .. })
        | Some(Attribute::Bool(_)) => Ok(()),
        Some(_) => Err("arith.constant 'value' must be int, float, bool or dense".into()),
        None => Err("arith.constant requires a 'value' attribute".into()),
    }
}

fn verify_same_type_binary(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let lhs = m.value_type(data.operands[0]);
    let rhs = m.value_type(data.operands[1]);
    let res = m.value_type(data.results[0]);
    if lhs != rhs || lhs != res {
        return Err("binary arith op requires matching operand/result types".into());
    }
    Ok(())
}

fn verify_cmpi(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let pred = data
        .str_attr("predicate")
        .ok_or("arith.cmpi requires a 'predicate' attribute")?;
    match pred {
        "eq" | "ne" | "slt" | "sle" | "sgt" | "sge" | "ult" | "ule" | "ugt" | "uge" => Ok(()),
        other => Err(format!("unknown cmpi predicate '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_ir::builder::{build_func, OpBuilder};
    use c4cam_ir::verify::verify_module;
    use c4cam_ir::Module;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.allow_unregistered = true;
        register(&mut r);
        r
    }

    #[test]
    fn constants_and_arith_verify() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c1 = b.const_index(4);
        let c2 = b.const_index(8);
        let idx = b.module().index_ty();
        b.op("arith.addi", &[c1, c2], &[idx], vec![]);
        b.op("arith.muli", &[c1, c2], &[idx], vec![]);
        b.op("arith.divui", &[c2, c1], &[idx], vec![]);
        b.op("arith.remui", &[c2, c1], &[idx], vec![]);
        verify_module(&m, &registry()).unwrap();
    }

    #[test]
    fn mixed_type_binary_is_rejected() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c1 = b.const_index(4);
        let c2 = b.const_i64(8);
        let idx = b.module().index_ty();
        b.op("arith.addi", &[c1, c2], &[idx], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("matching"), "{e}");
    }

    #[test]
    fn constant_requires_value() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let idx = m.index_ty();
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("arith.constant", &[], &[idx], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("value"), "{e}");
    }

    #[test]
    fn cmpi_validates_predicate() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c1 = b.const_index(4);
        let i1 = b.module().i1_ty();
        b.op(
            "arith.cmpi",
            &[c1, c1],
            &[i1],
            vec![("predicate", "weird".into())],
        );
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("predicate"), "{e}");
    }
}
