//! `scf` dialect: structured control flow. The `cam-map` pass expresses
//! its mapping policy with these loops — `scf.parallel` over hardware
//! units that operate concurrently, `scf.for` over units activated
//! sequentially (paper Fig. 6).

use c4cam_ir::verify::{Arity, DialectRegistry, OpSpec};
use c4cam_ir::{Attribute, BlockId, Module, OpId, TypeKind, ValueId};

/// Register the `scf` ops.
pub fn register(r: &mut DialectRegistry) {
    r.register(
        OpSpec::new("scf.for", "sequential counted loop with iter-args")
            .operands(Arity::AtLeast(3))
            .regions(Arity::Exact(1))
            .requires_terminator()
            .verifier(verify_for),
    );
    r.register(
        OpSpec::new("scf.parallel", "parallel counted loop")
            .operands(Arity::Exact(3))
            .results(Arity::Exact(0))
            .regions(Arity::Exact(1))
            .requires_terminator()
            .verifier(verify_parallel),
    );
    r.register(
        OpSpec::new("scf.yield", "loop yield terminator")
            .results(Arity::Exact(0))
            .terminator(),
    );
    r.register(
        OpSpec::new("scf.if", "conditional execution (no results)")
            .operands(Arity::Exact(1))
            .results(Arity::Exact(0))
            .regions(Arity::AtLeast(1))
            .requires_terminator(),
    );
}

fn is_index(m: &Module, v: ValueId) -> bool {
    matches!(m.kind(m.value_type(v)), TypeKind::Index)
}

fn verify_for(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    for i in 0..3 {
        if !is_index(m, data.operands[i]) {
            return Err(format!("scf.for bound {i} must be index-typed"));
        }
    }
    let n_iter = data.operands.len() - 3;
    if data.results.len() != n_iter {
        return Err(format!(
            "scf.for carries {n_iter} iter-args but has {} results",
            data.results.len()
        ));
    }
    let block = data.regions[0]
        .first()
        .copied()
        .ok_or("scf.for requires a body block")?;
    let args = &m.block(block).args;
    if args.len() != n_iter + 1 {
        return Err(format!(
            "scf.for body must take [iv, {n_iter} iter-args], has {}",
            args.len()
        ));
    }
    if !is_index(m, args[0]) {
        return Err("scf.for induction variable must be index-typed".into());
    }
    for i in 0..n_iter {
        let init_ty = m.value_type(data.operands[3 + i]);
        if m.value_type(args[1 + i]) != init_ty {
            return Err(format!("scf.for iter-arg {i} type mismatch with init"));
        }
        if m.value_type(data.results[i]) != init_ty {
            return Err(format!("scf.for result {i} type mismatch with init"));
        }
    }
    // Body must end in scf.yield carrying the iter values.
    if let Some(&last) = m.block(block).ops.last() {
        let term = m.op(last);
        if term.name != "scf.yield" {
            return Err("scf.for body must end with scf.yield".into());
        }
        if term.operands.len() != n_iter {
            return Err(format!(
                "scf.for yield must carry {n_iter} values, has {}",
                term.operands.len()
            ));
        }
    }
    Ok(())
}

fn verify_parallel(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    for i in 0..3 {
        if !is_index(m, data.operands[i]) {
            return Err(format!("scf.parallel bound {i} must be index-typed"));
        }
    }
    let block = data.regions[0]
        .first()
        .copied()
        .ok_or("scf.parallel requires a body block")?;
    let args = &m.block(block).args;
    if args.len() != 1 || !is_index(m, args[0]) {
        return Err("scf.parallel body must take exactly one index iv".into());
    }
    if let Some(&last) = m.block(block).ops.last() {
        let term = m.op(last);
        if term.name != "scf.yield" || !term.operands.is_empty() {
            return Err("scf.parallel body must end with an empty scf.yield".into());
        }
    }
    Ok(())
}

/// Build an `scf.for` (no iter-args): returns `(loop_op, body_block, iv)`.
/// The body is created *without* a terminator; the caller fills it and
/// must append `scf.yield` (see [`end_body`]).
pub fn build_for(
    b: &mut c4cam_ir::builder::OpBuilder<'_>,
    lb: ValueId,
    ub: ValueId,
    step: ValueId,
) -> (OpId, BlockId, ValueId) {
    let op = b.op_with_regions("scf.for", &[lb, ub, step], &[], vec![], 1);
    let idx = b.module().index_ty();
    let body = b.module().add_block(op, 0, &[idx]);
    let iv = b.module().block(body).args[0];
    (op, body, iv)
}

/// Build an `scf.for` with iter-args: returns
/// `(loop_op, body_block, iv, carried_args)`.
pub fn build_for_iter(
    b: &mut c4cam_ir::builder::OpBuilder<'_>,
    lb: ValueId,
    ub: ValueId,
    step: ValueId,
    inits: &[ValueId],
) -> (OpId, BlockId, ValueId, Vec<ValueId>) {
    let mut operands = vec![lb, ub, step];
    operands.extend_from_slice(inits);
    let result_tys: Vec<_> = inits.iter().map(|&v| b.module().value_type(v)).collect();
    let op = b.op_with_regions("scf.for", &operands, &result_tys, vec![], 1);
    let idx = b.module().index_ty();
    let mut arg_tys = vec![idx];
    arg_tys.extend(result_tys.iter().copied());
    let body = b.module().add_block(op, 0, &arg_tys);
    let args = b.module().block(body).args.clone();
    (op, body, args[0], args[1..].to_vec())
}

/// Build an `scf.parallel`: returns `(loop_op, body_block, iv)`.
pub fn build_parallel(
    b: &mut c4cam_ir::builder::OpBuilder<'_>,
    lb: ValueId,
    ub: ValueId,
    step: ValueId,
) -> (OpId, BlockId, ValueId) {
    let op = b.op_with_regions("scf.parallel", &[lb, ub, step], &[], vec![], 1);
    let idx = b.module().index_ty();
    let body = b.module().add_block(op, 0, &[idx]);
    let iv = b.module().block(body).args[0];
    (op, body, iv)
}

/// Append the `scf.yield` terminator carrying `values` to `body`.
pub fn end_body(m: &mut Module, body: BlockId, values: &[ValueId]) {
    let y = m.create_op("scf.yield", values, &[], vec![], 0);
    m.push_op(body, y);
}

/// Read the constant trip parameters of a loop whose bounds come from
/// `arith.constant` ops. Returns `(lb, ub, step)`.
pub fn const_bounds(m: &Module, op: OpId) -> Option<(i64, i64, i64)> {
    let data = m.op(op);
    let mut out = [0i64; 3];
    for (slot, &v) in out.iter_mut().zip(&data.operands) {
        let def = match m.value(v).def {
            c4cam_ir::ValueDef::OpResult { op, .. } => op,
            _ => return None,
        };
        let d = m.op(def);
        if d.name != "arith.constant" {
            return None;
        }
        *slot = match d.attr("value") {
            Some(Attribute::Int(x)) => *x,
            _ => return None,
        };
    }
    Some((out[0], out[1], out[2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_ir::builder::{build_func, OpBuilder};
    use c4cam_ir::verify::verify_module;
    use c4cam_ir::Module;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.allow_unregistered = true;
        register(&mut r);
        crate::dialects::arith::register(&mut r);
        r
    }

    #[test]
    fn build_for_produces_valid_loop() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let lb = b.const_index(0);
        let ub = b.const_index(8192);
        let step = b.const_index(32);
        let (loop_op, body, _iv) = build_for(&mut b, lb, ub, step);
        end_body(&mut m, body, &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[], &[], vec![]);
        verify_module(&m, &registry()).unwrap();
        assert_eq!(const_bounds(&m, loop_op), Some((0, 8192, 32)));
    }

    #[test]
    fn for_with_iter_args_verifies_and_checks_yield() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let acc_ty = m.tensor_ty(&[4, 4], f32t);
        let (_, entry) = build_func(&mut m, "f", &[acc_ty], &[]);
        let init = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let step = b.const_index(1);
        let (_, body, _iv, carried) = build_for_iter(&mut b, lb, ub, step, &[init]);
        end_body(&mut m, body, &[carried[0]]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[], &[], vec![]);
        verify_module(&m, &registry()).unwrap();
    }

    #[test]
    fn for_missing_yield_values_is_rejected() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let acc_ty = m.tensor_ty(&[4, 4], f32t);
        let (_, entry) = build_func(&mut m, "f", &[acc_ty], &[]);
        let init = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let step = b.const_index(1);
        let (_, body, _, _) = build_for_iter(&mut b, lb, ub, step, &[init]);
        end_body(&mut m, body, &[]); // should carry 1 value
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[], &[], vec![]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("yield"), "{e}");
    }

    #[test]
    fn parallel_loop_verifies() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let step = b.const_index(1);
        let (_, body, _) = build_parallel(&mut b, lb, ub, step);
        end_body(&mut m, body, &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[], &[], vec![]);
        verify_module(&m, &registry()).unwrap();
    }

    #[test]
    fn non_index_bounds_are_rejected() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let lb = b.const_i64(0);
        let ub = b.const_i64(4);
        let step = b.const_i64(1);
        let op = b.op_with_regions("scf.parallel", &[lb, ub, step], &[], vec![], 1);
        let idx = m.index_ty();
        let body = m.add_block(op, 0, &[idx]);
        end_body(&mut m, body, &[]);
        let e = verify_module(&m, &registry()).unwrap_err();
        assert!(e.message.contains("index"), "{e}");
    }

    #[test]
    fn const_bounds_returns_none_for_dynamic() {
        let mut m = Module::new();
        let idx = m.index_ty();
        let (_, entry) = build_func(&mut m, "f", &[idx], &[]);
        let dynamic = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let lb = b.const_index(0);
        let step = b.const_index(1);
        let (loop_op, body, _) = build_parallel(&mut b, lb, dynamic, step);
        end_body(&mut m, body, &[]);
        assert_eq!(const_bounds(&m, loop_op), None);
    }
}
