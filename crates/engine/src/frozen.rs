//! `Send`-able snapshots of the VM slot file.
//!
//! Runtime [`Value`]s hold buffers as `Rc<RefCell<Tensor>>`, which
//! cannot cross threads. A [`Frozen`] value is the same payload with
//! buffers flattened to owned tensors; worker shards thaw a snapshot
//! into a private slot file (each buffer becomes a fresh, unshared
//! `Rc`), run, and freeze again for the merge step.

use c4cam_runtime::{Handle, Value};
use c4cam_tensor::Tensor;

/// One slot's payload, detached from any shared state.
#[derive(Debug, Clone)]
pub(crate) enum Frozen {
    /// Immutable tensor.
    Tensor(Tensor),
    /// Buffer contents (identity is re-established on thaw).
    Buffer(Tensor),
    /// `index` integer.
    Index(i64),
    /// Fixed-width integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Float scalar.
    Float(f64),
    /// CAM hierarchy handle.
    Handle(Handle),
    /// Host-path device token.
    Token(i64),
}

pub(crate) fn freeze(v: &Value) -> Frozen {
    match v {
        Value::Tensor(t) => Frozen::Tensor(t.clone()),
        Value::Buffer(b) => Frozen::Buffer(b.borrow().clone()),
        Value::Index(v) => Frozen::Index(*v),
        Value::Int(v) => Frozen::Int(*v),
        Value::Bool(v) => Frozen::Bool(*v),
        Value::Float(v) => Frozen::Float(*v),
        Value::Handle(h) => Frozen::Handle(*h),
        Value::DeviceToken(t) => Frozen::Token(*t),
    }
}

pub(crate) fn thaw(f: &Frozen) -> Value {
    match f {
        Frozen::Tensor(t) => Value::Tensor(t.clone()),
        Frozen::Buffer(t) => Value::buffer_from(t.clone()),
        Frozen::Index(v) => Value::Index(*v),
        Frozen::Int(v) => Value::Int(*v),
        Frozen::Bool(v) => Value::Bool(*v),
        Frozen::Float(v) => Value::Float(*v),
        Frozen::Handle(h) => Value::Handle(*h),
        Frozen::Token(t) => Value::DeviceToken(*t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_thaw_round_trips_buffers_without_sharing() {
        let original = Value::buffer_from(Tensor::from_slice(&[1.0, 2.0]));
        let frozen = freeze(&original);
        let thawed = thaw(&frozen);
        if let Value::Buffer(b) = &thawed {
            b.borrow_mut().data_mut()[0] = 9.0;
        }
        // The original buffer is untouched: thaw created a fresh Rc.
        assert_eq!(original.snapshot_tensor().unwrap().data(), &[1.0, 2.0]);
        assert_eq!(thawed.snapshot_tensor().unwrap().data(), &[9.0, 2.0]);
    }

    #[test]
    fn frozen_values_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Frozen>();
    }
}
