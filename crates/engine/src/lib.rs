//! # c4cam-engine — flat CAM-ISA tape compiler and execution engine
//!
//! The paper's point is that CAM workloads become a small, regular
//! instruction stream once lowering is done. This crate grows the final
//! stage of that stack: it compiles a fully lowered cam-level
//! [`Module`](c4cam_ir::Module) into a flat instruction tape — a
//! `Vec<Inst>` over a compact CAM-ISA with pre-resolved search specs,
//! declared shapes, and dense value slots — plus a register-machine VM
//! that executes the tape against a
//! [`CamMachine`](c4cam_camsim::CamMachine) without ever re-walking IR
//! trees, string-matching op names, or hashing value ids.
//!
//! Two execution modes:
//!
//! * [`Tape::run`] — single-threaded. Drives the machine in exactly the
//!   tree-walking interpreter's call order, so outputs **and**
//!   energy/latency statistics are bit-identical to
//!   [`c4cam_runtime::Executor`] (the walker is kept as the reference
//!   oracle).
//! * [`Tape::run_batched`] — sharded. The compiler detects the
//!   sequential query loop whose iterations are independent (they
//!   scatter into disjoint accumulator rows keyed by the induction
//!   variable); the batch executor runs contiguous iteration shards on
//!   `std::thread` workers, each with its own machine clone, and merges
//!   buffers and per-shard [`ExecStats`](c4cam_camsim::ExecStats)
//!   deterministically. Outputs stay bit-identical; latency/energy
//!   totals agree with the sequential run up to float summation order.
//!
//! ## Example
//!
//! ```
//! use c4cam_arch::ArchSpec;
//! use c4cam_camsim::CamMachine;
//! use c4cam_core::{dialects::torch, pipeline::C4camPipeline};
//! use c4cam_engine::Tape;
//! use c4cam_ir::Module;
//! use c4cam_runtime::Value;
//! use c4cam_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Module::new();
//! torch::build_hdc_dot(&mut m, 1, 2, 8, 1);
//! let spec = ArchSpec::builder().subarray(16, 16).hierarchy(2, 2, 2).build()?;
//! let compiled = C4camPipeline::new(spec.clone()).compile(m)?;
//!
//! let tape = Tape::compile(&compiled.module, "forward")?;
//! let mut machine = CamMachine::new(&spec);
//! let stored = Tensor::from_vec(vec![2, 8], vec![1.0; 16])?;
//! let query = Tensor::from_vec(vec![1, 8], vec![1.0; 8])?;
//! let out = tape.run(&mut machine, &[Value::Tensor(query), Value::Tensor(stored)])?;
//! assert_eq!(out.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod batch;
mod compile;
mod error;
mod frozen;
pub mod isa;
mod opt;
pub mod pool;
pub mod trace;
mod vm;

pub use c4cam_faults::{RetryPolicy, ShardChaos};
pub use compile::Tape;
pub use error::{EngineError, ShardPanic};
pub use isa::{Inst, QueryLoop};
pub use pool::pooled_workers;
pub use trace::{Trace, TraceOp};
pub use vm::TapeVm;

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_arch::{ArchSpec, Optimization};
    use c4cam_camsim::CamMachine;
    use c4cam_core::dialects::{cim, torch};
    use c4cam_core::pipeline::C4camPipeline;
    use c4cam_ir::Module;
    use c4cam_runtime::{Executor, Value};
    use c4cam_tensor::Tensor;

    fn spec(n: usize, opt: Optimization) -> ArchSpec {
        ArchSpec::builder()
            .subarray(n, n)
            .hierarchy(2, 2, 4)
            .optimization(opt)
            .build()
            .unwrap()
    }

    fn hdc_inputs(nq: usize, classes: usize, dims: usize) -> (Tensor, Tensor) {
        let mut stored = Vec::with_capacity(classes * dims);
        for c in 0..classes {
            for d in 0..dims {
                stored.push(f32::from(u8::from((d + c) % 3 == 0)));
            }
        }
        let mut queries = Vec::with_capacity(nq * dims);
        for q in 0..nq {
            for d in 0..dims {
                let base = u8::from((d + (q % classes)).is_multiple_of(3));
                let flip = u8::from(d % 31 == q);
                queries.push(f32::from(base ^ flip));
            }
        }
        (
            Tensor::from_vec(vec![classes, dims], stored).unwrap(),
            Tensor::from_vec(vec![nq, dims], queries).unwrap(),
        )
    }

    fn assert_outputs_equal(a: &[Value], b: &[Value], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: result arity");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.snapshot_tensor().unwrap().data(),
                y.snapshot_tensor().unwrap().data(),
                "{what}: result {i} diverged"
            );
        }
    }

    #[test]
    fn tape_matches_walker_bit_for_bit_including_stats() {
        for opt in [
            Optimization::Base,
            Optimization::Power,
            Optimization::Density,
            Optimization::PowerDensity,
        ] {
            let mut m = Module::new();
            torch::build_hdc_dot_with(&mut m, 3, 5, 200, 1, true);
            let (stored, queries) = hdc_inputs(3, 5, 200);
            let args = [Value::Tensor(queries), Value::Tensor(stored)];
            let s = spec(16, opt);
            let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();

            let mut walk_machine = CamMachine::new(&s);
            let walk_out = Executor::with_machine(&compiled.module, &mut walk_machine)
                .run("forward", &args)
                .unwrap();

            let tape = Tape::compile(&compiled.module, "forward").unwrap();
            let mut tape_machine = CamMachine::new(&s);
            let tape_out = tape.run(&mut tape_machine, &args).unwrap();

            assert_outputs_equal(&walk_out, &tape_out, &format!("{opt:?}"));
            assert_eq!(
                walk_machine.stats(),
                tape_machine.stats(),
                "stats diverged under {opt:?}"
            );
            assert_eq!(walk_machine.phases(), tape_machine.phases());
        }
    }

    #[test]
    fn batched_execution_matches_sequential_outputs() {
        let mut m = Module::new();
        cim::build_similarity_kernel(&mut m, "knn", "eucl", 40, 96, 8, 2, false);
        let mut stored = Vec::new();
        for p in 0..40 {
            for d in 0..96 {
                stored.push(f32::from(u8::from((d * 5 + p * 11) % 7 < 3)));
            }
        }
        let stored = Tensor::from_vec(vec![40, 96], stored).unwrap();
        let queries = stored.slice2d(4, 0, 8, 96).unwrap();
        let args = [Value::Tensor(stored), Value::Tensor(queries)];
        let s = spec(16, Optimization::Base);
        let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
        let tape = Tape::compile(&compiled.module, "knn").unwrap();
        assert!(tape.query_loop().is_some());

        let mut seq_machine = CamMachine::new(&s);
        let seq_out = tape.run(&mut seq_machine, &args).unwrap();
        for threads in [2, 3, 8] {
            let mut par_machine = CamMachine::new(&s);
            let par_out = tape.run_batched(&mut par_machine, &args, threads).unwrap();
            assert_outputs_equal(&seq_out, &par_out, &format!("threads={threads}"));
            let seq = seq_machine.stats();
            let par = par_machine.stats();
            assert_eq!(seq.search_ops, par.search_ops);
            assert_eq!(seq.read_ops, par.read_ops);
            assert_eq!(seq.merge_ops, par.merge_ops);
            assert_eq!(seq.write_ops, par.write_ops);
            assert!(
                (seq.latency_ns - par.latency_ns).abs() <= 1e-6 * seq.latency_ns.abs(),
                "latency diverged: {} vs {}",
                seq.latency_ns,
                par.latency_ns
            );
            assert!(
                (seq.total_energy_fj() - par.total_energy_fj()).abs()
                    <= 1e-6 * seq.total_energy_fj(),
                "energy diverged"
            );
        }
    }

    #[test]
    fn single_query_workload_shards_within_the_query() {
        // nq = 1: the query loop has one iteration, so run_batched must
        // fan the parallel subarray-group loops across workers instead.
        let mut m = Module::new();
        torch::build_hdc_dot_with(&mut m, 1, 6, 512, 1, true);
        let (stored, queries) = hdc_inputs(1, 6, 512);
        let args = [Value::Tensor(queries), Value::Tensor(stored)];
        let s = spec(16, Optimization::Base);
        let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
        let tape = Tape::compile(&compiled.module, "forward").unwrap();
        assert!(
            !tape.shard_loops().is_empty(),
            "query nest parallel loops must be marked shardable"
        );

        let mut seq_machine = CamMachine::new(&s);
        let seq_out = tape.run(&mut seq_machine, &args).unwrap();
        for threads in [2, 3, 8] {
            let mut par_machine = CamMachine::new(&s);
            let par_out = tape.run_batched(&mut par_machine, &args, threads).unwrap();
            assert_outputs_equal(
                &seq_out,
                &par_out,
                &format!("intra-query threads={threads}"),
            );
            let seq = seq_machine.stats();
            let par = par_machine.stats();
            assert_eq!(seq.search_ops, par.search_ops);
            assert_eq!(seq.searched_words, par.searched_words);
            assert_eq!(seq.read_ops, par.read_ops);
            assert_eq!(seq.merge_ops, par.merge_ops);
            // The parallel timing scope folds as max, which is
            // order-independent — latency stays bit-identical.
            assert_eq!(
                seq.latency_ns.to_bits(),
                par.latency_ns.to_bits(),
                "latency diverged: {} vs {}",
                seq.latency_ns,
                par.latency_ns
            );
            assert!(
                (seq.total_energy_fj() - par.total_energy_fj()).abs()
                    <= 1e-6 * seq.total_energy_fj(),
                "energy diverged"
            );
        }
    }

    #[test]
    fn single_query_knn_shards_within_the_query() {
        // Euclidean single-query retrieval across multiple row groups
        // and column chunks: the merges of different subarray groups
        // accumulate into *shared* score elements, which exercises the
        // merge-replay protocol.
        let mut m = Module::new();
        cim::build_similarity_kernel(&mut m, "knn", "eucl", 50, 96, 1, 2, false);
        let mut stored = Vec::new();
        for p in 0..50 {
            for d in 0..96 {
                stored.push(((d * 5 + p * 11) % 7) as f32 * 0.25);
            }
        }
        let stored = Tensor::from_vec(vec![50, 96], stored).unwrap();
        let queries = stored.slice2d(10, 0, 1, 96).unwrap();
        let args = [Value::Tensor(stored), Value::Tensor(queries)];
        let s = spec(16, Optimization::Base);
        let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
        let tape = Tape::compile(&compiled.module, "knn").unwrap();
        assert!(!tape.shard_loops().is_empty());

        let mut seq_machine = CamMachine::new(&s);
        let seq_out = tape.run(&mut seq_machine, &args).unwrap();
        let mut par_machine = CamMachine::new(&s);
        let par_out = tape.run_batched(&mut par_machine, &args, 4).unwrap();
        assert_outputs_equal(&seq_out, &par_out, "intra-query knn");
        assert_eq!(
            seq_machine.stats().latency_ns.to_bits(),
            par_machine.stats().latency_ns.to_bits()
        );
    }

    #[test]
    fn setup_loops_are_not_marked_shardable() {
        let mut m = Module::new();
        torch::build_hdc_dot_with(&mut m, 2, 4, 64, 1, true);
        let s = spec(16, Optimization::Base);
        let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
        let tape = Tape::compile(&compiled.module, "forward").unwrap();
        for &enter in tape.shard_loops() {
            let Inst::LoopEnter { exit, .. } = tape.insts[enter] else {
                panic!("shard loop pc {enter} is not a LoopEnter");
            };
            let body = &tape.insts[enter + 1..exit - 1];
            assert!(
                !body
                    .iter()
                    .any(|i| matches!(i, Inst::WriteValue { .. } | Inst::AllocSubarray { .. })),
                "setup instructions inside a shardable loop"
            );
            assert!(body.iter().any(|i| matches!(i, Inst::Search(_))));
        }
    }

    #[test]
    fn batched_with_one_thread_falls_back_to_sequential() {
        let mut m = Module::new();
        torch::build_hdc_dot_with(&mut m, 2, 4, 64, 1, true);
        let (stored, queries) = hdc_inputs(2, 4, 64);
        let args = [Value::Tensor(queries), Value::Tensor(stored)];
        let s = spec(16, Optimization::Base);
        let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
        let tape = Tape::compile(&compiled.module, "forward").unwrap();

        let mut a = CamMachine::new(&s);
        let out_a = tape.run(&mut a, &args).unwrap();
        let mut b = CamMachine::new(&s);
        let out_b = tape.run_batched(&mut b, &args, 1).unwrap();
        assert_outputs_equal(&out_a, &out_b, "threads=1");
        assert_eq!(a.stats(), b.stats());
    }

    fn knn_tape_and_args() -> (Tape, [Value; 2], ArchSpec) {
        let mut m = Module::new();
        cim::build_similarity_kernel(&mut m, "knn", "eucl", 40, 96, 8, 2, false);
        let mut stored = Vec::new();
        for p in 0..40 {
            for d in 0..96 {
                stored.push(f32::from(u8::from((d * 5 + p * 11) % 7 < 3)));
            }
        }
        let stored = Tensor::from_vec(vec![40, 96], stored).unwrap();
        let queries = stored.slice2d(4, 0, 8, 96).unwrap();
        let args = [Value::Tensor(stored), Value::Tensor(queries)];
        let s = spec(16, Optimization::Base);
        let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
        let tape = Tape::compile(&compiled.module, "knn").unwrap();
        (tape, args, s)
    }

    #[test]
    fn panicked_shard_workers_retry_and_recover() {
        use c4cam_telemetry::Telemetry;
        let (tape, args, s) = knn_tape_and_args();
        let mut seq_machine = CamMachine::new(&s);
        let seq_out = tape.run(&mut seq_machine, &args).unwrap();

        // One injected panic, one retry permitted: the retried worker
        // succeeds and the run is bit-identical to sequential.
        let chaos = ShardChaos {
            shard: 1,
            fail_attempts: 1,
        };
        let mut m1 = CamMachine::new(&s);
        let out = tape
            .run_batched_resilient(
                &mut m1,
                &args,
                4,
                &Telemetry::default(),
                &RetryPolicy::default(),
                Some(chaos),
            )
            .unwrap();
        assert_outputs_equal(&seq_out, &out, "retry recovers");
        assert_eq!(seq_machine.stats().search_ops, m1.stats().search_ops);

        // Panics outlasting every retry degrade to a sequential
        // fallback on the calling thread — still bit-identical.
        let stubborn = ShardChaos {
            shard: 0,
            fail_attempts: u32::MAX,
        };
        let mut m2 = CamMachine::new(&s);
        let out = tape
            .run_batched_resilient(
                &mut m2,
                &args,
                4,
                &Telemetry::default(),
                &RetryPolicy::default(),
                Some(stubborn),
            )
            .unwrap();
        assert_outputs_equal(&seq_out, &out, "sequential fallback");

        // With the fallback disabled, the failure surfaces as a
        // structured ShardPanic instead of a bare message.
        let no_fallback = RetryPolicy {
            max_retries: 2,
            attempt_timeout: None,
            fallback_sequential: false,
        };
        let mut m3 = CamMachine::new(&s);
        let err = tape
            .run_batched_resilient(
                &mut m3,
                &args,
                4,
                &Telemetry::default(),
                &no_fallback,
                Some(stubborn),
            )
            .unwrap_err();
        assert!(err.message.contains("shard 0"), "{err}");
        let panic = err.shard_panic.expect("structured shard panic");
        assert_eq!(panic.shard, 0);
        assert_eq!(panic.attempts, 3, "initial attempt + 2 retries");
        assert!(panic.payload.contains("chaos"), "{}", panic.payload);
    }

    #[test]
    fn intra_query_shard_panic_degrades_to_sequential() {
        use c4cam_telemetry::Telemetry;
        // nq = 1 forces intra-query sharding; chaos panics one worker
        // and the VM must redo the loop sequentially, bit-identically.
        let mut m = Module::new();
        torch::build_hdc_dot_with(&mut m, 1, 6, 512, 1, true);
        let (stored, queries) = hdc_inputs(1, 6, 512);
        let args = [Value::Tensor(queries), Value::Tensor(stored)];
        let s = spec(16, Optimization::Base);
        let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
        let tape = Tape::compile(&compiled.module, "forward").unwrap();

        let mut seq_machine = CamMachine::new(&s);
        let seq_out = tape.run(&mut seq_machine, &args).unwrap();
        let mut par_machine = CamMachine::new(&s);
        let out = tape
            .run_batched_resilient(
                &mut par_machine,
                &args,
                4,
                &Telemetry::default(),
                &RetryPolicy::default(),
                Some(ShardChaos {
                    shard: 0,
                    fail_attempts: u32::MAX,
                }),
            )
            .unwrap();
        assert_outputs_equal(&seq_out, &out, "intra-query panic fallback");
        assert_eq!(
            seq_machine.stats().latency_ns.to_bits(),
            par_machine.stats().latency_ns.to_bits(),
            "sequential redo is bit-identical"
        );
    }

    #[test]
    fn worker_pool_is_reused_across_batched_runs() {
        let (tape, args, s) = knn_tape_and_args();
        // Warm the pool with one batched run, then prove later runs
        // reuse the parked workers instead of spawning per batch.
        let mut m0 = CamMachine::new(&s);
        tape.run_batched(&mut m0, &args, 4).unwrap();
        let warm = pooled_workers();
        assert!(warm >= 1, "batched run must use the pool");
        for _ in 0..5 {
            let mut m = CamMachine::new(&s);
            tape.run_batched(&mut m, &args, 4).unwrap();
        }
        let after = pooled_workers();
        // Concurrent tests share the pool, so allow some slack — but 5
        // runs x 4 shards would need 20 fresh threads without reuse.
        assert!(
            after <= warm + 8,
            "pool grew from {warm} to {after} workers across 5 batched runs"
        );
    }

    #[test]
    fn carried_loop_with_swapping_yield_matches_walker() {
        // The yield permutes its carries: the writeback must behave as a
        // parallel move (the walker rebinds all yielded values at once).
        use c4cam_core::dialects::scf;
        use c4cam_ir::builder::{build_func, OpBuilder};
        let mut m = Module::new();
        let idx = m.index_ty();
        let (_, entry) = build_func(&mut m, "f", &[], &[idx, idx]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c0 = b.const_index(0);
        let c5 = b.const_index(5);
        let c1 = b.const_index(1);
        let ca = b.const_index(3);
        let cb = b.const_index(7);
        let (loop_op, body, _iv, carried) = scf::build_for_iter(&mut b, c0, c5, c1, &[ca, cb]);
        scf::end_body(&mut m, body, &[carried[1], carried[0]]); // swap
        let r0 = m.result(loop_op, 0);
        let r1 = m.result(loop_op, 1);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[r0, r1], &[], vec![]);

        let walk = Executor::new(&m).run("f", &[]).unwrap();
        let tape = Tape::compile(&m, "f").unwrap();
        let mut machine = CamMachine::new(&ArchSpec::default());
        let out = tape.run(&mut machine, &[]).unwrap();
        assert_eq!(walk[0].as_int(), out[0].as_int());
        assert_eq!(walk[1].as_int(), out[1].as_int());
        // 5 swaps of (3, 7) → (7, 3).
        assert_eq!(out[0].as_int(), Some(7));
        assert_eq!(out[1].as_int(), Some(3));
    }

    #[test]
    fn malformed_loop_result_arity_is_an_error_not_a_panic() {
        use c4cam_ir::builder::{build_func, OpBuilder};
        let mut m = Module::new();
        let idx = m.index_ty();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        // One result but zero iter-args: structurally invalid.
        let bad = b.op_with_regions("scf.for", &[c0, c1, c1], &[idx], vec![], 1);
        let body = m.add_block(bad, 0, &[idx]);
        let y = m.create_op("scf.yield", &[], &[], vec![], 0);
        m.push_op(body, y);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[], &[], vec![]);
        let e = Tape::compile(&m, "f").unwrap_err();
        assert!(e.message.contains("mismatch"), "{e}");
    }

    #[test]
    fn argument_arity_is_checked() {
        let mut m = Module::new();
        torch::build_hdc_dot(&mut m, 1, 2, 16, 1);
        let s = spec(16, Optimization::Base);
        let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
        let tape = Tape::compile(&compiled.module, "forward").unwrap();
        let mut machine = CamMachine::new(&s);
        let e = tape.run(&mut machine, &[]).unwrap_err();
        assert!(e.message.contains("arguments"), "{e}");
    }

    #[test]
    fn traced_hdc_run_replays_bit_identically_through_text() {
        let mut m = Module::new();
        torch::build_hdc_dot_with(&mut m, 3, 5, 200, 1, true);
        let (stored, queries) = hdc_inputs(3, 5, 200);
        let args = [Value::Tensor(queries), Value::Tensor(stored)];
        let s = spec(16, Optimization::Power);
        let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
        let tape = Tape::compile(&compiled.module, "forward").unwrap();

        let mut rec_machine = CamMachine::new(&s);
        let (tape_out, trace) = tape.run_traced(&mut rec_machine, &args).unwrap();
        assert!(!trace.is_empty());

        // Round-trip through the byte-exact text format, then replay on
        // a fresh machine: outputs, stats, and phases all bit-identical.
        let parsed = Trace::parse(&trace.to_text()).unwrap();
        assert_eq!(parsed, trace);
        let mut replay_machine = CamMachine::new(&s);
        let replay_out = parsed.replay(&mut replay_machine).unwrap();
        assert_outputs_equal(&tape_out, &replay_out, "trace replay");
        assert_eq!(rec_machine.stats(), replay_machine.stats());
        assert_eq!(rec_machine.phases(), replay_machine.phases());

        // The recording run itself matches an untraced run bit-for-bit.
        let mut plain_machine = CamMachine::new(&s);
        let plain_out = tape.run(&mut plain_machine, &args).unwrap();
        assert_outputs_equal(&plain_out, &tape_out, "traced vs plain");
        assert_eq!(plain_machine.stats(), rec_machine.stats());
    }

    #[test]
    fn traced_knn_run_replays_bit_identically() {
        let mut m = Module::new();
        cim::build_similarity_kernel(&mut m, "knn", "eucl", 40, 96, 8, 2, false);
        let mut stored = Vec::new();
        for p in 0..40 {
            for d in 0..96 {
                stored.push(f32::from(u8::from((d * 5 + p * 11) % 7 < 3)));
            }
        }
        let stored = Tensor::from_vec(vec![40, 96], stored).unwrap();
        let queries = stored.slice2d(4, 0, 8, 96).unwrap();
        let args = [Value::Tensor(stored), Value::Tensor(queries)];
        let s = spec(16, Optimization::Base);
        let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
        let tape = Tape::compile(&compiled.module, "knn").unwrap();

        let mut rec_machine = CamMachine::new(&s);
        let (tape_out, trace) = tape.run_traced(&mut rec_machine, &args).unwrap();
        let mut replay_machine = CamMachine::new(&s);
        let replay_out = trace.replay(&mut replay_machine).unwrap();
        assert_outputs_equal(&tape_out, &replay_out, "knn trace replay");
        assert_eq!(rec_machine.stats(), replay_machine.stats());
    }

    #[test]
    fn runtime_errors_carry_op_context() {
        // A module whose search runs against an unallocated machine
        // can't happen through the pipeline; instead provoke a runtime
        // failure by handing a non-tensor argument.
        let mut m = Module::new();
        torch::build_hdc_dot(&mut m, 1, 2, 16, 1);
        let s = spec(16, Optimization::Base);
        let compiled = C4camPipeline::new(s.clone()).compile(m).unwrap();
        let tape = Tape::compile(&compiled.module, "forward").unwrap();
        let mut machine = CamMachine::new(&s);
        let e = tape
            .run(&mut machine, &[Value::Int(1), Value::Int(2)])
            .unwrap_err();
        assert!(e.op.is_some(), "op context attached: {e}");
        assert!(e.op_name.is_some(), "{e}");
    }
}
