//! The tape compiler: one pass over a fully lowered cam-level function
//! that assigns every SSA value a dense slot, pre-resolves attributes,
//! and linearizes structured control flow into pc jumps.
//!
//! ## Query-loop detection
//!
//! The `cam-map` pass emits one sequential `scf.for` over queries whose
//! iterations are independent: each iteration searches the (read-only
//! after setup) subarrays and scatter-accumulates into row `q` of the
//! accumulator, where `q` is the loop's induction variable. The compiler
//! recognizes that shape so the batched executor can shard iterations
//! across threads:
//!
//! * the loop is sequential (`scf.for`), carries no iter-args, and is
//!   not nested inside other control flow;
//! * its body performs at least one `cam.search` and **no** allocation,
//!   programming (`cam.write_value` / `cam.store_handle`) or phase
//!   marking;
//! * every `cam.merge_partial_subarray` in the body uses the loop's
//!   induction variable as its query-row operand, so concurrent
//!   iterations write disjoint accumulator rows.
//!
//! ## Shardable subarray-group loops (intra-query sharding)
//!
//! The query nest additionally contains `scf.parallel` loops over
//! hierarchy units — independent subarray groups that a single query
//! searches concurrently. The compiler marks such a loop shardable when
//! its body:
//!
//! * performs at least one `cam.search`, one `cam.read` and one
//!   `cam.merge_partial_subarray` (the canonical search→read→merge
//!   group the mapping pass emits),
//! * contains no allocation, programming (`cam.write_value` /
//!   `cam.store_handle`), phase marking, `cam.reduce` or `func.return`,
//! * merges only into accumulators defined *outside* the loop body.
//!
//! Merged accumulator elements are **shared** across iterations
//! (column chunks of one row group accumulate into the same score), so
//! the batch executor's workers log their merges and the main thread
//! replays them in iteration order — see [`crate::TapeVm`].

use crate::error::EngineError;
use crate::isa::{
    CmpPred, FloatBinOp, Inst, IntBinOp, PreConst, QueryLoop, ReduceInst, SearchInst, SliceOffset,
    Slot,
};
use c4cam_arch::tech::Level;
use c4cam_arch::{MatchKind, Metric};
use c4cam_ir::{Attribute, BlockId, Module, OpId, TypeKind, ValueId};
use c4cam_runtime::kernels::DYNAMIC_OFFSET;
use c4cam_tensor::Tensor;
use std::collections::HashMap;

type CResult<T> = Result<T, EngineError>;

/// A compiled function: the flat instruction tape plus its metadata.
#[derive(Debug, Clone)]
pub struct Tape {
    pub(crate) insts: Vec<Inst>,
    /// Per-instruction source op (for error attribution).
    pub(crate) src_ops: Vec<OpId>,
    /// Per-instruction index into [`Tape::op_names`].
    pub(crate) src_names: Vec<u16>,
    /// Interned op names.
    pub(crate) op_names: Vec<String>,
    pub(crate) n_slots: usize,
    pub(crate) arg_slots: Vec<Slot>,
    /// Slots the optimizer preloads at VM construction in place of the
    /// stripped `Const*` instructions (see [`crate::opt`]).
    pub(crate) preload: Vec<(Slot, PreConst)>,
    pub(crate) query_loop: Option<QueryLoop>,
    /// `LoopEnter` pcs of parallel loops whose iterations may be
    /// sharded across worker threads *within* one query (see
    /// [`Compiler`] docs for the conditions).
    pub(crate) shard_loops: Vec<usize>,
    pub(crate) func: String,
}

impl Tape {
    /// Compile function `func` of `m` into a flat instruction tape.
    ///
    /// # Errors
    /// Fails on unknown functions and on ops outside the CAM-ISA surface
    /// (the tape targets fully lowered cam-level modules).
    pub fn compile(m: &Module, func: &str) -> CResult<Tape> {
        Compiler::new(m, func)?.finish()
    }

    /// Number of instructions on the tape.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The shardable query loop, when one was detected.
    pub fn query_loop(&self) -> Option<QueryLoop> {
        self.query_loop
    }

    /// `LoopEnter` pcs of parallel subarray-group loops eligible for
    /// intra-query sharding.
    pub fn shard_loops(&self) -> &[usize] {
        &self.shard_loops
    }

    /// Name of the compiled function.
    pub fn func_name(&self) -> &str {
        &self.func
    }

    /// Number of function arguments the tape expects.
    pub fn num_args(&self) -> usize {
        self.arg_slots.len()
    }

    pub(crate) fn attach(&self, pc: usize, e: EngineError) -> EngineError {
        match (self.src_ops.get(pc), self.src_names.get(pc)) {
            (Some(&op), Some(&n)) => e.with_op(op, &self.op_names[n as usize]),
            _ => e,
        }
    }
}

/// Visit every slot an instruction (re)defines.
pub(crate) fn inst_defs(inst: &Inst, mut f: impl FnMut(Slot)) {
    match inst {
        Inst::ConstInt { out, .. }
        | Inst::ConstFloat { out, .. }
        | Inst::ConstBool { out, .. }
        | Inst::ConstTensor { out, .. }
        | Inst::Copy { out, .. }
        | Inst::IntBin { out, .. }
        | Inst::IntBinImm { out, .. }
        | Inst::FloatBin { out, .. }
        | Inst::IntCmp { out, .. }
        | Inst::IntCmpImm { out, .. }
        | Inst::CastIntLike { out, .. }
        | Inst::ExtractSlice { out, .. }
        | Inst::AllocBuffer { out, .. }
        | Inst::AllocCopy { out, .. }
        | Inst::ToTensor { out, .. }
        | Inst::AllocBank { out }
        | Inst::AllocMat { out, .. }
        | Inst::AllocArray { out, .. }
        | Inst::AllocSubarray { out, .. }
        | Inst::LoadHandle { out, .. } => f(*out),
        Inst::LoopEnter { iv, .. } => f(*iv),
        Inst::Read { vals, idx, .. } => {
            f(*vals);
            f(*idx);
        }
        Inst::Reduce(r) => {
            f(r.vals);
            f(r.idx);
        }
        Inst::Jump { .. }
        | Inst::JumpIfNot { .. }
        | Inst::LoopNext { .. }
        | Inst::Return { .. }
        | Inst::StoreHandle { .. }
        | Inst::WriteValue { .. }
        | Inst::Search(_)
        | Inst::MergePartial { .. }
        | Inst::MergeLevel { .. }
        | Inst::PhaseMarker { .. } => {}
    }
}

/// Whether every `cam.read` of the tape sits inside the loop body
/// `(enter, next)` — the safety condition for intra-query shard
/// candidates. A read *after* the loop would observe the main
/// machine's missing `last_result`; a read textually *before* it can
/// do the same on the next trip of an enclosing loop.
fn reads_confined_to_body(insts: &[Inst], enter: usize, next: usize) -> bool {
    insts
        .iter()
        .enumerate()
        .all(|(pc, i)| !matches!(i, Inst::Read { .. }) || (enter < pc && pc < next))
}

/// What a block's terminating `scf.yield` should compile to.
enum YieldAction {
    /// Top-level function body: `scf.yield` is illegal, `func.return`
    /// terminates.
    None,
    /// Loop body: copy yielded values into the carry slots, then fall
    /// through to the loop's `LoopNext`.
    CopyTo(Vec<Slot>),
}

struct Compiler<'m> {
    m: &'m Module,
    insts: Vec<Inst>,
    src_ops: Vec<OpId>,
    src_names: Vec<u16>,
    op_names: Vec<String>,
    name_index: HashMap<String, u16>,
    slots: HashMap<ValueId, Slot>,
    next_slot: Slot,
    arg_slots: Vec<Slot>,
    /// Control-flow nesting depth (loops + ifs) during compilation.
    depth: usize,
    query_loop: Option<QueryLoop>,
    shard_loops: Vec<usize>,
    func: String,
}

impl<'m> Compiler<'m> {
    fn new(m: &'m Module, func: &str) -> CResult<Compiler<'m>> {
        let func_op = m
            .lookup_symbol(func)
            .ok_or_else(|| EngineError::new(format!("unknown function '{func}'")))?;
        let entry = m.op(func_op).regions[0]
            .first()
            .copied()
            .ok_or_else(|| EngineError::new("function has no body"))?;
        let mut c = Compiler {
            m,
            insts: Vec::new(),
            src_ops: Vec::new(),
            src_names: Vec::new(),
            op_names: Vec::new(),
            name_index: HashMap::new(),
            slots: HashMap::new(),
            next_slot: 0,
            arg_slots: Vec::new(),
            depth: 0,
            query_loop: None,
            shard_loops: Vec::new(),
            func: func.to_string(),
        };
        for &arg in &m.block(entry).args {
            let s = c.define(arg);
            c.arg_slots.push(s);
        }
        c.compile_block(entry, &YieldAction::None)?;
        Ok(c)
    }

    fn finish(self) -> CResult<Tape> {
        let mut tape = Tape {
            insts: self.insts,
            src_ops: self.src_ops,
            src_names: self.src_names,
            op_names: self.op_names,
            n_slots: self.next_slot as usize,
            arg_slots: self.arg_slots,
            preload: Vec::new(),
            query_loop: self.query_loop,
            shard_loops: self.shard_loops,
            func: self.func,
        };
        // Peephole pass: fold constants into immediates and strip the
        // dead `Const*` instructions (remaps all pcs, including the
        // shard-loop candidates filtered below).
        crate::opt::optimize(&mut tape);
        // A shard loop's searches run only on worker machine clones, so
        // the main machine's subarrays keep no `last_result` from it: a
        // `cam.read` anywhere outside the loop body — after it in pc
        // order, or before it inside an enclosing loop that repeats —
        // could observe that difference. Keep only candidates whose
        // body contains every read of the tape.
        let shard_loops = std::mem::take(&mut tape.shard_loops);
        tape.shard_loops = shard_loops
            .into_iter()
            .filter(|&enter| {
                let Inst::LoopEnter { exit, .. } = tape.insts[enter] else {
                    return false;
                };
                reads_confined_to_body(&tape.insts, enter, exit - 1)
            })
            .collect();
        Ok(tape)
    }

    // ------------------------------------------------------------------
    // Slot & emission helpers
    // ------------------------------------------------------------------

    fn define(&mut self, v: ValueId) -> Slot {
        let s = self.next_slot;
        self.next_slot += 1;
        self.slots.insert(v, s);
        s
    }

    /// Map a value to an existing slot (loop results aliasing carries).
    fn alias(&mut self, v: ValueId, s: Slot) {
        self.slots.insert(v, s);
    }

    fn slot(&self, v: ValueId) -> CResult<Slot> {
        self.slots
            .get(&v)
            .copied()
            .ok_or_else(|| EngineError::new(format!("use of unbound value {v:?}")))
    }

    fn operand_slot(&self, op: OpId, i: usize) -> CResult<Slot> {
        self.slot(self.m.operand(op, i))
    }

    fn emit(&mut self, op: OpId, inst: Inst) -> usize {
        let pc = self.insts.len();
        let name = &self.m.op(op).name;
        let idx = match self.name_index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.op_names.len() as u16;
                self.op_names.push(name.clone());
                self.name_index.insert(name.clone(), i);
                i
            }
        };
        self.insts.push(inst);
        self.src_ops.push(op);
        self.src_names.push(idx);
        pc
    }

    fn err(op: OpId, m: &Module, message: impl Into<String>) -> EngineError {
        EngineError::new(message).with_op(op, &m.op(op).name)
    }

    /// Whether a result value is `index`-typed (walker's `int_like_result`).
    fn result_is_index(&self, op: OpId) -> bool {
        matches!(
            self.m.kind(self.m.value_type(self.m.result(op, 0))),
            TypeKind::Index
        )
    }

    /// Declared shape of a (tensor/memref) value, as usizes.
    fn declared_shape(&self, op: OpId, v: ValueId) -> CResult<Vec<usize>> {
        match self.m.kind(self.m.value_type(v)).shape() {
            Some(shape) => shape
                .iter()
                .map(|&d| {
                    usize::try_from(d)
                        .map_err(|_| Self::err(op, self.m, "dynamic shape at runtime"))
                })
                .collect(),
            None => Err(Self::err(op, self.m, "expected a shaped type")),
        }
    }

    fn single_block(&self, op: OpId, region: usize) -> CResult<BlockId> {
        let blocks = &self.m.op(op).regions[region];
        if blocks.len() != 1 {
            return Err(Self::err(
                op,
                self.m,
                format!("expected exactly one block in region {region}"),
            ));
        }
        Ok(blocks[0])
    }

    // ------------------------------------------------------------------
    // Block & op compilation
    // ------------------------------------------------------------------

    fn compile_block(&mut self, block: BlockId, on_yield: &YieldAction) -> CResult<()> {
        let ops = self.m.block(block).ops.clone();
        for op in ops {
            self.compile_op(op, on_yield)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn compile_op(&mut self, op: OpId, on_yield: &YieldAction) -> CResult<()> {
        let m = self.m;
        let name = m.op(op).name.clone();
        match name.as_str() {
            "func.return" => {
                let values = m
                    .op(op)
                    .operands
                    .iter()
                    .map(|&v| self.slot(v))
                    .collect::<CResult<Vec<_>>>()?;
                self.emit(op, Inst::Return { values });
            }
            "scf.yield" => {
                if let YieldAction::CopyTo(carries) = on_yield {
                    let carries = carries.clone();
                    let operands = m.op(op).operands.clone();
                    if operands.len() != carries.len() {
                        return Err(Self::err(op, m, "scf.for yield arity mismatch"));
                    }
                    let mut srcs = Vec::with_capacity(operands.len());
                    for &v in &operands {
                        srcs.push(self.slot(v)?);
                    }
                    // Parallel move: the walker rebinds all yielded
                    // values atomically, so a yield that reads another
                    // position's carry slot must go through a temporary
                    // before that slot is overwritten.
                    for (i, src) in srcs.iter_mut().enumerate() {
                        let conflicts = carries
                            .iter()
                            .enumerate()
                            .any(|(j, &c)| j != i && c == *src);
                        if conflicts {
                            let tmp = self.next_slot;
                            self.next_slot += 1;
                            self.emit(
                                op,
                                Inst::Copy {
                                    src: *src,
                                    out: tmp,
                                },
                            );
                            *src = tmp;
                        }
                    }
                    for (&src, &c) in srcs.iter().zip(&carries) {
                        if src != c {
                            self.emit(op, Inst::Copy { src, out: c });
                        }
                    }
                }
                // In if-bodies the yield is a pure terminator.
            }
            "arith.constant" | "torch.constant" => {
                self.compile_constant(op)?;
            }
            "torch.constant_int" => {
                let value = m
                    .op(op)
                    .int_attr("value")
                    .ok_or_else(|| Self::err(op, m, "constant_int without value"))?;
                let out = self.define(m.result(op, 0));
                self.emit(
                    op,
                    Inst::ConstInt {
                        out,
                        value,
                        index: false,
                    },
                );
            }
            "arith.addi" | "arith.subi" | "arith.muli" | "arith.divui" | "arith.remui"
            | "arith.minui" | "arith.maxui" => {
                let bin = match name.as_str() {
                    "arith.addi" => IntBinOp::Add,
                    "arith.subi" => IntBinOp::Sub,
                    "arith.muli" => IntBinOp::Mul,
                    "arith.divui" => IntBinOp::DivU,
                    "arith.remui" => IntBinOp::RemU,
                    "arith.minui" => IntBinOp::MinU,
                    _ => IntBinOp::MaxU,
                };
                let lhs = self.operand_slot(op, 0)?;
                let rhs = self.operand_slot(op, 1)?;
                let index = self.result_is_index(op);
                let out = self.define(m.result(op, 0));
                self.emit(
                    op,
                    Inst::IntBin {
                        op: bin,
                        lhs,
                        rhs,
                        out,
                        index,
                    },
                );
            }
            "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" => {
                let bin = match name.as_str() {
                    "arith.addf" => FloatBinOp::Add,
                    "arith.subf" => FloatBinOp::Sub,
                    "arith.mulf" => FloatBinOp::Mul,
                    _ => FloatBinOp::Div,
                };
                let lhs = self.operand_slot(op, 0)?;
                let rhs = self.operand_slot(op, 1)?;
                let out = self.define(m.result(op, 0));
                self.emit(
                    op,
                    Inst::FloatBin {
                        op: bin,
                        lhs,
                        rhs,
                        out,
                    },
                );
            }
            "arith.cmpi" => {
                let pred = m
                    .op(op)
                    .str_attr("predicate")
                    .and_then(CmpPred::from_keyword)
                    .ok_or_else(|| Self::err(op, m, "cmpi without a known predicate"))?;
                let lhs = self.operand_slot(op, 0)?;
                let rhs = self.operand_slot(op, 1)?;
                let out = self.define(m.result(op, 0));
                self.emit(
                    op,
                    Inst::IntCmp {
                        pred,
                        lhs,
                        rhs,
                        out,
                    },
                );
            }
            "arith.index_cast" => {
                let src = self.operand_slot(op, 0)?;
                let index = self.result_is_index(op);
                let out = self.define(m.result(op, 0));
                self.emit(op, Inst::CastIntLike { src, out, index });
            }
            "scf.for" => self.compile_loop(op, false)?,
            "scf.parallel" => self.compile_loop(op, true)?,
            "scf.if" => self.compile_if(op)?,
            "tensor.extract_slice" => self.compile_extract_slice(op)?,
            "memref.alloc" => {
                let shape = self.declared_shape(op, m.result(op, 0))?;
                let out = self.define(m.result(op, 0));
                self.emit(op, Inst::AllocBuffer { shape, out });
            }
            "memref.alloc_copy" => {
                let src = self.operand_slot(op, 0)?;
                let out = self.define(m.result(op, 0));
                self.emit(op, Inst::AllocCopy { src, out });
            }
            "memref.to_tensor" => {
                let src = self.operand_slot(op, 0)?;
                let out = self.define(m.result(op, 0));
                self.emit(op, Inst::ToTensor { src, out });
            }
            "cam.alloc_bank" => {
                let out = self.define(m.result(op, 0));
                self.emit(op, Inst::AllocBank { out });
            }
            "cam.alloc_mat" | "cam.alloc_array" | "cam.alloc_subarray" => {
                let parent = self.operand_slot(op, 0)?;
                let out = self.define(m.result(op, 0));
                let inst = match name.as_str() {
                    "cam.alloc_mat" => Inst::AllocMat { parent, out },
                    "cam.alloc_array" => Inst::AllocArray { parent, out },
                    _ => Inst::AllocSubarray { parent, out },
                };
                self.emit(op, inst);
            }
            "cam.store_handle" => {
                let table = self.operand_slot(op, 0)?;
                let pos = self.operand_slot(op, 1)?;
                let sub = self.operand_slot(op, 2)?;
                self.emit(op, Inst::StoreHandle { table, pos, sub });
            }
            "cam.load_handle" => {
                let table = self.operand_slot(op, 0)?;
                let pos = self.operand_slot(op, 1)?;
                let out = self.define(m.result(op, 0));
                self.emit(op, Inst::LoadHandle { table, pos, out });
            }
            "cam.write_value" => {
                let sub = self.operand_slot(op, 0)?;
                let data = self.operand_slot(op, 1)?;
                let row_off = self.operand_slot(op, 2)?;
                self.emit(op, Inst::WriteValue { sub, data, row_off });
            }
            "cam.search" => self.compile_search(op)?,
            "cam.read" => {
                let sub = self.operand_slot(op, 0)?;
                let shape = self.declared_shape(op, m.result(op, 0))?;
                let vals = self.define(m.result(op, 0));
                let idx = self.define(m.result(op, 1));
                self.emit(
                    op,
                    Inst::Read {
                        sub,
                        shape,
                        vals,
                        idx,
                    },
                );
            }
            "cam.merge_partial_subarray" => {
                let acc = self.operand_slot(op, 1)?;
                let vals = self.operand_slot(op, 2)?;
                let idx = self.operand_slot(op, 3)?;
                let q = self.operand_slot(op, 4)?;
                let offset = self.operand_slot(op, 5)?;
                self.emit(
                    op,
                    Inst::MergePartial {
                        acc,
                        vals,
                        idx,
                        q,
                        offset,
                    },
                );
            }
            "cam.merge_level" => {
                let level = match m.op(op).str_attr("level") {
                    Some("bank") => Level::Bank,
                    Some("mat") => Level::Mat,
                    Some("array") => Level::Array,
                    Some("subarray") => Level::Subarray,
                    other => {
                        return Err(Self::err(op, m, format!("bad merge level {other:?}")));
                    }
                };
                let elems = m.op(op).int_attr("elems").unwrap_or(1) as usize;
                self.emit(op, Inst::MergeLevel { level, elems });
            }
            "cam.phase_marker" => {
                let pname = m.op(op).str_attr("name").unwrap_or("phase").to_string();
                self.emit(
                    op,
                    Inst::PhaseMarker {
                        name: pname.into_boxed_str(),
                    },
                );
            }
            "cam.reduce" => self.compile_reduce(op)?,
            other => {
                return Err(Self::err(
                    op,
                    m,
                    format!("op '{other}' is outside the CAM-ISA surface (tape engine targets fully lowered cam-level modules)"),
                ));
            }
        }
        Ok(())
    }

    fn compile_constant(&mut self, op: OpId) -> CResult<()> {
        let m = self.m;
        let attr = m
            .op(op)
            .attr("value")
            .ok_or_else(|| Self::err(op, m, "constant without value"))?
            .clone();
        let index = self.result_is_index(op);
        let out = self.define(m.result(op, 0));
        let inst = match attr {
            Attribute::Int(value) => Inst::ConstInt { out, value, index },
            Attribute::Bool(value) => Inst::ConstBool { out, value },
            Attribute::Float(value) => Inst::ConstFloat { out, value },
            Attribute::Dense { shape, data } => {
                let shape: Vec<usize> = shape.iter().map(|&d| d as usize).collect();
                let values: Vec<f32> = (0..data.len()).map(|i| data.get_f64(i) as f32).collect();
                let tensor = Tensor::from_vec(shape, values)
                    .map_err(|e| Self::err(op, m, e.message.clone()))?;
                Inst::ConstTensor { out, tensor }
            }
            other => {
                return Err(Self::err(op, m, format!("bad constant payload {other:?}")));
            }
        };
        self.emit(op, inst);
        Ok(())
    }

    fn compile_loop(&mut self, op: OpId, parallel: bool) -> CResult<()> {
        let m = self.m;
        let lb = self.operand_slot(op, 0)?;
        let ub = self.operand_slot(op, 1)?;
        let step = self.operand_slot(op, 2)?;
        let body = self.single_block(op, 0)?;
        let args = m.block(body).args.clone();
        let iv = self.define(args[0]);

        // Iter-args: carry slots are the body's block-arg slots; inits
        // copy in, yields copy back, results alias the carries.
        let inits = m.op(op).operands[3..].to_vec();
        if parallel && !inits.is_empty() {
            return Err(Self::err(op, m, "scf.parallel cannot carry iter-args"));
        }
        if args.len() != inits.len() + 1 {
            return Err(Self::err(op, m, "loop body arity mismatch with iter-args"));
        }
        if m.op(op).results.len() != inits.len() {
            return Err(Self::err(
                op,
                m,
                "loop result count mismatch with iter-args",
            ));
        }
        let mut carries = Vec::with_capacity(inits.len());
        for (&init, &arg) in inits.iter().zip(&args[1..]) {
            let src = self.slot(init)?;
            let carry = self.define(arg);
            self.emit(op, Inst::Copy { src, out: carry });
            carries.push(carry);
        }
        for (i, &r) in m.op(op).results.iter().enumerate() {
            self.alias(r, carries[i]);
        }

        let enter = self.emit(
            op,
            Inst::LoopEnter {
                lb,
                ub,
                step,
                iv,
                exit: 0, // patched below
                parallel,
            },
        );
        let outer_depth = self.depth;
        self.depth += 1;
        let action = if carries.is_empty() {
            YieldAction::None
        } else {
            YieldAction::CopyTo(carries.clone())
        };
        self.compile_block(body, &action)?;
        self.depth -= 1;
        let next = self.emit(op, Inst::LoopNext { enter });
        let exit = next + 1;
        if let Inst::LoopEnter { exit: e, .. } = &mut self.insts[enter] {
            *e = exit;
        }

        // Shardable subarray-group candidate: see module docs.
        if parallel && Self::shardable_parallel_body(&self.insts[enter + 1..next]) {
            self.shard_loops.push(enter);
        }

        // Query-loop candidate: see module docs for the conditions.
        if !parallel && carries.is_empty() && outer_depth == 0 && self.query_loop.is_none() {
            let body_range = &self.insts[enter + 1..next];
            let has_search = body_range.iter().any(|i| matches!(i, Inst::Search(_)));
            let has_setup = body_range.iter().any(|i| {
                matches!(
                    i,
                    Inst::AllocBank { .. }
                        | Inst::AllocMat { .. }
                        | Inst::AllocArray { .. }
                        | Inst::AllocSubarray { .. }
                        | Inst::StoreHandle { .. }
                        | Inst::WriteValue { .. }
                        | Inst::PhaseMarker { .. }
                )
            });
            let merges_row_by_iv = body_range.iter().all(|i| match i {
                Inst::MergePartial { q, .. } => *q == iv,
                _ => true,
            });
            if has_search && !has_setup && merges_row_by_iv {
                self.query_loop = Some(QueryLoop {
                    enter,
                    next,
                    exit,
                    iv,
                });
            }
        }
        Ok(())
    }

    /// Whether a parallel loop body qualifies for intra-query sharding
    /// (see the module docs for the conditions).
    fn shardable_parallel_body(body: &[Inst]) -> bool {
        let (mut search, mut read, mut merge) = (false, false, false);
        for inst in body {
            match inst {
                Inst::Search(_) => search = true,
                Inst::Read { .. } => {
                    if !search {
                        // A read before the body's first search would
                        // observe a previous iteration's result —
                        // iteration-order-dependent, so not shardable.
                        return false;
                    }
                    read = true;
                }
                Inst::MergePartial { .. } => merge = true,
                Inst::AllocBank { .. }
                | Inst::AllocMat { .. }
                | Inst::AllocArray { .. }
                | Inst::AllocSubarray { .. }
                | Inst::StoreHandle { .. }
                | Inst::WriteValue { .. }
                | Inst::PhaseMarker { .. }
                | Inst::Reduce(_)
                | Inst::Return { .. } => return false,
                _ => {}
            }
        }
        if !(search && read && merge) {
            return false;
        }
        // Every merge must target an accumulator defined before the
        // loop — merges into body-defined buffers would be lost by the
        // replay protocol.
        let mut defs = std::collections::HashSet::new();
        for inst in body {
            inst_defs(inst, |s| {
                defs.insert(s);
            });
        }
        body.iter().all(|inst| match inst {
            Inst::MergePartial { acc, .. } => !defs.contains(acc),
            _ => true,
        })
    }

    fn compile_if(&mut self, op: OpId) -> CResult<()> {
        let cond = self.operand_slot(op, 0)?;
        if !self.m.op(op).results.is_empty() {
            return Err(Self::err(op, self.m, "scf.if with results is unsupported"));
        }
        let has_else = self.m.op(op).regions.len() > 1 && !self.m.op(op).regions[1].is_empty();
        let branch = self.emit(op, Inst::JumpIfNot { cond, target: 0 });
        self.depth += 1;
        let then_block = self.single_block(op, 0)?;
        self.compile_block(then_block, &YieldAction::None)?;
        if has_else {
            let jump_end = self.emit(op, Inst::Jump { target: 0 });
            let else_start = self.insts.len();
            if let Inst::JumpIfNot { target, .. } = &mut self.insts[branch] {
                *target = else_start;
            }
            let else_block = self.single_block(op, 1)?;
            self.compile_block(else_block, &YieldAction::None)?;
            let end = self.insts.len();
            if let Inst::Jump { target } = &mut self.insts[jump_end] {
                *target = end;
            }
        } else {
            let end = self.insts.len();
            if let Inst::JumpIfNot { target, .. } = &mut self.insts[branch] {
                *target = end;
            }
        }
        self.depth -= 1;
        Ok(())
    }

    fn compile_extract_slice(&mut self, op: OpId) -> CResult<()> {
        let m = self.m;
        let data = m.op(op);
        let static_offsets = data
            .attr("static_offsets")
            .and_then(Attribute::as_int_array)
            .ok_or_else(|| Self::err(op, m, "extract_slice without static_offsets"))?;
        let sizes = data
            .attr("sizes")
            .and_then(Attribute::as_int_array)
            .ok_or_else(|| Self::err(op, m, "extract_slice without sizes"))?;
        if static_offsets.len() != 2 || sizes.len() != 2 {
            return Err(Self::err(op, m, "extract_slice supports rank-2 tensors"));
        }
        let src = self.operand_slot(op, 0)?;
        let mut dyn_idx = 1usize;
        let mut offsets = [SliceOffset::Static(0); 2];
        for (slot, &so) in offsets.iter_mut().zip(&static_offsets) {
            if so == DYNAMIC_OFFSET {
                *slot = SliceOffset::Dynamic(self.operand_slot(op, dyn_idx)?);
                dyn_idx += 1;
            } else {
                *slot = SliceOffset::Static(so);
            }
        }
        let sizes = [sizes[0] as usize, sizes[1] as usize];
        let out = self.define(m.result(op, 0));
        self.emit(
            op,
            Inst::ExtractSlice {
                src,
                offsets,
                sizes,
                out,
            },
        );
        Ok(())
    }

    fn compile_search(&mut self, op: OpId) -> CResult<()> {
        let m = self.m;
        let data = m.op(op);
        let kind = data
            .str_attr("kind")
            .and_then(MatchKind::from_keyword)
            .ok_or_else(|| Self::err(op, m, "cam.search without kind"))?;
        let metric = data
            .str_attr("metric")
            .and_then(Metric::from_keyword)
            .ok_or_else(|| Self::err(op, m, "cam.search without metric"))?;
        let selective = data
            .attr("selective")
            .and_then(Attribute::as_bool)
            .unwrap_or(false);
        let threshold = data.attr("threshold").and_then(Attribute::as_float);
        let broadcast_share = data.attr("broadcast_share").and_then(Attribute::as_float);
        let sub = self.operand_slot(op, 0)?;
        let query = self.operand_slot(op, 1)?;
        let selective = if selective {
            Some((self.operand_slot(op, 2)?, self.operand_slot(op, 3)?))
        } else {
            None
        };
        self.emit(
            op,
            Inst::Search(Box::new(SearchInst {
                sub,
                query,
                kind,
                metric,
                threshold,
                broadcast_share,
                selective,
            })),
        );
        Ok(())
    }

    fn compile_reduce(&mut self, op: OpId) -> CResult<()> {
        let m = self.m;
        let data = m.op(op);
        let k = data
            .int_attr("k")
            .ok_or_else(|| Self::err(op, m, "cam.reduce without k"))? as usize;
        let n_valid = data
            .int_attr("n_valid")
            .ok_or_else(|| Self::err(op, m, "cam.reduce without n_valid"))?
            as usize;
        let select_largest = data
            .attr("select_largest")
            .and_then(Attribute::as_bool)
            .ok_or_else(|| Self::err(op, m, "missing boolean attribute 'select_largest'"))?;
        let metric = data.str_attr("metric").unwrap_or("dot").to_string();
        let acc = self.operand_slot(op, 0)?;
        let vals_shape = self.declared_shape(op, m.result(op, 0))?;
        let idx_shape = self.declared_shape(op, m.result(op, 1))?;
        let vals = self.define(m.result(op, 0));
        let idx = self.define(m.result(op, 1));
        self.emit(
            op,
            Inst::Reduce(Box::new(ReduceInst {
                acc,
                k,
                n_valid,
                select_largest,
                metric: metric.into_boxed_str(),
                vals_shape,
                idx_shape,
                vals,
                idx,
            })),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4cam_arch::{ArchSpec, Optimization};
    use c4cam_core::dialects::torch;
    use c4cam_core::pipeline::C4camPipeline;

    fn lowered_hdc() -> Module {
        let mut m = Module::new();
        torch::build_hdc_dot(&mut m, 2, 4, 64, 1);
        let spec = ArchSpec::builder()
            .subarray(16, 16)
            .hierarchy(2, 2, 4)
            .optimization(Optimization::Base)
            .build()
            .unwrap();
        C4camPipeline::new(spec).compile(m).unwrap().module
    }

    #[test]
    fn lowered_module_compiles_to_flat_tape() {
        let m = lowered_hdc();
        let tape = Tape::compile(&m, "forward").unwrap();
        assert!(!tape.is_empty());
        assert_eq!(tape.num_args(), 2);
        assert!(tape.len() > 50, "nontrivial tape, got {}", tape.len());
        // Device ops survived as pre-resolved instructions.
        assert!(tape.insts.iter().any(|i| matches!(i, Inst::Search(_))));
        assert!(tape.insts.iter().any(|i| matches!(i, Inst::Reduce(_))));
        assert!(tape
            .insts
            .iter()
            .any(|i| matches!(i, Inst::LoopEnter { parallel: true, .. })));
    }

    #[test]
    fn query_loop_is_detected_on_lowered_modules() {
        let m = lowered_hdc();
        let tape = Tape::compile(&m, "forward").unwrap();
        let ql = tape.query_loop().expect("query loop detected");
        assert!(ql.enter < ql.next && ql.next + 1 == ql.exit);
        // The loop body must not contain setup instructions.
        for inst in &tape.insts[ql.enter + 1..ql.next] {
            assert!(
                !matches!(inst, Inst::WriteValue { .. } | Inst::AllocBank { .. }),
                "setup op inside query loop"
            );
        }
    }

    #[test]
    fn shard_loops_are_detected_and_post_loop_reads_disqualify() {
        let m = lowered_hdc();
        let tape = Tape::compile(&m, "forward").unwrap();
        assert!(
            !tape.shard_loops.is_empty(),
            "query-nest parallel loops must be shardable"
        );
        for &enter in &tape.shard_loops {
            let Inst::LoopEnter { exit, .. } = tape.insts[enter] else {
                panic!("shard candidate is not a LoopEnter");
            };
            // The safety invariant the filter enforces: the main
            // machine never searches inside a sharded loop, so every
            // read of the tape must live inside the candidate's body.
            assert!(reads_confined_to_body(&tape.insts, enter, exit - 1));
        }
        // The filter itself: reads outside the body — after the loop,
        // or before it (re-executed by an enclosing loop's next trip) —
        // disqualify.
        assert!(reads_confined_to_body(&[], 0, 0));
        let read = Inst::Read {
            sub: 0,
            shape: vec![4],
            vals: 1,
            idx: 2,
        };
        let merge = Inst::MergeLevel {
            level: Level::Bank,
            elems: 1,
        };
        let tape_insts = vec![merge.clone(), read.clone(), merge, read];
        assert!(!reads_confined_to_body(&tape_insts, 0, 2)); // read at pc 3
        assert!(!reads_confined_to_body(&tape_insts, 2, 4)); // read at pc 1
        assert!(!reads_confined_to_body(&tape_insts, 1, 3)); // reads on both sides
        assert!(reads_confined_to_body(&tape_insts, 0, 4)); // both reads inside
    }

    #[test]
    fn unknown_function_is_reported() {
        let m = Module::new();
        let e = Tape::compile(&m, "nope").unwrap_err();
        assert!(e.message.contains("unknown function"), "{e}");
    }

    #[test]
    fn unsupported_op_reports_name_and_id() {
        let mut m = Module::new();
        let (_, entry) = c4cam_ir::builder::build_func(&mut m, "f", &[], &[]);
        let mut b = c4cam_ir::builder::OpBuilder::at_end(&mut m, entry);
        b.op("mystery.op", &[], &[], vec![]);
        b.op("func.return", &[], &[], vec![]);
        let e = Tape::compile(&m, "f").unwrap_err();
        assert!(e.message.contains("mystery.op"), "{e}");
        assert!(e.op.is_some(), "op id attached");
        assert_eq!(e.op_name.as_deref(), Some("mystery.op"));
        assert!(e.to_string().contains("mystery.op"), "{e}");
    }

    #[test]
    fn host_level_modules_are_rejected() {
        // A torch-level module is outside the CAM-ISA surface.
        let mut m = Module::new();
        torch::build_hdc_dot(&mut m, 2, 4, 64, 1);
        let e = Tape::compile(&m, "forward").unwrap_err();
        assert!(e.message.contains("CAM-ISA"), "{e}");
    }
}
