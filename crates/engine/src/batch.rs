//! Batched parallel execution: shard the query loop across worker
//! threads, each with its own [`CamDevice`] clone, then merge results
//! and statistics deterministically.
//!
//! ## Protocol
//!
//! 1. Run the tape up to the query loop (setup: allocation +
//!    programming) on the caller's machine.
//! 2. Split the loop's iteration space into `threads` contiguous shards.
//!    Each worker gets a frozen snapshot of the slot file and a
//!    `clone()` + `reset_stats()` fork of the machine, and runs its
//!    iterations exactly as the sequential VM would.
//! 3. Merge, in shard order: every changed buffer element is copied back
//!    (iterations write disjoint accumulator rows — guaranteed by the
//!    compiler's query-loop conditions — so this reproduces the
//!    sequential result bit-for-bit), and each shard's cost delta is
//!    folded into the caller's machine with
//!    [`CamDevice::absorb_delta`].
//! 4. Run the rest of the tape (final reduce + return) on the caller's
//!    machine.
//!
//! Outputs are bit-identical to the sequential engines. Statistics are
//! deterministic (merge order is shard order, independent of thread
//! scheduling) and equal to the sequential run up to floating-point
//! summation ordering in latency/energy totals; operation counts are
//! exact.
//!
//! ## Intra-query sharding
//!
//! When the query loop cannot be sharded — no query loop was detected,
//! or it has fewer than two iterations (single-query workloads: dtree
//! classification, one-vector HDC classify) — the executor instead
//! enables sharding *within* a query: the compiler marks the query
//! nest's `scf.parallel` loops over independent subarray groups (see
//! `compile`), and the VM fans their iterations across the same worker
//! pool. Workers run on machine clones whose per-iteration latencies
//! fold through a parallel timing scope exactly like the sequential
//! interleaving (`max` is order-independent, so latency stays
//! bit-identical); buffer accumulation is handled by a **merge
//! replay**: workers log each `cam.merge_partial_subarray` and the main
//! thread re-applies them in global iteration order, which keeps
//! floating-point score accumulation — and therefore every output —
//! bit-identical to the sequential run. Energy totals agree up to
//! summation order, as with query-loop sharding.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;

use crate::compile::Tape;
use crate::error::{EngineError, ShardPanic};
use crate::frozen::{freeze, thaw, Frozen};
use crate::isa::QueryLoop;
use crate::pool;
use crate::vm::TapeVm;
use c4cam_camsim::{CamDevice, ExecStats};
use c4cam_faults::{RetryPolicy, ShardChaos};
use c4cam_runtime::Value;
use c4cam_telemetry::{cat, ArgValue, Telemetry};

type BResult<T> = Result<T, EngineError>;

/// What one worker shard reports back.
struct ShardOut {
    /// Cost delta of this shard's iterations.
    stats: ExecStats,
    /// Final contents of every slot that held a buffer at fork time.
    buffers: Vec<(usize, c4cam_tensor::Tensor)>,
}

impl Tape {
    /// Execute the tape with the query loop sharded across `threads`
    /// worker threads (see the module docs for the protocol).
    ///
    /// Falls back to the sequential [`Tape::run`] when no query loop was
    /// detected, `threads <= 1`, or the loop has fewer than two
    /// iterations.
    ///
    /// # Errors
    /// Propagates compile-surface and runtime failures; a panicking
    /// worker surfaces as an error.
    pub fn run_batched<D: CamDevice + 'static>(
        &self,
        machine: &mut D,
        args: &[Value],
        threads: usize,
    ) -> BResult<Vec<Value>> {
        self.run_batched_with_telemetry(machine, args, threads, &Telemetry::default())
    }

    /// [`Tape::run_batched`] with a telemetry handle: while the recorder
    /// is enabled, the main lane records sampled per-op spans and each
    /// worker shard records a `cat::SHARD` span on lane `1 + shard`.
    /// Outputs and device statistics are unaffected.
    ///
    /// # Errors
    /// Propagates compile-surface and runtime failures; a panicking
    /// worker surfaces as an error.
    pub fn run_batched_with_telemetry<D: CamDevice + 'static>(
        &self,
        machine: &mut D,
        args: &[Value],
        threads: usize,
        telemetry: &Telemetry,
    ) -> BResult<Vec<Value>> {
        self.run_batched_resilient(
            machine,
            args,
            threads,
            telemetry,
            &RetryPolicy::default(),
            None,
        )
    }

    /// [`Tape::run_batched_with_telemetry`] with an explicit
    /// [`RetryPolicy`] for panicked or timed-out shard workers, plus an
    /// optional [`ShardChaos`] fault injector for testing the retry
    /// path end to end.
    ///
    /// A worker that panics (or exceeds `retry.attempt_timeout`) is
    /// retried up to `retry.max_retries` times on a fresh machine
    /// clone; when retries are exhausted the shard runs sequentially on
    /// the calling thread if `retry.fallback_sequential`, otherwise the
    /// run fails with a structured [`ShardPanic`] on the error. Real
    /// execution errors (bad shapes, device budget) propagate
    /// immediately without retry. Outputs remain bit-identical to the
    /// sequential run on every successful path.
    ///
    /// # Errors
    /// Propagates compile-surface and runtime failures; a shard that
    /// exhausts its retries without a sequential fallback surfaces as
    /// an [`EngineError`] carrying a [`ShardPanic`].
    pub fn run_batched_resilient<D: CamDevice + 'static>(
        &self,
        machine: &mut D,
        args: &[Value],
        threads: usize,
        telemetry: &Telemetry,
        retry: &RetryPolicy,
        chaos: Option<ShardChaos>,
    ) -> BResult<Vec<Value>> {
        if threads <= 1 {
            return self.run_with_telemetry(machine, args, telemetry);
        }
        let Some(ql) = self.query_loop else {
            // No query loop to shard across: fall back to intra-query
            // sharding of the parallel subarray-group loops.
            let mut vm = TapeVm::new(self, args)?;
            vm.set_telemetry(telemetry.clone());
            vm.set_shard_threads(threads);
            vm.set_shard_chaos(chaos);
            let out = vm.exec(machine, 0, usize::MAX)?;
            return out.ok_or_else(|| EngineError::new("function body ended without func.return"));
        };
        let mut vm = TapeVm::new(self, args)?;
        vm.set_telemetry(telemetry.clone());
        // Phase 1: setup.
        if vm.exec(machine, 0, ql.enter)?.is_some() {
            return Err(EngineError::new("function returned before the query loop"));
        }
        let (lb, ub, step) = vm.loop_bounds(ql.enter)?;
        if step <= 0 {
            return Err(EngineError::new("loop step must be positive"));
        }
        let iters: Vec<i64> = (lb..ub).step_by(step as usize).collect();
        if iters.len() < 2 {
            // A single query cannot shard across iterations — shard the
            // subarray-group loops inside it instead.
            vm.set_shard_threads(threads);
            vm.set_shard_chaos(chaos);
            let out = vm.exec(machine, ql.enter, usize::MAX)?;
            return out.ok_or_else(|| EngineError::new("function body ended without func.return"));
        }

        // Phase 2: fork and run shards on the pooled workers.
        let shard_count = threads.min(iters.len());
        let snapshot: Arc<Vec<Frozen>> = Arc::new(vm.slots().iter().map(freeze).collect());
        let chunk = iters.len().div_ceil(shard_count);
        let chunks: Vec<Vec<i64>> = iters.chunks(chunk).map(<[i64]>::to_vec).collect();
        let tape = Arc::new(self.clone());
        let shard_outs = run_shards(
            &tape, machine, &snapshot, &chunks, ql, telemetry, retry, chaos,
        )?;

        // Phase 3: deterministic merge, in shard order.
        for out in &shard_outs {
            machine.absorb_delta(&out.stats);
            for &(slot, ref tensor) in &out.buffers {
                let Frozen::Buffer(base) = &snapshot[slot] else {
                    // The slot was (re)defined inside the loop body; its
                    // post-loop value is dead.
                    continue;
                };
                let Value::Buffer(main) = &vm.slots()[slot] else {
                    continue;
                };
                let mut main = main.borrow_mut();
                let dst = main.data_mut();
                for (e, (&new, &old)) in tensor.data().iter().zip(base.data()).enumerate() {
                    if new.to_bits() != old.to_bits() {
                        dst[e] = new;
                    }
                }
            }
        }

        // Phase 4: epilogue (reduce + return), skipping the loop.
        let out = vm.exec(machine, ql.exit, usize::MAX)?;
        out.ok_or_else(|| EngineError::new("function body ended without func.return"))
    }
}

/// One shard's iterations, exactly as the scoped-thread version ran
/// them: thaw the snapshot, execute the chunk, collect buffers + stats.
fn run_one_shard<D: CamDevice>(
    tape: &Tape,
    shard_machine: &mut D,
    snapshot: &[Frozen],
    chunk: &[i64],
    ql: QueryLoop,
    telemetry: &Telemetry,
    shard: usize,
) -> BResult<ShardOut> {
    let lane = shard as u32 + 1;
    let start_ns = telemetry.now_ns();
    let slots: Vec<Value> = snapshot.iter().map(thaw).collect();
    let mut vm = TapeVm::with_slots(tape, slots);
    vm.set_telemetry_lane(telemetry.clone(), lane);
    vm.exec_iterations(shard_machine, ql.enter, ql.next, ql.iv, chunk, false)?;
    if telemetry.enabled() {
        let end_ns = telemetry.now_ns();
        telemetry.record_span(
            format!("shard-{shard}"),
            cat::SHARD,
            lane,
            start_ns,
            end_ns.saturating_sub(start_ns),
            vec![("iterations", ArgValue::Int(chunk.len() as i64))],
        );
    }
    let buffers = vm
        .slots()
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v {
            Value::Buffer(b) => Some((i, b.borrow().clone())),
            _ => None,
        })
        .collect();
    Ok(ShardOut {
        stats: shard_machine.stats(),
        buffers,
    })
}

/// Best-effort text from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_shards<D: CamDevice + 'static>(
    tape: &Arc<Tape>,
    machine: &D,
    snapshot: &Arc<Vec<Frozen>>,
    chunks: &[Vec<i64>],
    ql: QueryLoop,
    telemetry: &Telemetry,
    retry: &RetryPolicy,
    chaos: Option<ShardChaos>,
) -> BResult<Vec<ShardOut>> {
    // Launch one pooled job per shard; each job owns its data (Arc'd
    // tape + snapshot, a machine clone, its chunk) so a panicking or
    // abandoned worker can never corrupt the caller's state.
    let launch = |shard: usize, attempt: u32| -> Receiver<Result<BResult<ShardOut>, String>> {
        let (tx, rx) = channel();
        let tape = Arc::clone(tape);
        let snapshot = Arc::clone(snapshot);
        let chunk = chunks[shard].clone();
        let mut shard_machine = machine.clone();
        shard_machine.reset_stats();
        let telemetry = telemetry.clone();
        pool::submit(Box::new(move || {
            let out = catch_unwind(AssertUnwindSafe(|| {
                if let Some(c) = chaos {
                    if c.shard == shard && attempt < c.fail_attempts {
                        panic!("chaos: injected shard {shard} failure (attempt {attempt})");
                    }
                }
                run_one_shard(
                    &tape,
                    &mut shard_machine,
                    &snapshot,
                    &chunk,
                    ql,
                    &telemetry,
                    shard,
                )
            }))
            .map_err(|p| panic_message(p.as_ref()));
            // The submitter may have timed out and dropped the receiver.
            let _ = tx.send(out);
        }));
        rx
    };

    let first: Vec<Receiver<_>> = (0..chunks.len()).map(|s| launch(s, 0)).collect();
    let mut outs = Vec::with_capacity(chunks.len());
    for (shard, mut rx) in first.into_iter().enumerate() {
        let mut attempt = 0u32;
        let out = loop {
            let received = match retry.attempt_timeout {
                Some(t) => rx
                    .recv_timeout(t)
                    .map_err(|_| format!("shard {shard} exceeded its {t:?} attempt timeout")),
                None => rx
                    .recv()
                    .map_err(|_| format!("shard {shard} worker died without reporting")),
            };
            match received.and_then(|r| r) {
                // A real execution error is deterministic: retrying
                // cannot help, so it propagates immediately.
                Ok(Ok(out)) => break out,
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    if attempt < retry.max_retries {
                        attempt += 1;
                        rx = launch(shard, attempt);
                    } else if retry.fallback_sequential {
                        // Degraded mode: run the shard on the calling
                        // thread (no chaos — it models crashy workers).
                        let mut shard_machine = machine.clone();
                        shard_machine.reset_stats();
                        break run_one_shard(
                            tape,
                            &mut shard_machine,
                            snapshot,
                            &chunks[shard],
                            ql,
                            telemetry,
                            shard,
                        )?;
                    } else {
                        return Err(EngineError::from_shard_panic(ShardPanic {
                            shard,
                            attempts: attempt + 1,
                            payload,
                        }));
                    }
                }
            }
        };
        outs.push(out);
    }
    Ok(outs)
}
