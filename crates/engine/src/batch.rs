//! Batched parallel execution: shard the query loop across worker
//! threads, each with its own [`CamDevice`] clone, then merge results
//! and statistics deterministically.
//!
//! ## Protocol
//!
//! 1. Run the tape up to the query loop (setup: allocation +
//!    programming) on the caller's machine.
//! 2. Split the loop's iteration space into `threads` contiguous shards.
//!    Each worker gets a frozen snapshot of the slot file and a
//!    `clone()` + `reset_stats()` fork of the machine, and runs its
//!    iterations exactly as the sequential VM would.
//! 3. Merge, in shard order: every changed buffer element is copied back
//!    (iterations write disjoint accumulator rows — guaranteed by the
//!    compiler's query-loop conditions — so this reproduces the
//!    sequential result bit-for-bit), and each shard's cost delta is
//!    folded into the caller's machine with
//!    [`CamDevice::absorb_delta`].
//! 4. Run the rest of the tape (final reduce + return) on the caller's
//!    machine.
//!
//! Outputs are bit-identical to the sequential engines. Statistics are
//! deterministic (merge order is shard order, independent of thread
//! scheduling) and equal to the sequential run up to floating-point
//! summation ordering in latency/energy totals; operation counts are
//! exact.
//!
//! ## Intra-query sharding
//!
//! When the query loop cannot be sharded — no query loop was detected,
//! or it has fewer than two iterations (single-query workloads: dtree
//! classification, one-vector HDC classify) — the executor instead
//! enables sharding *within* a query: the compiler marks the query
//! nest's `scf.parallel` loops over independent subarray groups (see
//! `compile`), and the VM fans their iterations across the same worker
//! pool. Workers run on machine clones whose per-iteration latencies
//! fold through a parallel timing scope exactly like the sequential
//! interleaving (`max` is order-independent, so latency stays
//! bit-identical); buffer accumulation is handled by a **merge
//! replay**: workers log each `cam.merge_partial_subarray` and the main
//! thread re-applies them in global iteration order, which keeps
//! floating-point score accumulation — and therefore every output —
//! bit-identical to the sequential run. Energy totals agree up to
//! summation order, as with query-loop sharding.

use crate::compile::Tape;
use crate::error::EngineError;
use crate::frozen::{freeze, thaw, Frozen};
use crate::isa::QueryLoop;
use crate::vm::TapeVm;
use c4cam_camsim::{CamDevice, ExecStats};
use c4cam_runtime::Value;
use c4cam_telemetry::{cat, ArgValue, Telemetry};

type BResult<T> = Result<T, EngineError>;

/// What one worker shard reports back.
struct ShardOut {
    /// Cost delta of this shard's iterations.
    stats: ExecStats,
    /// Final contents of every slot that held a buffer at fork time.
    buffers: Vec<(usize, c4cam_tensor::Tensor)>,
}

impl Tape {
    /// Execute the tape with the query loop sharded across `threads`
    /// worker threads (see the module docs for the protocol).
    ///
    /// Falls back to the sequential [`Tape::run`] when no query loop was
    /// detected, `threads <= 1`, or the loop has fewer than two
    /// iterations.
    ///
    /// # Errors
    /// Propagates compile-surface and runtime failures; a panicking
    /// worker surfaces as an error.
    pub fn run_batched<D: CamDevice>(
        &self,
        machine: &mut D,
        args: &[Value],
        threads: usize,
    ) -> BResult<Vec<Value>> {
        self.run_batched_with_telemetry(machine, args, threads, &Telemetry::default())
    }

    /// [`Tape::run_batched`] with a telemetry handle: while the recorder
    /// is enabled, the main lane records sampled per-op spans and each
    /// worker shard records a `cat::SHARD` span on lane `1 + shard`.
    /// Outputs and device statistics are unaffected.
    ///
    /// # Errors
    /// Propagates compile-surface and runtime failures; a panicking
    /// worker surfaces as an error.
    pub fn run_batched_with_telemetry<D: CamDevice>(
        &self,
        machine: &mut D,
        args: &[Value],
        threads: usize,
        telemetry: &Telemetry,
    ) -> BResult<Vec<Value>> {
        if threads <= 1 {
            return self.run_with_telemetry(machine, args, telemetry);
        }
        let Some(ql) = self.query_loop else {
            // No query loop to shard across: fall back to intra-query
            // sharding of the parallel subarray-group loops.
            let mut vm = TapeVm::new(self, args)?;
            vm.set_telemetry(telemetry.clone());
            vm.set_shard_threads(threads);
            let out = vm.exec(machine, 0, usize::MAX)?;
            return out.ok_or_else(|| EngineError::new("function body ended without func.return"));
        };
        let mut vm = TapeVm::new(self, args)?;
        vm.set_telemetry(telemetry.clone());
        // Phase 1: setup.
        if vm.exec(machine, 0, ql.enter)?.is_some() {
            return Err(EngineError::new("function returned before the query loop"));
        }
        let (lb, ub, step) = vm.loop_bounds(ql.enter)?;
        if step <= 0 {
            return Err(EngineError::new("loop step must be positive"));
        }
        let iters: Vec<i64> = (lb..ub).step_by(step as usize).collect();
        if iters.len() < 2 {
            // A single query cannot shard across iterations — shard the
            // subarray-group loops inside it instead.
            vm.set_shard_threads(threads);
            let out = vm.exec(machine, ql.enter, usize::MAX)?;
            return out.ok_or_else(|| EngineError::new("function body ended without func.return"));
        }

        // Phase 2: fork and run shards.
        let shard_count = threads.min(iters.len());
        let snapshot: Vec<Frozen> = vm.slots().iter().map(freeze).collect();
        let chunk = iters.len().div_ceil(shard_count);
        let chunks: Vec<&[i64]> = iters.chunks(chunk).collect();
        let shard_outs = run_shards(self, machine, &snapshot, &chunks, ql, telemetry)?;

        // Phase 3: deterministic merge, in shard order.
        for out in &shard_outs {
            machine.absorb_delta(&out.stats);
            for &(slot, ref tensor) in &out.buffers {
                let Frozen::Buffer(base) = &snapshot[slot] else {
                    // The slot was (re)defined inside the loop body; its
                    // post-loop value is dead.
                    continue;
                };
                let Value::Buffer(main) = &vm.slots()[slot] else {
                    continue;
                };
                let mut main = main.borrow_mut();
                let dst = main.data_mut();
                for (e, (&new, &old)) in tensor.data().iter().zip(base.data()).enumerate() {
                    if new.to_bits() != old.to_bits() {
                        dst[e] = new;
                    }
                }
            }
        }

        // Phase 4: epilogue (reduce + return), skipping the loop.
        let out = vm.exec(machine, ql.exit, usize::MAX)?;
        out.ok_or_else(|| EngineError::new("function body ended without func.return"))
    }
}

fn run_shards<D: CamDevice>(
    tape: &Tape,
    machine: &D,
    snapshot: &[Frozen],
    chunks: &[&[i64]],
    ql: QueryLoop,
    telemetry: &Telemetry,
) -> BResult<Vec<ShardOut>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(shard, &chunk)| {
                let mut shard_machine = machine.clone();
                shard_machine.reset_stats();
                let telemetry = telemetry.clone();
                scope.spawn(move || -> BResult<ShardOut> {
                    let lane = shard as u32 + 1;
                    let start_ns = telemetry.now_ns();
                    let slots: Vec<Value> = snapshot.iter().map(thaw).collect();
                    let mut vm = TapeVm::with_slots(tape, slots);
                    vm.set_telemetry_lane(telemetry.clone(), lane);
                    vm.exec_iterations(&mut shard_machine, ql.enter, ql.next, ql.iv, chunk, false)?;
                    if telemetry.enabled() {
                        let end_ns = telemetry.now_ns();
                        telemetry.record_span(
                            format!("shard-{shard}"),
                            cat::SHARD,
                            lane,
                            start_ns,
                            end_ns.saturating_sub(start_ns),
                            vec![("iterations", ArgValue::Int(chunk.len() as i64))],
                        );
                    }
                    let buffers = vm
                        .slots()
                        .iter()
                        .enumerate()
                        .filter_map(|(i, v)| match v {
                            Value::Buffer(b) => Some((i, b.borrow().clone())),
                            _ => None,
                        })
                        .collect();
                    Ok(ShardOut {
                        stats: shard_machine.stats(),
                        buffers,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| EngineError::new("worker shard panicked"))?
            })
            .collect()
    })
}
