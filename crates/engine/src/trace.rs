//! Deterministic, replayable op traces.
//!
//! [`Tape::run_traced`](crate::Tape::run_traced) executes a compiled
//! tape while recording every
//! device-relevant operation — allocation, row programming, searches
//! (with resolved row selections), result reads (with shapes),
//! partial-score merges, reductions, phase markers, and timing-scope
//! transitions — together with the value dataflow that connects them.
//! The resulting [`Trace`] is self-contained: [`Trace::replay`]
//! re-executes the recorded operations against any fresh
//! [`CamDevice`] and reconstructs the function outputs without the
//! tape, the IR, or the original inputs. On a
//! [`c4cam_camsim::CamMachine`] the replayed op/scope sequence is
//! identical to the recorded run, so outputs *and* statistics are
//! bit-identical.
//!
//! Traces serialize to a line-based text format ([`Trace::to_text`] /
//! [`Trace::parse`]) with every float written as its raw bit pattern
//! in hex, so emission is byte-exact and round-trips losslessly —
//! suitable for golden-file testing and offline analysis.
//!
//! Host-side values flow through *value ids* (`%n` in the text form):
//! device reads and buffer allocations define ids, merges and
//! reductions consume and mutate them, and host-computed tensors
//! (query slices, constants, function arguments) are materialized as
//! literal records the first time a recorded operation consumes them.

use crate::error::EngineError;
use crate::isa::Slot;
use c4cam_arch::tech::Level;
use c4cam_arch::{MatchKind, Metric};
use c4cam_camsim::{ArrayId, BankId, CamDevice, MatId, RowSelection, SearchSpec, SubarrayId};
use c4cam_runtime::kernels::{merge_partial_rows, read_tensors, reduce_scores};
use c4cam_runtime::Value;
use c4cam_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;

/// Magic first line of the text serialization.
const MAGIC: &str = "c4cam-trace v1";

fn err(message: impl Into<String>) -> EngineError {
    EngineError::new(message)
}

/// One recorded operation (see the [module docs](self) for the model).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// Allocate a bank (ids are assigned in record order).
    AllocBank,
    /// Allocate a mat under the `bank`-th recorded bank.
    AllocMat {
        /// Parent bank id.
        bank: usize,
    },
    /// Allocate an array under the `mat`-th recorded mat.
    AllocArray {
        /// Parent mat id.
        mat: usize,
    },
    /// Allocate a subarray under the `array`-th recorded array.
    AllocSubarray {
        /// Parent array id.
        array: usize,
    },
    /// Program rows starting at `row_off`.
    Write {
        /// Target subarray id.
        sub: usize,
        /// First programmed row.
        row_off: usize,
        /// Row payloads.
        rows: Vec<Vec<f32>>,
    },
    /// Search one subarray with a fully resolved spec.
    Search {
        /// Target subarray id.
        sub: usize,
        /// Match scheme.
        kind: MatchKind,
        /// Distance metric.
        metric: Metric,
        /// Selective row window `(start, len)`, when restricted.
        selection: Option<(usize, usize)>,
        /// Threshold-match radius, when set.
        threshold: Option<f64>,
        /// Broadcast-share fraction, when set.
        share: Option<f64>,
        /// Query payload.
        query: Vec<f32>,
    },
    /// Read the last search result back into two fresh values.
    Read {
        /// Source subarray id.
        sub: usize,
        /// Result shape.
        shape: Vec<usize>,
        /// Value id receiving the distances tensor.
        vals: u32,
        /// Value id receiving the row-id tensor.
        idx: u32,
    },
    /// Define a zero-initialized value of the given shape.
    Buffer {
        /// Buffer shape.
        shape: Vec<usize>,
        /// Defined value id.
        out: u32,
    },
    /// Define a value from a literal tensor (host-computed data).
    Literal {
        /// Payload.
        data: Tensor,
        /// Defined value id.
        out: u32,
    },
    /// Define a value as a copy of `src`'s *current* contents.
    Snapshot {
        /// Source value id.
        src: u32,
        /// Defined value id.
        out: u32,
    },
    /// Merge partial scores `vals`/`idx` into row `q` of `acc`.
    MergePartial {
        /// Accumulator value id (mutated).
        acc: u32,
        /// Partial distances value id.
        vals: u32,
        /// Partial row-id value id.
        idx: u32,
        /// Target accumulator row.
        q: usize,
        /// Column offset of the partial scores.
        offset: i64,
    },
    /// Charge one hierarchy-level merge.
    MergeLevel {
        /// Hierarchy level.
        level: Level,
        /// Merged element count.
        elems: usize,
    },
    /// Record a named phase snapshot.
    Phase {
        /// Phase name.
        name: String,
    },
    /// Open a parallel timing scope.
    PushParallel,
    /// Open a sequential timing scope.
    PushSequential,
    /// Close the innermost timing scope.
    PopScope,
    /// Final top-k reduction over an accumulated score matrix.
    Reduce {
        /// Accumulator value id.
        acc: u32,
        /// Top-k count.
        k: usize,
        /// Valid column count.
        n_valid: usize,
        /// Sort direction.
        largest: bool,
        /// Metric keyword (score post-processing).
        metric: String,
        /// Output shape of the distances tensor.
        vals_shape: Vec<usize>,
        /// Output shape of the row-id tensor.
        idx_shape: Vec<usize>,
        /// Value id receiving the distances.
        vals: u32,
        /// Value id receiving the row ids.
        idx: u32,
    },
    /// Function return: the trace's outputs, in order.
    Return {
        /// Returned value ids.
        values: Vec<u32>,
    },
}

/// A recorded run: an ordered list of [`TraceOp`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// The recorded operations, in execution order.
    pub ops: Vec<TraceOp>,
}

/// Recording state carried by the VM while tracing (slot → value id).
#[derive(Debug)]
pub(crate) struct TraceState {
    pub(crate) ops: Vec<TraceOp>,
    vids: Vec<Option<u32>>,
    next: u32,
}

impl TraceState {
    pub(crate) fn new(n_slots: usize) -> TraceState {
        TraceState {
            ops: Vec::new(),
            vids: vec![None; n_slots],
            next: 0,
        }
    }

    pub(crate) fn fresh(&mut self) -> u32 {
        let v = self.next;
        self.next += 1;
        v
    }

    pub(crate) fn vid(&self, s: Slot) -> Option<u32> {
        self.vids[s as usize]
    }

    pub(crate) fn set_vid(&mut self, s: Slot, v: u32) {
        self.vids[s as usize] = Some(v);
    }

    pub(crate) fn clear(&mut self, s: Slot) {
        self.vids[s as usize] = None;
    }

    pub(crate) fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }
}

// ----------------------------------------------------------------------
// Serialization
// ----------------------------------------------------------------------

fn f32_hex(v: f32) -> String {
    format!("{:08x}", v.to_bits())
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn level_keyword(level: Level) -> &'static str {
    match level {
        Level::Bank => "bank",
        Level::Mat => "mat",
        Level::Array => "array",
        Level::Subarray => "subarray",
    }
}

fn level_from_keyword(s: &str) -> Option<Level> {
    match s {
        "bank" => Some(Level::Bank),
        "mat" => Some(Level::Mat),
        "array" => Some(Level::Array),
        "subarray" => Some(Level::Subarray),
        _ => None,
    }
}

fn push_shape(out: &mut String, shape: &[usize]) {
    use fmt::Write;
    let _ = write!(out, " {}", shape.len());
    for d in shape {
        let _ = write!(out, " {d}");
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl Trace {
    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace records nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Serialize to the line-based text format (byte-exact: floats are
    /// written as raw bit patterns in hex).
    pub fn to_text(&self) -> String {
        use fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC}");
        for op in &self.ops {
            match op {
                TraceOp::AllocBank => s.push_str("bank"),
                TraceOp::AllocMat { bank } => {
                    let _ = write!(s, "mat {bank}");
                }
                TraceOp::AllocArray { mat } => {
                    let _ = write!(s, "array {mat}");
                }
                TraceOp::AllocSubarray { array } => {
                    let _ = write!(s, "sub {array}");
                }
                TraceOp::Write { sub, row_off, rows } => {
                    let _ = write!(s, "write {sub} {row_off} {}", rows.len());
                    for row in rows {
                        let _ = write!(s, " {}", row.len());
                        for &v in row {
                            let _ = write!(s, " {}", f32_hex(v));
                        }
                    }
                }
                TraceOp::Search {
                    sub,
                    kind,
                    metric,
                    selection,
                    threshold,
                    share,
                    query,
                } => {
                    let _ = write!(s, "search {sub} {} {}", kind.keyword(), metric.keyword());
                    match selection {
                        Some((start, len)) => {
                            let _ = write!(s, " {start} {len}");
                        }
                        None => s.push_str(" - -"),
                    }
                    match threshold {
                        Some(t) => {
                            let _ = write!(s, " {}", f64_hex(*t));
                        }
                        None => s.push_str(" -"),
                    }
                    match share {
                        Some(sh) => {
                            let _ = write!(s, " {}", f64_hex(*sh));
                        }
                        None => s.push_str(" -"),
                    }
                    let _ = write!(s, " {}", query.len());
                    for &v in query {
                        let _ = write!(s, " {}", f32_hex(v));
                    }
                }
                TraceOp::Read {
                    sub,
                    shape,
                    vals,
                    idx,
                } => {
                    let _ = write!(s, "read {sub} %{vals} %{idx}");
                    push_shape(&mut s, shape);
                }
                TraceOp::Buffer { shape, out } => {
                    let _ = write!(s, "buf %{out}");
                    push_shape(&mut s, shape);
                }
                TraceOp::Literal { data, out } => {
                    let _ = write!(s, "lit %{out}");
                    push_shape(&mut s, data.shape());
                    for &v in data.data() {
                        let _ = write!(s, " {}", f32_hex(v));
                    }
                }
                TraceOp::Snapshot { src, out } => {
                    let _ = write!(s, "snap %{out} %{src}");
                }
                TraceOp::MergePartial {
                    acc,
                    vals,
                    idx,
                    q,
                    offset,
                } => {
                    let _ = write!(s, "merge %{acc} %{vals} %{idx} {q} {offset}");
                }
                TraceOp::MergeLevel { level, elems } => {
                    let _ = write!(s, "mergelevel {} {elems}", level_keyword(*level));
                }
                TraceOp::Phase { name } => {
                    let _ = write!(s, "phase {name}");
                }
                TraceOp::PushParallel => s.push_str("par"),
                TraceOp::PushSequential => s.push_str("seq"),
                TraceOp::PopScope => s.push_str("pop"),
                TraceOp::Reduce {
                    acc,
                    k,
                    n_valid,
                    largest,
                    metric,
                    vals_shape,
                    idx_shape,
                    vals,
                    idx,
                } => {
                    let _ = write!(
                        s,
                        "reduce %{acc} {k} {n_valid} {} {metric}",
                        u8::from(*largest)
                    );
                    push_shape(&mut s, vals_shape);
                    push_shape(&mut s, idx_shape);
                    let _ = write!(s, " %{vals} %{idx}");
                }
                TraceOp::Return { values } => {
                    let _ = write!(s, "ret {}", values.len());
                    for v in values {
                        let _ = write!(s, " %{v}");
                    }
                }
            }
            s.push('\n');
        }
        s.push_str("end\n");
        s
    }

    /// Parse the text format back into a trace.
    ///
    /// # Errors
    /// Fails on a bad magic line, an unknown record, a malformed or
    /// truncated payload, or a missing `end` marker.
    pub fn parse(text: &str) -> Result<Trace, EngineError> {
        let mut lines = text.lines().enumerate();
        let Some((_, magic)) = lines.next() else {
            return Err(err("empty trace"));
        };
        if magic != MAGIC {
            return Err(err(format!(
                "bad trace magic {magic:?} (expected {MAGIC:?})"
            )));
        }
        let mut ops = Vec::new();
        let mut ended = false;
        for (n, line) in lines {
            let lineno = n + 1;
            if ended && !line.trim().is_empty() {
                return Err(err(format!("line {lineno}: content after end marker")));
            }
            if ended || line.trim().is_empty() {
                continue;
            }
            let mut p = Parser::new(line, lineno);
            let opname = p.token()?;
            let op = match opname {
                "end" => {
                    ended = true;
                    continue;
                }
                "bank" => TraceOp::AllocBank,
                "mat" => TraceOp::AllocMat { bank: p.usize()? },
                "array" => TraceOp::AllocArray { mat: p.usize()? },
                "sub" => TraceOp::AllocSubarray { array: p.usize()? },
                "write" => {
                    let sub = p.usize()?;
                    let row_off = p.usize()?;
                    let nrows = p.usize()?;
                    let mut rows = Vec::with_capacity(nrows);
                    for _ in 0..nrows {
                        let len = p.usize()?;
                        let mut row = Vec::with_capacity(len);
                        for _ in 0..len {
                            row.push(p.f32()?);
                        }
                        rows.push(row);
                    }
                    TraceOp::Write { sub, row_off, rows }
                }
                "search" => {
                    let sub = p.usize()?;
                    let kind = p.token()?;
                    let kind = MatchKind::from_keyword(kind)
                        .ok_or_else(|| p.fail(format!("unknown match kind {kind:?}")))?;
                    let metric = p.token()?;
                    let metric = Metric::from_keyword(metric)
                        .ok_or_else(|| p.fail(format!("unknown metric {metric:?}")))?;
                    let start = p.opt_usize()?;
                    let len = p.opt_usize()?;
                    let selection = match (start, len) {
                        (Some(s), Some(l)) => Some((s, l)),
                        (None, None) => None,
                        _ => return Err(p.fail("half-specified row selection")),
                    };
                    let threshold = p.opt_f64()?;
                    let share = p.opt_f64()?;
                    let qlen = p.usize()?;
                    let mut query = Vec::with_capacity(qlen);
                    for _ in 0..qlen {
                        query.push(p.f32()?);
                    }
                    TraceOp::Search {
                        sub,
                        kind,
                        metric,
                        selection,
                        threshold,
                        share,
                        query,
                    }
                }
                "read" => {
                    let sub = p.usize()?;
                    let vals = p.vid()?;
                    let idx = p.vid()?;
                    let shape = p.shape()?;
                    TraceOp::Read {
                        sub,
                        shape,
                        vals,
                        idx,
                    }
                }
                "buf" => {
                    let out = p.vid()?;
                    let shape = p.shape()?;
                    TraceOp::Buffer { shape, out }
                }
                "lit" => {
                    let out = p.vid()?;
                    let shape = p.shape()?;
                    let len = shape.iter().product();
                    let mut data = Vec::with_capacity(len);
                    for _ in 0..len {
                        data.push(p.f32()?);
                    }
                    let data = Tensor::from_vec(shape, data).map_err(|e| p.fail(e.message))?;
                    TraceOp::Literal { data, out }
                }
                "snap" => {
                    let out = p.vid()?;
                    let src = p.vid()?;
                    TraceOp::Snapshot { src, out }
                }
                "merge" => TraceOp::MergePartial {
                    acc: p.vid()?,
                    vals: p.vid()?,
                    idx: p.vid()?,
                    q: p.usize()?,
                    offset: p.i64()?,
                },
                "mergelevel" => {
                    let level = p.token()?;
                    let level = level_from_keyword(level)
                        .ok_or_else(|| p.fail(format!("unknown merge level {level:?}")))?;
                    TraceOp::MergeLevel {
                        level,
                        elems: p.usize()?,
                    }
                }
                "phase" => TraceOp::Phase {
                    name: p.rest().to_string(),
                },
                "par" => TraceOp::PushParallel,
                "seq" => TraceOp::PushSequential,
                "pop" => TraceOp::PopScope,
                "reduce" => TraceOp::Reduce {
                    acc: p.vid()?,
                    k: p.usize()?,
                    n_valid: p.usize()?,
                    largest: p.usize()? != 0,
                    metric: p.token()?.to_string(),
                    vals_shape: p.shape()?,
                    idx_shape: p.shape()?,
                    vals: p.vid()?,
                    idx: p.vid()?,
                },
                "ret" => {
                    let n = p.usize()?;
                    let mut values = Vec::with_capacity(n);
                    for _ in 0..n {
                        values.push(p.vid()?);
                    }
                    TraceOp::Return { values }
                }
                other => return Err(p.fail(format!("unknown trace record {other:?}"))),
            };
            if opname != "phase" {
                p.finish()?;
            }
            ops.push(op);
        }
        if !ended {
            return Err(err("truncated trace: missing end marker"));
        }
        Ok(Trace { ops })
    }

    /// Re-execute the recorded operations against a fresh device and
    /// reconstruct the function outputs (as tensors, in return order).
    ///
    /// # Errors
    /// Fails on device errors, undefined value ids, or a trace with no
    /// return record.
    pub fn replay<D: CamDevice>(&self, device: &mut D) -> Result<Vec<Value>, EngineError> {
        let mut banks: Vec<BankId> = Vec::new();
        let mut mats: Vec<MatId> = Vec::new();
        let mut arrays: Vec<ArrayId> = Vec::new();
        let mut subs: Vec<SubarrayId> = Vec::new();
        let mut store: HashMap<u32, Tensor> = HashMap::new();
        let mut out: Option<Vec<Value>> = None;

        fn get(store: &HashMap<u32, Tensor>, v: u32) -> Result<&Tensor, EngineError> {
            store
                .get(&v)
                .ok_or_else(|| err(format!("trace references undefined value %{v}")))
        }
        fn sub_id(subs: &[SubarrayId], sub: usize) -> Result<SubarrayId, EngineError> {
            subs.get(sub)
                .copied()
                .ok_or_else(|| err(format!("trace references unallocated subarray {sub}")))
        }

        for op in &self.ops {
            if out.is_some() {
                return Err(err("trace continues after its return record"));
            }
            match op {
                TraceOp::AllocBank => banks.push(device.alloc_bank().map_err(|e| err(e.message))?),
                TraceOp::AllocMat { bank } => {
                    let parent = banks
                        .get(*bank)
                        .copied()
                        .ok_or_else(|| err(format!("trace references unallocated bank {bank}")))?;
                    mats.push(device.alloc_mat(parent).map_err(|e| err(e.message))?);
                }
                TraceOp::AllocArray { mat } => {
                    let parent = mats
                        .get(*mat)
                        .copied()
                        .ok_or_else(|| err(format!("trace references unallocated mat {mat}")))?;
                    arrays.push(device.alloc_array(parent).map_err(|e| err(e.message))?);
                }
                TraceOp::AllocSubarray { array } => {
                    let parent = arrays.get(*array).copied().ok_or_else(|| {
                        err(format!("trace references unallocated array {array}"))
                    })?;
                    subs.push(device.alloc_subarray(parent).map_err(|e| err(e.message))?);
                }
                TraceOp::Write { sub, row_off, rows } => {
                    device
                        .write_rows(sub_id(&subs, *sub)?, *row_off, rows)
                        .map_err(|e| err(e.message))?;
                }
                TraceOp::Search {
                    sub,
                    kind,
                    metric,
                    selection,
                    threshold,
                    share,
                    query,
                } => {
                    let mut spec = SearchSpec::new(*kind, *metric);
                    if let Some((start, len)) = selection {
                        spec = spec.with_selection(RowSelection::Window {
                            start: *start,
                            len: *len,
                        });
                    }
                    if let Some(t) = threshold {
                        spec = spec.with_threshold(*t);
                    }
                    if let Some(sh) = share {
                        spec = spec.with_broadcast_share(*sh);
                    }
                    device
                        .search(sub_id(&subs, *sub)?, query, spec)
                        .map_err(|e| err(e.message))?;
                }
                TraceOp::Read {
                    sub,
                    shape,
                    vals,
                    idx,
                } => {
                    let result = device
                        .read(sub_id(&subs, *sub)?)
                        .map_err(|e| err(e.message))?;
                    let (v, i) = read_tensors(result, shape).map_err(err)?;
                    store.insert(*vals, v);
                    store.insert(*idx, i);
                }
                TraceOp::Buffer { shape, out } => {
                    store.insert(*out, Tensor::zeros(shape.clone()));
                }
                TraceOp::Literal { data, out } => {
                    store.insert(*out, data.clone());
                }
                TraceOp::Snapshot { src, out } => {
                    let t = get(&store, *src)?.clone();
                    store.insert(*out, t);
                }
                TraceOp::MergePartial {
                    acc,
                    vals,
                    idx,
                    q,
                    offset,
                } => {
                    let vals = get(&store, *vals)?.clone();
                    let idx = get(&store, *idx)?.clone();
                    let a = store
                        .get_mut(acc)
                        .ok_or_else(|| err(format!("trace references undefined value %{acc}")))?;
                    merge_partial_rows(a, &vals, &idx, *q, *offset).map_err(err)?;
                }
                TraceOp::MergeLevel { level, elems } => device.merge(*level, *elems),
                TraceOp::Phase { name } => device.mark_phase(name),
                TraceOp::PushParallel => device.push_parallel(),
                TraceOp::PushSequential => device.push_sequential(),
                TraceOp::PopScope => device.pop_scope(),
                TraceOp::Reduce {
                    acc,
                    k,
                    n_valid,
                    largest,
                    metric,
                    vals_shape,
                    idx_shape,
                    vals,
                    idx,
                } => {
                    let a = get(&store, *acc)?;
                    let (v, i) =
                        reduce_scores(a, *k, *n_valid, *largest, metric, true).map_err(err)?;
                    let v = v.reshape(vals_shape.clone()).map_err(|e| err(e.message))?;
                    let i = i.reshape(idx_shape.clone()).map_err(|e| err(e.message))?;
                    store.insert(*vals, v);
                    store.insert(*idx, i);
                }
                TraceOp::Return { values } => {
                    let mut vs = Vec::with_capacity(values.len());
                    for v in values {
                        vs.push(Value::Tensor(get(&store, *v)?.clone()));
                    }
                    out = Some(vs);
                }
            }
        }
        out.ok_or_else(|| err("trace has no return record"))
    }
}

/// Whitespace-token parser for one trace line.
struct Parser<'a> {
    tokens: std::str::SplitWhitespace<'a>,
    line: &'a str,
    lineno: usize,
}

impl<'a> Parser<'a> {
    fn new(line: &'a str, lineno: usize) -> Parser<'a> {
        Parser {
            tokens: line.split_whitespace(),
            line,
            lineno,
        }
    }

    fn fail(&self, message: impl fmt::Display) -> EngineError {
        err(format!("line {}: {message}", self.lineno))
    }

    fn token(&mut self) -> Result<&'a str, EngineError> {
        self.tokens
            .next()
            .ok_or_else(|| self.fail("truncated record"))
    }

    fn usize(&mut self) -> Result<usize, EngineError> {
        let t = self.token()?;
        t.parse()
            .map_err(|_| self.fail(format!("expected an integer, got {t:?}")))
    }

    fn i64(&mut self) -> Result<i64, EngineError> {
        let t = self.token()?;
        t.parse()
            .map_err(|_| self.fail(format!("expected an integer, got {t:?}")))
    }

    fn vid(&mut self) -> Result<u32, EngineError> {
        let t = self.token()?;
        let Some(n) = t.strip_prefix('%') else {
            return Err(self.fail(format!("expected a value id, got {t:?}")));
        };
        n.parse()
            .map_err(|_| self.fail(format!("bad value id {t:?}")))
    }

    fn f32(&mut self) -> Result<f32, EngineError> {
        let t = self.token()?;
        u32::from_str_radix(t, 16)
            .map(f32::from_bits)
            .map_err(|_| self.fail(format!("bad f32 bit pattern {t:?}")))
    }

    fn opt_usize(&mut self) -> Result<Option<usize>, EngineError> {
        let t = self.token()?;
        if t == "-" {
            return Ok(None);
        }
        t.parse()
            .map(Some)
            .map_err(|_| self.fail(format!("expected an integer or '-', got {t:?}")))
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, EngineError> {
        let t = self.token()?;
        if t == "-" {
            return Ok(None);
        }
        u64::from_str_radix(t, 16)
            .map(|b| Some(f64::from_bits(b)))
            .map_err(|_| self.fail(format!("bad f64 bit pattern {t:?}")))
    }

    fn shape(&mut self) -> Result<Vec<usize>, EngineError> {
        let rank = self.usize()?;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(self.usize()?);
        }
        Ok(dims)
    }

    fn rest(&mut self) -> &'a str {
        let rest = self.tokens.next().map_or("", |first| {
            let start = first.as_ptr() as usize - self.line.as_ptr() as usize;
            &self.line[start..]
        });
        self.tokens = "".split_whitespace();
        rest
    }

    fn finish(&mut self) -> Result<(), EngineError> {
        match self.tokens.next() {
            None => Ok(()),
            Some(t) => Err(self.fail(format!("trailing token {t:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            ops: vec![
                TraceOp::AllocBank,
                TraceOp::AllocMat { bank: 0 },
                TraceOp::AllocArray { mat: 0 },
                TraceOp::AllocSubarray { array: 0 },
                TraceOp::Write {
                    sub: 0,
                    row_off: 0,
                    rows: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
                },
                TraceOp::PushParallel,
                TraceOp::PushSequential,
                TraceOp::Search {
                    sub: 0,
                    kind: MatchKind::Best,
                    metric: Metric::Hamming,
                    selection: Some((0, 2)),
                    threshold: None,
                    share: Some(0.5),
                    query: vec![1.0, 1.0],
                },
                TraceOp::Read {
                    sub: 0,
                    shape: vec![1, 1],
                    vals: 0,
                    idx: 1,
                },
                TraceOp::PopScope,
                TraceOp::PopScope,
                TraceOp::Buffer {
                    shape: vec![1, 2],
                    out: 2,
                },
                TraceOp::MergePartial {
                    acc: 2,
                    vals: 0,
                    idx: 1,
                    q: 0,
                    offset: 0,
                },
                TraceOp::MergeLevel {
                    level: Level::Array,
                    elems: 2,
                },
                TraceOp::Phase {
                    name: "setup-complete".to_string(),
                },
                TraceOp::Reduce {
                    acc: 2,
                    k: 1,
                    n_valid: 2,
                    largest: false,
                    metric: "hamming".to_string(),
                    vals_shape: vec![1, 1],
                    idx_shape: vec![1, 1],
                    vals: 3,
                    idx: 4,
                },
                TraceOp::Return { values: vec![3, 4] },
            ],
        }
    }

    #[test]
    fn text_round_trips_losslessly() {
        let t = sample();
        let text = t.to_text();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(t, back);
        // Byte-exact re-emission.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn replay_executes_on_a_machine() {
        use c4cam_arch::ArchSpec;
        use c4cam_camsim::CamMachine;
        let t = sample();
        let mut m = CamMachine::new(&ArchSpec::default());
        let out = t.replay(&mut m).unwrap();
        assert_eq!(out.len(), 2);
        let idx = out[1].snapshot_tensor().unwrap();
        assert_eq!(idx.data(), &[1.0]); // row 1 is the best match
        let stats = m.stats();
        assert_eq!(stats.search_ops, 1);
        assert_eq!(stats.read_ops, 1);
        assert_eq!(stats.merge_ops, 1);
        assert_eq!(m.phase("setup-complete").unwrap().search_ops, 1);
    }

    #[test]
    fn parse_rejects_corruption() {
        let good = sample().to_text();
        // Bad magic.
        assert!(Trace::parse("not-a-trace\nend\n").is_err());
        // Missing end marker.
        let truncated = good.trim_end_matches("end\n");
        assert!(Trace::parse(truncated).is_err());
        // Unknown record.
        let unknown = good.replace("mergelevel array 2", "frobnicate 1");
        assert!(Trace::parse(&unknown).is_err());
        // Bad hex payload.
        let bad_hex = good.replace("3f800000", "zzzzzzzz");
        assert!(Trace::parse(&bad_hex).is_err());
        // Trailing garbage on a record.
        let trailing = good.replace("mergelevel array 2", "mergelevel array 2 9");
        assert!(Trace::parse(&trailing).is_err());
        // Content after end.
        let after = format!("{good}bank\n");
        assert!(Trace::parse(&after).is_err());
    }

    #[test]
    fn replay_rejects_dangling_references() {
        // Undefined value id.
        let t = Trace {
            ops: vec![TraceOp::Return { values: vec![7] }],
        };
        let mut m = c4cam_camsim::CamMachine::new(&c4cam_arch::ArchSpec::default());
        assert!(t.replay(&mut m).is_err());
        // Unallocated subarray.
        let t = Trace {
            ops: vec![TraceOp::Write {
                sub: 0,
                row_off: 0,
                rows: vec![vec![1.0]],
            }],
        };
        assert!(t.replay(&mut m).is_err());
        // No return record.
        let t = Trace {
            ops: vec![TraceOp::AllocBank],
        };
        assert!(t.replay(&mut m).is_err());
    }
}
