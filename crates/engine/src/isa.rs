//! The flat CAM-ISA: the instruction set the tape compiler targets.
//!
//! A lowered cam-level module is a small, regular program — allocation
//! and programming nests, a query loop of search/read/merge triples, and
//! a final reduce. The ISA captures exactly that surface as a flat
//! `Vec<Inst>` over a dense register file of *value slots*: every SSA
//! value of the source function is assigned one slot at compile time, so
//! execution never touches IR structures, string op names, or attribute
//! dictionaries.
//!
//! Control flow is explicit program-counter arithmetic:
//!
//! * structured `scf.if` becomes [`Inst::JumpIfNot`] / [`Inst::Jump`];
//! * `scf.for` / `scf.parallel` become a [`Inst::LoopEnter`] /
//!   [`Inst::LoopNext`] bracket. A parallel loop additionally drives the
//!   machine's timing scopes exactly like the tree-walking interpreter
//!   (parallel scope around the loop, a sequential scope per iteration),
//!   so energy/latency accounting is bit-compatible.
//!
//! Device instructions hold *pre-resolved* operands: search kind,
//! metric, threshold and broadcast share are baked into
//! [`SearchInst`] at compile time; `cam.read`/`cam.reduce` carry their
//! declared result shapes; merge levels are parsed once.

use c4cam_arch::tech::Level;
use c4cam_arch::{MatchKind, Metric};
use c4cam_tensor::Tensor;

/// Index of a value slot in the tape's register file.
pub type Slot = u32;

/// Integer ALU operations (`arith.*i` on `index`/`iN` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntBinOp {
    /// `arith.addi` (wrapping).
    Add,
    /// `arith.subi` (wrapping).
    Sub,
    /// `arith.muli` (wrapping).
    Mul,
    /// `arith.divui` (unsigned; traps on zero).
    DivU,
    /// `arith.remui` (unsigned; traps on zero).
    RemU,
    /// `arith.minui` (unsigned).
    MinU,
    /// `arith.maxui` (unsigned).
    MaxU,
}

impl IntBinOp {
    /// Whether `op(a, b) == op(b, a)` — the condition for folding a
    /// constant *left* operand into [`Inst::IntBinImm`], whose
    /// immediate sits on the right.
    pub fn commutes(self) -> bool {
        matches!(
            self,
            IntBinOp::Add | IntBinOp::Mul | IntBinOp::MinU | IntBinOp::MaxU
        )
    }
}

/// Float ALU operations (`arith.*f`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloatBinOp {
    /// `arith.addf`.
    Add,
    /// `arith.subf`.
    Sub,
    /// `arith.mulf`.
    Mul,
    /// `arith.divf`.
    Div,
}

/// `arith.cmpi` predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
}

impl CmpPred {
    /// The predicate with its operands exchanged: `swap().eval(b, a)`
    /// equals `eval(a, b)` (used when folding a constant *left* operand
    /// into [`Inst::IntCmpImm`], whose immediate sits on the right).
    pub fn swap(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Eq,
            CmpPred::Ne => CmpPred::Ne,
            CmpPred::Slt => CmpPred::Sgt,
            CmpPred::Sle => CmpPred::Sge,
            CmpPred::Sgt => CmpPred::Slt,
            CmpPred::Sge => CmpPred::Sle,
            CmpPred::Ult => CmpPred::Ugt,
            CmpPred::Ule => CmpPred::Uge,
            CmpPred::Ugt => CmpPred::Ult,
            CmpPred::Uge => CmpPred::Ule,
        }
    }

    /// Parse the `arith.cmpi` predicate keyword.
    pub fn from_keyword(s: &str) -> Option<CmpPred> {
        Some(match s {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "slt" => CmpPred::Slt,
            "sle" => CmpPred::Sle,
            "sgt" => CmpPred::Sgt,
            "sge" => CmpPred::Sge,
            "ult" => CmpPred::Ult,
            "ule" => CmpPred::Ule,
            "ugt" => CmpPred::Ugt,
            "uge" => CmpPred::Uge,
            _ => return None,
        })
    }

    /// Evaluate the predicate.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Slt => a < b,
            CmpPred::Sle => a <= b,
            CmpPred::Sgt => a > b,
            CmpPred::Sge => a >= b,
            CmpPred::Ult => (a as u64) < (b as u64),
            CmpPred::Ule => (a as u64) <= (b as u64),
            CmpPred::Ugt => (a as u64) > (b as u64),
            CmpPred::Uge => (a as u64) >= (b as u64),
        }
    }
}

/// One `tensor.extract_slice` offset: a compile-time constant or a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceOffset {
    /// Static offset from the `static_offsets` attribute.
    Static(i64),
    /// Dynamic offset read from a slot.
    Dynamic(Slot),
}

/// Pre-resolved `cam.search`: everything the subarray search needs
/// except the runtime query data and (for selective search) the row
/// window bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchInst {
    /// Subarray handle slot.
    pub sub: Slot,
    /// Query tensor slot.
    pub query: Slot,
    /// Match scheme.
    pub kind: MatchKind,
    /// Distance metric.
    pub metric: Metric,
    /// Threshold-match radius, when the op declares one.
    pub threshold: Option<f64>,
    /// Broadcast-share fraction, when the op declares one.
    pub broadcast_share: Option<f64>,
    /// Selective-search row window `(start, len)` slots.
    pub selective: Option<(Slot, Slot)>,
}

/// Pre-resolved `cam.reduce`: the final host-side top-k.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceInst {
    /// Accumulator buffer slot.
    pub acc: Slot,
    /// Neighbours to keep.
    pub k: usize,
    /// Valid accumulator columns.
    pub n_valid: usize,
    /// Select largest (device-score convention already folded in).
    pub select_largest: bool,
    /// Metric keyword (drives the device-score inversion).
    pub metric: Box<str>,
    /// Declared shape of the values result.
    pub vals_shape: Vec<usize>,
    /// Declared shape of the indices result.
    pub idx_shape: Vec<usize>,
    /// Output slot for the values buffer.
    pub vals: Slot,
    /// Output slot for the indices buffer.
    pub idx: Slot,
}

/// One instruction of the flat CAM-ISA.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Load an integer constant (`index` or `iN` typed).
    ConstInt {
        /// Destination slot.
        out: Slot,
        /// Constant payload.
        value: i64,
        /// Whether the result is `index`-typed.
        index: bool,
    },
    /// Load a float constant.
    ConstFloat {
        /// Destination slot.
        out: Slot,
        /// Constant payload.
        value: f64,
    },
    /// Load a boolean constant.
    ConstBool {
        /// Destination slot.
        out: Slot,
        /// Constant payload.
        value: bool,
    },
    /// Load a dense tensor constant.
    ConstTensor {
        /// Destination slot.
        out: Slot,
        /// Constant payload.
        tensor: Tensor,
    },
    /// Copy a slot (loop iter-arg plumbing).
    Copy {
        /// Source slot.
        src: Slot,
        /// Destination slot.
        out: Slot,
    },
    /// Integer ALU op.
    IntBin {
        /// Operation.
        op: IntBinOp,
        /// Left operand slot.
        lhs: Slot,
        /// Right operand slot.
        rhs: Slot,
        /// Destination slot.
        out: Slot,
        /// Whether the result is `index`-typed.
        index: bool,
    },
    /// Float ALU op.
    FloatBin {
        /// Operation.
        op: FloatBinOp,
        /// Left operand slot.
        lhs: Slot,
        /// Right operand slot.
        rhs: Slot,
        /// Destination slot.
        out: Slot,
    },
    /// Integer ALU op with a constant right operand (peephole-fused
    /// from [`Inst::IntBin`] by the tape optimizer).
    IntBinImm {
        /// Operation.
        op: IntBinOp,
        /// Left operand slot.
        lhs: Slot,
        /// Constant right operand.
        imm: i64,
        /// Destination slot.
        out: Slot,
        /// Whether the result is `index`-typed.
        index: bool,
    },
    /// Integer comparison.
    IntCmp {
        /// Predicate.
        pred: CmpPred,
        /// Left operand slot.
        lhs: Slot,
        /// Right operand slot.
        rhs: Slot,
        /// Destination slot.
        out: Slot,
    },
    /// Integer comparison against a constant right operand
    /// (peephole-fused from [`Inst::IntCmp`] by the tape optimizer).
    IntCmpImm {
        /// Predicate.
        pred: CmpPred,
        /// Left operand slot.
        lhs: Slot,
        /// Constant right operand.
        imm: i64,
        /// Destination slot.
        out: Slot,
    },
    /// `arith.index_cast`: re-tag an integer value.
    CastIntLike {
        /// Source slot.
        src: Slot,
        /// Destination slot.
        out: Slot,
        /// Whether the result is `index`-typed.
        index: bool,
    },
    /// Unconditional jump.
    Jump {
        /// Target pc.
        target: usize,
    },
    /// Jump when the condition slot is false.
    JumpIfNot {
        /// Condition slot (`i1`).
        cond: Slot,
        /// Target pc.
        target: usize,
    },
    /// Open a counted loop (`scf.for` / `scf.parallel`).
    LoopEnter {
        /// Lower bound slot.
        lb: Slot,
        /// Upper bound slot.
        ub: Slot,
        /// Step slot.
        step: Slot,
        /// Induction-variable slot.
        iv: Slot,
        /// pc just past the matching [`Inst::LoopNext`].
        exit: usize,
        /// `scf.parallel`: drive the machine's timing scopes.
        parallel: bool,
    },
    /// Close one loop iteration (back-edge or fall-through).
    LoopNext {
        /// pc of the matching [`Inst::LoopEnter`].
        enter: usize,
    },
    /// Return from the function.
    Return {
        /// Result slots.
        values: Vec<Slot>,
    },
    /// `tensor.extract_slice` (rank-2, clamped + zero-padded window).
    ExtractSlice {
        /// Source tensor/buffer slot.
        src: Slot,
        /// Row/column offsets.
        offsets: [SliceOffset; 2],
        /// Window size.
        sizes: [usize; 2],
        /// Destination slot.
        out: Slot,
    },
    /// `memref.alloc`: fresh zeroed buffer.
    AllocBuffer {
        /// Buffer shape.
        shape: Vec<usize>,
        /// Destination slot.
        out: Slot,
    },
    /// `memref.alloc_copy`: buffer initialized from a tensor.
    AllocCopy {
        /// Source tensor slot.
        src: Slot,
        /// Destination slot.
        out: Slot,
    },
    /// `memref.to_tensor`: snapshot a buffer.
    ToTensor {
        /// Source buffer slot.
        src: Slot,
        /// Destination slot.
        out: Slot,
    },
    /// `cam.alloc_bank`.
    AllocBank {
        /// Destination slot.
        out: Slot,
    },
    /// `cam.alloc_mat`.
    AllocMat {
        /// Parent bank handle slot.
        parent: Slot,
        /// Destination slot.
        out: Slot,
    },
    /// `cam.alloc_array`.
    AllocArray {
        /// Parent mat handle slot.
        parent: Slot,
        /// Destination slot.
        out: Slot,
    },
    /// `cam.alloc_subarray`.
    AllocSubarray {
        /// Parent array handle slot.
        parent: Slot,
        /// Destination slot.
        out: Slot,
    },
    /// `cam.store_handle`: record a subarray id in the address table.
    StoreHandle {
        /// Handle-table buffer slot.
        table: Slot,
        /// Position slot.
        pos: Slot,
        /// Subarray handle slot.
        sub: Slot,
    },
    /// `cam.load_handle`: fetch a subarray id from the address table.
    LoadHandle {
        /// Handle-table buffer slot.
        table: Slot,
        /// Position slot.
        pos: Slot,
        /// Destination slot.
        out: Slot,
    },
    /// `cam.write_value`: program stored rows.
    WriteValue {
        /// Subarray handle slot.
        sub: Slot,
        /// Row-data tensor slot.
        data: Slot,
        /// Row-offset slot.
        row_off: Slot,
    },
    /// `cam.search` with a pre-resolved [`SearchInst`].
    Search(Box<SearchInst>),
    /// `cam.read`: read back the last search result.
    Read {
        /// Subarray handle slot.
        sub: Slot,
        /// Declared result shape.
        shape: Vec<usize>,
        /// Output slot for the values buffer.
        vals: Slot,
        /// Output slot for the indices buffer.
        idx: Slot,
    },
    /// `cam.merge_partial_subarray`: scatter-accumulate partial scores.
    MergePartial {
        /// Accumulator buffer slot.
        acc: Slot,
        /// Partial values slot.
        vals: Slot,
        /// Partial indices slot.
        idx: Slot,
        /// Query-row slot.
        q: Slot,
        /// Column-offset slot.
        offset: Slot,
    },
    /// `cam.merge_level`: charge one periphery merge.
    MergeLevel {
        /// Hierarchy level of the merge.
        level: Level,
        /// Elements merged.
        elems: usize,
    },
    /// `cam.phase_marker`: snapshot cumulative statistics.
    PhaseMarker {
        /// Phase name.
        name: Box<str>,
    },
    /// `cam.reduce` with a pre-resolved [`ReduceInst`].
    Reduce(Box<ReduceInst>),
}

/// A scalar constant the tape optimizer stripped from the instruction
/// stream: its slot is preloaded once at VM construction instead of
/// being rewritten on every pass over the tape. (A dedicated plain-data
/// enum rather than a runtime `Value` so `Tape` stays `Send + Sync` —
/// tapes are shared across shard worker threads.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PreConst {
    /// `index`-typed integer.
    Index(i64),
    /// `iN`-typed integer.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// Boolean constant.
    Bool(bool),
}

/// The sequential query loop the batched executor shards across worker
/// threads (detected at compile time; see the compiler docs for the
/// independence conditions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLoop {
    /// pc of the loop's [`Inst::LoopEnter`].
    pub enter: usize,
    /// pc of the loop's [`Inst::LoopNext`].
    pub next: usize,
    /// pc just past the loop.
    pub exit: usize,
    /// Induction-variable slot.
    pub iv: Slot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_predicates_cover_signed_and_unsigned() {
        assert!(!CmpPred::from_keyword("ult").unwrap().eval(-1, 1));
        assert!(CmpPred::from_keyword("slt").unwrap().eval(-1, 1));
        assert!(CmpPred::from_keyword("uge").unwrap().eval(-1, 1));
        assert!(CmpPred::from_keyword("eq").unwrap().eval(3, 3));
        assert!(CmpPred::from_keyword("frob").is_none());
    }
}
