//! The tape VM: executes a compiled [`Tape`] against any
//! [`CamDevice`] (the [`c4cam_camsim::CamMachine`] reference simulator
//! or an alternative device) without touching IR structures.
//!
//! Execution state is a dense slot file (`Vec<Value>`) plus a loop-frame
//! stack; dispatch is a single `match` over pre-resolved instructions.
//! Every device call and timing-scope transition happens in exactly the
//! order the tree-walking interpreter produces, so on the same machine
//! the two engines yield bit-identical outputs *and* statistics.

use crate::compile::Tape;
use crate::error::EngineError;
use crate::frozen::{freeze, thaw, Frozen};
use crate::isa::{FloatBinOp, Inst, IntBinOp, PreConst, SliceOffset, Slot};
use crate::trace::{Trace, TraceOp, TraceState};
use c4cam_camsim::{CamDevice, ExecStats, RowSelection, SearchSpec, SubarrayId};
use c4cam_runtime::kernels::{
    merge_partial_rows, read_tensors, read_tensors_into, reduce_scores, search_query_view,
    tensor_rows,
};
use c4cam_runtime::{Handle, Value};
use c4cam_telemetry::{cat, ArgValue, Telemetry};
use c4cam_tensor::Tensor;
use std::cell::RefCell;
use std::rc::Rc;

type VResult<T> = Result<T, EngineError>;

fn err(message: impl Into<String>) -> EngineError {
    EngineError::new(message)
}

/// Upper bound on tensors parked in a VM's merge arena (a backstop
/// against pathological shard logs, not a tuning knob: merge-record
/// tensors are small per-subarray partials).
const MERGE_ARENA_CAP: usize = 4096;

/// Clone `src`, drawing the backing allocation from `pool` when a
/// recycled tensor of the same shape is available.
fn copy_into_recycled(pool: &mut Vec<Tensor>, src: &Tensor) -> Tensor {
    match pool.pop() {
        Some(mut t) if t.shape() == src.shape() => {
            t.data_mut().copy_from_slice(src.data());
            t
        }
        _ => src.clone(),
    }
}

/// Integer ALU semantics shared by [`Inst::IntBin`] and its fused
/// immediate form [`Inst::IntBinImm`].
#[inline]
fn int_bin_eval(op: IntBinOp, a: i64, b: i64) -> VResult<i64> {
    Ok(match op {
        IntBinOp::Add => a.wrapping_add(b),
        IntBinOp::Sub => a.wrapping_sub(b),
        IntBinOp::Mul => a.wrapping_mul(b),
        IntBinOp::DivU => {
            if b == 0 {
                return Err(err("division by zero in arith.divui"));
            }
            ((a as u64) / (b as u64)) as i64
        }
        IntBinOp::RemU => {
            if b == 0 {
                return Err(err("division by zero in arith.remui"));
            }
            ((a as u64) % (b as u64)) as i64
        }
        IntBinOp::MinU => ((a as u64).min(b as u64)) as i64,
        IntBinOp::MaxU => ((a as u64).max(b as u64)) as i64,
    })
}

/// An active counted loop.
#[derive(Debug, Clone, Copy)]
struct Frame {
    iv_slot: Slot,
    iv: i64,
    ub: i64,
    step: i64,
    body: usize,
    parallel: bool,
}

/// Borrowed view of a tensor-valued slot (no copy).
enum TensorView<'e> {
    Borrowed(&'e Tensor),
    Guard(std::cell::Ref<'e, Tensor>),
}

impl std::ops::Deref for TensorView<'_> {
    type Target = Tensor;

    fn deref(&self) -> &Tensor {
        match self {
            TensorView::Borrowed(t) => t,
            TensorView::Guard(g) => g,
        }
    }
}

/// One recorded `cam.merge_partial_subarray` from a shard worker.
///
/// Intra-query sharding cannot merge worker buffer states back
/// element-wise: iterations of a subarray-group loop accumulate (`+=`)
/// into *shared* accumulator elements (one partial score per column
/// chunk), and floating-point accumulation only reproduces the
/// sequential result when it happens in the sequential order. Workers
/// therefore log their merges and the main thread replays them in
/// global iteration order — bit-identical by construction.
#[derive(Debug)]
pub(crate) struct MergeRecord {
    /// Accumulator buffer slot (defined outside the sharded loop).
    acc: Slot,
    /// Target accumulator row.
    q: usize,
    /// Column offset of this subarray's partial scores.
    offset: i64,
    /// Partial values at merge time.
    vals: Tensor,
    /// Partial row ids at merge time.
    idx: Tensor,
}

/// Executes a [`Tape`] against a slot file and a machine.
#[derive(Debug)]
pub struct TapeVm<'t> {
    tape: &'t Tape,
    slots: Vec<Value>,
    frames: Vec<Frame>,
    /// Worker-thread fan-out for shardable `scf.parallel` loops
    /// (`0`/`1` = execute them sequentially).
    shard_threads: usize,
    /// Test-only fault injector: force a worker panic on the named
    /// shard so the panic-isolation path is exercisable.
    shard_chaos: Option<c4cam_faults::ShardChaos>,
    /// When set (shard workers), `cam.merge_partial_subarray` logs its
    /// operands here in addition to applying them locally.
    merge_log: Option<Vec<MergeRecord>>,
    /// Freelist of merge-record tensors. Shard workers draw their
    /// [`MergeRecord`] copies from here; the main thread's replay
    /// returns them, so repeated shard loops in one VM (one per query
    /// under intra-query sharding) stop allocating once warm.
    merge_arena: Vec<Tensor>,
    /// When set, device-relevant operations and their value dataflow
    /// are recorded for offline replay (see the [`crate::trace`]
    /// module).
    trace: Option<TraceState>,
    /// Span/counter sink; disabled by default.
    telemetry: Telemetry,
    /// Cached `telemetry.enabled()` so the dispatch loop pays one
    /// branch, not an `Arc` deref, when telemetry is off.
    tl_on: bool,
    /// Logical telemetry lane (0 = main, `1 + shard` for workers).
    lane: u32,
    /// Device-op counter driving per-op span sampling.
    op_seq: u32,
}

impl<'t> TapeVm<'t> {
    /// Fresh VM with `args` seeded into the tape's argument slots.
    ///
    /// # Errors
    /// Fails on an argument-count mismatch.
    pub fn new(tape: &'t Tape, args: &[Value]) -> VResult<TapeVm<'t>> {
        if args.len() != tape.arg_slots.len() {
            return Err(err(format!(
                "'{}' takes {} arguments, got {}",
                tape.func,
                tape.arg_slots.len(),
                args.len()
            )));
        }
        let mut slots = vec![Value::Int(0); tape.n_slots];
        // Constants the optimizer stripped from the instruction stream
        // are loaded once here instead of on every pass over the tape.
        for &(s, c) in &tape.preload {
            slots[s as usize] = match c {
                PreConst::Index(v) => Value::Index(v),
                PreConst::Int(v) => Value::Int(v),
                PreConst::Float(v) => Value::Float(v),
                PreConst::Bool(v) => Value::Bool(v),
            };
        }
        for (&s, a) in tape.arg_slots.iter().zip(args) {
            slots[s as usize] = a.clone();
        }
        Ok(TapeVm {
            tape,
            slots,
            frames: Vec::new(),
            shard_threads: 0,
            shard_chaos: None,
            merge_log: None,
            merge_arena: Vec::new(),
            trace: None,
            telemetry: Telemetry::default(),
            tl_on: false,
            lane: 0,
            op_seq: 0,
        })
    }

    /// VM over an existing slot file (batched-shard reconstruction).
    pub(crate) fn with_slots(tape: &'t Tape, slots: Vec<Value>) -> TapeVm<'t> {
        TapeVm {
            tape,
            slots,
            frames: Vec::new(),
            shard_threads: 0,
            shard_chaos: None,
            merge_log: None,
            merge_arena: Vec::new(),
            trace: None,
            telemetry: Telemetry::default(),
            tl_on: false,
            lane: 0,
            op_seq: 0,
        }
    }

    /// Enable intra-query sharding: shardable `scf.parallel` loops with
    /// at least two iterations fan out across `threads` workers.
    pub fn set_shard_threads(&mut self, threads: usize) {
        self.shard_threads = threads;
    }

    /// Inject a forced panic into one intra-query shard worker (tests
    /// the panic-isolated fallback to sequential execution).
    pub fn set_shard_chaos(&mut self, chaos: Option<c4cam_faults::ShardChaos>) {
        self.shard_chaos = chaos;
    }

    /// Attach a telemetry handle: sampled per-op spans (and per-shard
    /// spans, when sharding) are recorded while it is enabled. The
    /// disabled default keeps the dispatch loop on its fast path.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.tl_on = telemetry.enabled();
        self.telemetry = telemetry;
    }

    /// Attach telemetry on an explicit lane (shard workers record op
    /// spans on `1 + shard`).
    pub(crate) fn set_telemetry_lane(&mut self, telemetry: Telemetry, lane: u32) {
        self.lane = lane;
        self.set_telemetry(telemetry);
    }

    pub(crate) fn slots(&self) -> &[Value] {
        &self.slots
    }

    /// Execute from `from` until a `Return` fires or the pc reaches
    /// `stop`. Returns the function results on `Return`, `None` on stop.
    ///
    /// # Errors
    /// Propagates instruction failures with op context attached.
    pub fn exec<D: CamDevice>(
        &mut self,
        machine: &mut D,
        from: usize,
        stop: usize,
    ) -> VResult<Option<Vec<Value>>> {
        let mut pc = from;
        while pc < self.tape.insts.len() && pc != stop {
            // Cheap pre-filter: only a parallel LoopEnter can be a
            // shard candidate, so non-loop instructions never pay the
            // shard_loops scan.
            if self.shard_threads > 1
                && matches!(self.tape.insts[pc], Inst::LoopEnter { parallel: true, .. })
                && self.tape.shard_loops.contains(&pc)
            {
                match self.exec_shard_loop(machine, pc) {
                    Ok(Some(continue_at)) => {
                        pc = continue_at;
                        continue;
                    }
                    Ok(None) => {} // not worth sharding: sequential path
                    Err(e) => return Err(self.tape.attach(pc, e)),
                }
            }
            let stepped = if self.tl_on {
                self.step_timed(machine, pc)
            } else {
                self.step(machine, pc)
            };
            match stepped {
                Ok(Step::Next) => pc += 1,
                Ok(Step::Jump(target)) => pc = target,
                Ok(Step::Return(values)) => return Ok(Some(values)),
                Err(e) => return Err(self.tape.attach(pc, e)),
            }
        }
        Ok(None)
    }

    /// Read a loop's `(lb, ub, step)` bounds from the slot file.
    ///
    /// # Errors
    /// Fails when `enter` is not a `LoopEnter` or bounds are non-integer.
    pub fn loop_bounds(&self, enter: usize) -> VResult<(i64, i64, i64)> {
        match &self.tape.insts[enter] {
            Inst::LoopEnter { lb, ub, step, .. } => {
                Ok((self.int(*lb)?, self.int(*ub)?, self.int(*step)?))
            }
            other => Err(err(format!("pc {enter} is not a loop entry: {other:?}"))),
        }
    }

    /// Run the body of the (carry-free) loop at `enter` for the given
    /// induction values — the shard side of batched execution. For a
    /// parallel loop, each iteration is wrapped in a sequential timing
    /// scope exactly like the in-line [`Inst::LoopEnter`] /
    /// [`Inst::LoopNext`] pair would.
    ///
    /// # Errors
    /// Propagates body failures.
    pub(crate) fn exec_iterations<D: CamDevice>(
        &mut self,
        machine: &mut D,
        enter: usize,
        next: usize,
        iv_slot: Slot,
        ivs: &[i64],
        parallel: bool,
    ) -> VResult<()> {
        for &iv in ivs {
            self.slots[iv_slot as usize] = Value::Index(iv);
            if parallel {
                machine.push_sequential();
            }
            let returned = self.exec(machine, enter + 1, next)?.is_some();
            if parallel {
                machine.pop_scope();
            }
            if returned {
                return Err(err("func.return inside a sharded loop"));
            }
        }
        Ok(())
    }

    /// Fan the iterations of the shardable parallel loop at `pc` across
    /// the worker pool (see the `batch` module docs for the protocol).
    /// Returns the continuation pc, or `None` when the loop is not
    /// worth sharding (fewer than two iterations, or bounds the
    /// sequential path must diagnose).
    ///
    /// # Errors
    /// Propagates worker failures.
    fn exec_shard_loop<D: CamDevice>(
        &mut self,
        machine: &mut D,
        pc: usize,
    ) -> VResult<Option<usize>> {
        let Inst::LoopEnter {
            lb,
            ub,
            step,
            iv,
            exit,
            parallel: true,
        } = self.tape.insts[pc]
        else {
            return Ok(None);
        };
        let (lb, ub, step) = (self.int(lb)?, self.int(ub)?, self.int(step)?);
        if step <= 0 {
            return Ok(None); // the sequential path raises the error
        }
        let ivs: Vec<i64> = (lb..ub).step_by(step as usize).collect();
        if ivs.len() < 2 {
            return Ok(None);
        }
        let next = exit - 1;
        let shard_count = self.shard_threads.min(ivs.len());
        let snapshot: Vec<Frozen> = self.slots.iter().map(freeze).collect();
        let chunk = ivs.len().div_ceil(shard_count);
        let chunks: Vec<&[i64]> = ivs.chunks(chunk).collect();
        // Seed each worker with a slice of the merge arena; replay
        // returns the record tensors below, so repeated shard loops in
        // this VM recycle instead of allocating.
        let mut arena = std::mem::take(&mut self.merge_arena);
        let per_shard = arena.len() / chunks.len();
        let mut pools: Vec<Vec<Tensor>> = chunks
            .iter()
            .map(|_| arena.split_off(arena.len().saturating_sub(per_shard)))
            .collect();
        let tape = self.tape;
        let telemetry = &self.telemetry;
        let chaos = self.shard_chaos.take();
        let outs: Option<Vec<(ExecStats, Vec<MergeRecord>)>> = std::thread::scope(|scope| {
            let snapshot = &snapshot;
            let handles: Vec<_> = chunks
                .iter()
                .zip(pools.drain(..))
                .enumerate()
                .map(|(shard, (&chunk, pool))| {
                    let mut shard_machine = machine.clone();
                    shard_machine.reset_stats();
                    let telemetry = telemetry.clone();
                    scope.spawn(move || -> VResult<(ExecStats, Vec<MergeRecord>)> {
                        if let Some(c) = chaos {
                            if c.shard == shard && c.fail_attempts > 0 {
                                panic!("chaos: injected intra-query shard {shard} failure");
                            }
                        }
                        let lane = shard as u32 + 1;
                        let start_ns = telemetry.now_ns();
                        let slots: Vec<Value> = snapshot.iter().map(thaw).collect();
                        let mut vm = TapeVm::with_slots(tape, slots);
                        vm.set_telemetry_lane(telemetry.clone(), lane);
                        vm.merge_log = Some(Vec::new());
                        vm.merge_arena = pool;
                        shard_machine.push_parallel();
                        vm.exec_iterations(&mut shard_machine, pc, next, iv, chunk, true)?;
                        shard_machine.pop_scope();
                        if telemetry.enabled() {
                            let end_ns = telemetry.now_ns();
                            telemetry.record_span(
                                format!("shard-{shard}"),
                                cat::SHARD,
                                lane,
                                start_ns,
                                end_ns.saturating_sub(start_ns),
                                vec![("iterations", ArgValue::Int(chunk.len() as i64))],
                            );
                        }
                        Ok((shard_machine.stats(), vm.merge_log.take().unwrap()))
                    })
                })
                .collect();
            // No worker state has been absorbed or merged yet, so a
            // panicked worker is fully isolated: discard every shard
            // and re-run the loop sequentially (`None`), which is
            // bit-identical by construction.
            let mut outs = Vec::with_capacity(handles.len());
            for h in handles {
                match h.join() {
                    Ok(Ok(out)) => outs.push(out),
                    Ok(Err(e)) => return Err(e),
                    Err(_) => return Ok(None),
                }
            }
            Ok(Some(outs))
        })?;
        let Some(outs) = outs else {
            return Ok(None);
        };
        // Deterministic absorption: the loop's parallel scope folds each
        // shard's latency as max (bit-identical to the sequential fold);
        // energy and op counters add in shard order.
        machine.push_parallel();
        for (stats, _) in &outs {
            machine.absorb_delta(stats);
        }
        machine.pop_scope();
        // Replay the merges in global iteration order (shard order ∘
        // within-shard order) against the main slot file's buffers.
        for (_, log) in outs {
            for rec in log {
                let acc = self.slots[rec.acc as usize]
                    .as_buffer()
                    .cloned()
                    .ok_or_else(|| err("sharded merge target is not a buffer"))?;
                let mut a = acc.borrow_mut();
                merge_partial_rows(&mut a, &rec.vals, &rec.idx, rec.q, rec.offset).map_err(err)?;
                drop(a);
                arena.push(rec.vals);
                arena.push(rec.idx);
            }
        }
        arena.truncate(MERGE_ARENA_CAP);
        self.merge_arena = arena;
        Ok(Some(exit))
    }

    // ------------------------------------------------------------------
    // Slot accessors
    // ------------------------------------------------------------------

    #[inline]
    fn int(&self, s: Slot) -> VResult<i64> {
        self.slots[s as usize]
            .as_int()
            .ok_or_else(|| err("expected an integer value"))
    }

    #[inline]
    fn float(&self, s: Slot) -> VResult<f64> {
        match &self.slots[s as usize] {
            Value::Float(f) => Ok(*f),
            other => Err(err(format!("float op on {}", other.kind_name()))),
        }
    }

    fn subarray(&self, s: Slot) -> VResult<SubarrayId> {
        match self.slots[s as usize].as_handle() {
            Some(Handle::Subarray(id)) => Ok(id),
            other => Err(err(format!("expected a subarray handle, got {other:?}"))),
        }
    }

    fn tensor_view(&self, s: Slot) -> VResult<TensorView<'_>> {
        match &self.slots[s as usize] {
            Value::Tensor(t) => Ok(TensorView::Borrowed(t)),
            Value::Buffer(b) => Ok(TensorView::Guard(b.borrow())),
            other => Err(err(format!(
                "expected a tensor value, got {}",
                other.kind_name()
            ))),
        }
    }

    /// A slot's buffer when it can be overwritten in place: uniquely
    /// owned (no alias can observe the write) and already `shape`.
    /// Never taken while tracing — the trace wants fresh value ids.
    fn reusable_buffer(&self, s: Slot, shape: &[usize]) -> Option<Rc<RefCell<Tensor>>> {
        if self.trace.is_some() {
            return None;
        }
        match &self.slots[s as usize] {
            Value::Buffer(b) if Rc::strong_count(b) == 1 && b.borrow().shape() == shape => {
                Some(Rc::clone(b))
            }
            _ => None,
        }
    }

    #[inline]
    fn set(&mut self, s: Slot, v: Value) {
        if let Some(tr) = &mut self.trace {
            tr.clear(s);
        }
        self.slots[s as usize] = v;
    }

    /// Record `op` when tracing.
    #[inline]
    fn trace_push(&mut self, op: impl FnOnce() -> TraceOp) {
        if let Some(tr) = &mut self.trace {
            tr.push(op());
        }
    }

    /// Trace value id of slot `s`, materializing the current contents
    /// as a literal record when the value was host-computed. `None`
    /// when not tracing.
    fn trace_operand(&mut self, s: Slot) -> VResult<Option<u32>> {
        let Some(tr) = &self.trace else {
            return Ok(None);
        };
        if let Some(v) = tr.vid(s) {
            return Ok(Some(v));
        }
        let data = self.slots[s as usize]
            .snapshot_tensor()
            .ok_or_else(|| err("cannot trace a non-tensor operand"))?;
        let tr = self.trace.as_mut().expect("checked above");
        let out = tr.fresh();
        tr.push(TraceOp::Literal { data, out });
        tr.set_vid(s, out);
        Ok(Some(out))
    }

    fn int_like(index: bool, v: i64) -> Value {
        if index {
            Value::Index(v)
        } else {
            Value::Int(v)
        }
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    /// Telemetry span name of a device-touching instruction; `None`
    /// for host-side scalar/control ops, which are never recorded.
    fn device_op_name(inst: &Inst) -> Option<&'static str> {
        match inst {
            Inst::Search(_) => Some("cam.search"),
            Inst::Read { .. } => Some("cam.read"),
            Inst::WriteValue { .. } => Some("cam.write"),
            Inst::MergePartial { .. } => Some("cam.merge_partial"),
            Inst::MergeLevel { .. } => Some("cam.merge_level"),
            Inst::Reduce(_) => Some("cam.reduce"),
            Inst::AllocBank { .. }
            | Inst::AllocMat { .. }
            | Inst::AllocArray { .. }
            | Inst::AllocSubarray { .. } => Some("cam.alloc"),
            _ => None,
        }
    }

    /// Instrumented step: wraps device ops in a sampled telemetry span
    /// carrying the host duration plus the simulated latency/energy
    /// delta the op charged to the machine. Only reached when a live
    /// recorder is attached (`tl_on`).
    fn step_timed<D: CamDevice>(&mut self, machine: &mut D, pc: usize) -> VResult<Step> {
        let Some(name) = Self::device_op_name(&self.tape.insts[pc]) else {
            return self.step(machine, pc);
        };
        self.op_seq = self.op_seq.wrapping_add(1);
        let stride = self.telemetry.sample_every();
        if stride > 1 && !self.op_seq.is_multiple_of(stride) {
            return self.step(machine, pc);
        }
        let before = machine.stats();
        let start_ns = self.telemetry.now_ns();
        let result = self.step(machine, pc);
        let end_ns = self.telemetry.now_ns();
        let delta = machine.stats().delta(&before);
        self.telemetry.record_span(
            name,
            cat::OP,
            self.lane,
            start_ns,
            end_ns.saturating_sub(start_ns),
            vec![
                ("pc", ArgValue::Int(pc as i64)),
                ("sim_latency_ns", ArgValue::Num(delta.latency_ns)),
                ("sim_energy_fj", ArgValue::Num(delta.total_energy_fj())),
                ("searched_words", ArgValue::Int(delta.searched_words as i64)),
            ],
        );
        result
    }

    #[allow(clippy::too_many_lines)]
    fn step<D: CamDevice>(&mut self, machine: &mut D, pc: usize) -> VResult<Step> {
        // `self.tape` is a shared reference; copying it out decouples the
        // instruction borrow from `self` so arms can mutate the slots.
        let tape = self.tape;
        match &tape.insts[pc] {
            Inst::ConstInt { out, value, index } => {
                let v = Self::int_like(*index, *value);
                let out = *out;
                self.set(out, v);
            }
            Inst::ConstFloat { out, value } => {
                let (out, v) = (*out, Value::Float(*value));
                self.set(out, v);
            }
            Inst::ConstBool { out, value } => {
                let (out, v) = (*out, Value::Bool(*value));
                self.set(out, v);
            }
            Inst::ConstTensor { out, tensor } => {
                let (out, v) = (*out, Value::Tensor(tensor.clone()));
                self.set(out, v);
            }
            Inst::Copy { src, out } => {
                let v = self.slots[*src as usize].clone();
                let (src, out) = (*src, *out);
                self.set(out, v);
                // A copy of a buffer aliases it; sharing the value id
                // preserves that aliasing in the replayed dataflow.
                if let Some(tr) = &mut self.trace {
                    if let Some(vid) = tr.vid(src) {
                        tr.set_vid(out, vid);
                    }
                }
            }
            Inst::IntBin {
                op,
                lhs,
                rhs,
                out,
                index,
            } => {
                let a = self.int(*lhs)?;
                let b = self.int(*rhs)?;
                let r = int_bin_eval(*op, a, b)?;
                let (out, v) = (*out, Self::int_like(*index, r));
                self.set(out, v);
            }
            Inst::IntBinImm {
                op,
                lhs,
                imm,
                out,
                index,
            } => {
                let a = self.int(*lhs)?;
                let r = int_bin_eval(*op, a, *imm)?;
                let (out, v) = (*out, Self::int_like(*index, r));
                self.set(out, v);
            }
            Inst::FloatBin { op, lhs, rhs, out } => {
                let a = self.float(*lhs)?;
                let b = self.float(*rhs)?;
                let r = match op {
                    FloatBinOp::Add => a + b,
                    FloatBinOp::Sub => a - b,
                    FloatBinOp::Mul => a * b,
                    FloatBinOp::Div => a / b,
                };
                let out = *out;
                self.set(out, Value::Float(r));
            }
            Inst::IntCmp {
                pred,
                lhs,
                rhs,
                out,
            } => {
                let a = self.int(*lhs)?;
                let b = self.int(*rhs)?;
                let (out, v) = (*out, Value::Bool(pred.eval(a, b)));
                self.set(out, v);
            }
            Inst::IntCmpImm {
                pred,
                lhs,
                imm,
                out,
            } => {
                let a = self.int(*lhs)?;
                let (out, v) = (*out, Value::Bool(pred.eval(a, *imm)));
                self.set(out, v);
            }
            Inst::CastIntLike { src, out, index } => {
                let v = Self::int_like(*index, self.int(*src)?);
                let out = *out;
                self.set(out, v);
            }
            Inst::Jump { target } => return Ok(Step::Jump(*target)),
            Inst::JumpIfNot { cond, target } => {
                let c = self.slots[*cond as usize]
                    .as_bool()
                    .ok_or_else(|| err("scf.if condition must be boolean"))?;
                if !c {
                    return Ok(Step::Jump(*target));
                }
            }
            Inst::LoopEnter {
                lb,
                ub,
                step,
                iv,
                exit,
                parallel,
            } => {
                let lb = self.int(*lb)?;
                let ub = self.int(*ub)?;
                let step = self.int(*step)?;
                if step <= 0 {
                    return Err(err("loop step must be positive"));
                }
                let parallel = *parallel;
                if parallel {
                    machine.push_parallel();
                    self.trace_push(|| TraceOp::PushParallel);
                }
                if lb >= ub {
                    if parallel {
                        machine.pop_scope();
                        self.trace_push(|| TraceOp::PopScope);
                    }
                    return Ok(Step::Jump(*exit));
                }
                let iv_slot = *iv;
                self.frames.push(Frame {
                    iv_slot,
                    iv: lb,
                    ub,
                    step,
                    body: pc + 1,
                    parallel,
                });
                self.set(iv_slot, Value::Index(lb));
                if parallel {
                    machine.push_sequential();
                    self.trace_push(|| TraceOp::PushSequential);
                }
            }
            Inst::LoopNext { .. } => {
                let f = self
                    .frames
                    .last_mut()
                    .ok_or_else(|| err("loop back-edge without an active loop"))?;
                f.iv += f.step;
                let (iv_slot, iv, ub, body, parallel) = (f.iv_slot, f.iv, f.ub, f.body, f.parallel);
                if parallel {
                    machine.pop_scope(); // this iteration's sequential scope
                    self.trace_push(|| TraceOp::PopScope);
                }
                if iv < ub {
                    self.set(iv_slot, Value::Index(iv));
                    if parallel {
                        machine.push_sequential();
                        self.trace_push(|| TraceOp::PushSequential);
                    }
                    return Ok(Step::Jump(body));
                }
                self.frames.pop();
                if parallel {
                    machine.pop_scope(); // the loop's parallel scope
                    self.trace_push(|| TraceOp::PopScope);
                }
            }
            Inst::Return { values } => {
                if self.trace.is_some() {
                    let mut vids = Vec::with_capacity(values.len());
                    for &s in values.iter() {
                        vids.push(self.trace_operand(s)?.expect("tracing is on"));
                    }
                    self.trace_push(|| TraceOp::Return { values: vids });
                }
                let out = values
                    .iter()
                    .map(|&s| self.slots[s as usize].clone())
                    .collect();
                return Ok(Step::Return(out));
            }
            Inst::ExtractSlice {
                src,
                offsets,
                sizes,
                out,
            } => {
                let (src, sizes, out) = (*src, *sizes, *out);
                // Steady-state loop iterations overwrite the previous
                // slice's tensor in place instead of allocating (slot
                // tensors are uniquely owned — clones are deep). Never
                // while tracing: the trace wants fresh value ids.
                let recycled = if self.trace.is_none() && src != out {
                    match std::mem::replace(&mut self.slots[out as usize], Value::Int(0)) {
                        Value::Tensor(t) if t.shape() == sizes => Some(t),
                        _ => None,
                    }
                } else {
                    None
                };
                let t = self.exec_extract_slice(src, *offsets, sizes, recycled)?;
                self.set(out, Value::Tensor(t));
            }
            Inst::AllocBuffer { shape, out } => {
                let (out, v) = (*out, Value::new_buffer(shape.clone()));
                self.set(out, v);
                if let Some(tr) = &mut self.trace {
                    let vid = tr.fresh();
                    tr.push(TraceOp::Buffer {
                        shape: shape.clone(),
                        out: vid,
                    });
                    tr.set_vid(out, vid);
                }
            }
            Inst::AllocCopy { src, out } => {
                let t = self.slots[*src as usize]
                    .snapshot_tensor()
                    .ok_or_else(|| err("expected a tensor value"))?;
                let out = *out;
                let traced = self.trace.is_some().then(|| t.clone());
                self.set(out, Value::buffer_from(t));
                if let Some(data) = traced {
                    let tr = self.trace.as_mut().expect("tracing is on");
                    let vid = tr.fresh();
                    tr.push(TraceOp::Literal { data, out: vid });
                    tr.set_vid(out, vid);
                }
            }
            Inst::ToTensor { src, out } => {
                let t = self.slots[*src as usize]
                    .snapshot_tensor()
                    .ok_or_else(|| err("to_tensor on non-buffer"))?;
                let (src, out) = (*src, *out);
                let traced = self.trace.is_some().then(|| t.clone());
                self.set(out, Value::Tensor(t));
                if let Some(data) = traced {
                    let tr = self.trace.as_mut().expect("tracing is on");
                    let vid = tr.fresh();
                    match tr.vid(src) {
                        Some(sv) => tr.push(TraceOp::Snapshot { src: sv, out: vid }),
                        None => tr.push(TraceOp::Literal { data, out: vid }),
                    }
                    tr.set_vid(out, vid);
                }
            }
            Inst::AllocBank { out } => {
                let id = machine.alloc_bank().map_err(|e| err(e.message))?;
                let out = *out;
                self.set(out, Value::Handle(Handle::Bank(id)));
                self.trace_push(|| TraceOp::AllocBank);
            }
            Inst::AllocMat { parent, out } => {
                let bank = match self.slots[*parent as usize].as_handle() {
                    Some(Handle::Bank(b)) => b,
                    _ => return Err(err("alloc_mat expects a bank handle")),
                };
                let id = machine.alloc_mat(bank).map_err(|e| err(e.message))?;
                let out = *out;
                self.set(out, Value::Handle(Handle::Mat(id)));
                self.trace_push(|| TraceOp::AllocMat { bank: bank.0 });
            }
            Inst::AllocArray { parent, out } => {
                let mat = match self.slots[*parent as usize].as_handle() {
                    Some(Handle::Mat(x)) => x,
                    _ => return Err(err("alloc_array expects a mat handle")),
                };
                let id = machine.alloc_array(mat).map_err(|e| err(e.message))?;
                let out = *out;
                self.set(out, Value::Handle(Handle::Array(id)));
                self.trace_push(|| TraceOp::AllocArray { mat: mat.0 });
            }
            Inst::AllocSubarray { parent, out } => {
                let array = match self.slots[*parent as usize].as_handle() {
                    Some(Handle::Array(x)) => x,
                    _ => return Err(err("alloc_subarray expects an array handle")),
                };
                let id = machine.alloc_subarray(array).map_err(|e| err(e.message))?;
                let out = *out;
                self.set(out, Value::Handle(Handle::Subarray(id)));
                self.trace_push(|| TraceOp::AllocSubarray { array: array.0 });
            }
            Inst::StoreHandle { table, pos, sub } => {
                let pos = self.int(*pos)? as usize;
                let sub = self.subarray(*sub)?;
                let table = self.slots[*table as usize]
                    .as_buffer()
                    .cloned()
                    .ok_or_else(|| err("store_handle expects a buffer table"))?;
                let mut t = table.borrow_mut();
                if pos >= t.len() {
                    return Err(err("handle table index out of bounds"));
                }
                t.data_mut()[pos] = sub.0 as f32;
            }
            Inst::LoadHandle { table, pos, out } => {
                let pos = self.int(*pos)? as usize;
                let id = {
                    let table = self.tensor_view(*table)?;
                    if pos >= table.len() {
                        return Err(err("handle table index out of bounds"));
                    }
                    SubarrayId(table.data()[pos] as usize)
                };
                let out = *out;
                self.set(out, Value::Handle(Handle::Subarray(id)));
            }
            Inst::WriteValue { sub, data, row_off } => {
                let sub = self.subarray(*sub)?;
                let row_off = self.int(*row_off)? as usize;
                let rows = {
                    let data = self.tensor_view(*data)?;
                    tensor_rows(&data).map_err(err)?
                };
                machine
                    .write_rows(sub, row_off, &rows)
                    .map_err(|e| err(e.message))?;
                self.trace_push(|| TraceOp::Write {
                    sub: sub.0,
                    row_off,
                    rows,
                });
            }
            Inst::Search(s) => {
                let sub = self.subarray(s.sub)?;
                let mut spec = SearchSpec::new(s.kind, s.metric);
                let mut selection = None;
                if let Some((start, len)) = s.selective {
                    let start = self.int(start)? as usize;
                    let len = self.int(len)? as usize;
                    selection = Some((start, len));
                    spec = spec.with_selection(RowSelection::Window { start, len });
                }
                if let Some(t) = s.threshold {
                    spec = spec.with_threshold(t);
                }
                if let Some(share) = s.broadcast_share {
                    spec = spec.with_broadcast_share(share);
                }
                let traced_query = {
                    let query = self.tensor_view(s.query)?;
                    let q = search_query_view(&query).map_err(err)?;
                    let traced = self.trace.is_some().then(|| q.to_vec());
                    machine.search(sub, q, spec).map_err(|e| err(e.message))?;
                    traced
                };
                if let Some(query) = traced_query {
                    self.trace_push(|| TraceOp::Search {
                        sub: sub.0,
                        kind: s.kind,
                        metric: s.metric,
                        selection,
                        threshold: s.threshold,
                        share: s.broadcast_share,
                        query,
                    });
                }
            }
            Inst::Read {
                sub,
                shape,
                vals,
                idx,
            } => {
                let sub = self.subarray(*sub)?;
                let (vals, idx) = (*vals, *idx);
                // Steady-state loop iterations overwrite the previous
                // read's buffers in place instead of allocating; the
                // first iteration (or an aliased/reshaped slot) takes
                // the allocating path.
                let reuse = self
                    .reusable_buffer(vals, shape)
                    .zip(self.reusable_buffer(idx, shape));
                let result = machine.read(sub).map_err(|e| err(e.message))?;
                match reuse {
                    Some((vb, ib)) => {
                        read_tensors_into(result, &mut vb.borrow_mut(), &mut ib.borrow_mut())
                            .map_err(err)?;
                    }
                    None => {
                        let (v, i) = read_tensors(result, shape).map_err(err)?;
                        self.set(vals, Value::buffer_from(v));
                        self.set(idx, Value::buffer_from(i));
                    }
                }
                if let Some(tr) = &mut self.trace {
                    let (vv, vi) = (tr.fresh(), tr.fresh());
                    tr.push(TraceOp::Read {
                        sub: sub.0,
                        shape: shape.clone(),
                        vals: vv,
                        idx: vi,
                    });
                    tr.set_vid(vals, vv);
                    tr.set_vid(idx, vi);
                }
            }
            Inst::MergePartial {
                acc,
                vals,
                idx,
                q,
                offset,
            } => {
                let acc_slot = *acc;
                let q = self.int(*q)? as usize;
                let offset = self.int(*offset)?;
                let traced = if self.trace.is_some() {
                    // Resolve (materializing host-computed operands)
                    // *before* the merge mutates the accumulator.
                    Some((
                        self.trace_operand(acc_slot)?.expect("tracing is on"),
                        self.trace_operand(*vals)?.expect("tracing is on"),
                        self.trace_operand(*idx)?.expect("tracing is on"),
                    ))
                } else {
                    None
                };
                let acc = self.slots[acc_slot as usize]
                    .as_buffer()
                    .cloned()
                    .ok_or_else(|| err("merge expects an accumulator buffer"))?;
                let mut pool = std::mem::take(&mut self.merge_arena);
                let record = {
                    let vals = self.tensor_view(*vals)?;
                    let idx = self.tensor_view(*idx)?;
                    let mut a = acc.borrow_mut();
                    merge_partial_rows(&mut a, &vals, &idx, q, offset).map_err(err)?;
                    self.merge_log.is_some().then(|| MergeRecord {
                        acc: acc_slot,
                        q,
                        offset,
                        vals: copy_into_recycled(&mut pool, &vals),
                        idx: copy_into_recycled(&mut pool, &idx),
                    })
                };
                self.merge_arena = pool;
                if let Some(record) = record {
                    if let Some(log) = &mut self.merge_log {
                        log.push(record);
                    }
                }
                if let Some((acc, vals, idx)) = traced {
                    self.trace_push(|| TraceOp::MergePartial {
                        acc,
                        vals,
                        idx,
                        q,
                        offset,
                    });
                }
            }
            Inst::MergeLevel { level, elems } => {
                machine.merge(*level, *elems);
                self.trace_push(|| TraceOp::MergeLevel {
                    level: *level,
                    elems: *elems,
                });
            }
            Inst::PhaseMarker { name } => {
                machine.mark_phase(name);
                self.trace_push(|| TraceOp::Phase {
                    name: name.to_string(),
                });
            }
            Inst::Reduce(r) => {
                let acc_vid = self.trace_operand(r.acc)?;
                let acc = self.slots[r.acc as usize]
                    .snapshot_tensor()
                    .ok_or_else(|| err("cam.reduce expects a buffer"))?;
                let (vals, idx) =
                    reduce_scores(&acc, r.k, r.n_valid, r.select_largest, &r.metric, true)
                        .map_err(err)?;
                let vals = vals
                    .reshape(r.vals_shape.clone())
                    .map_err(|e| err(e.message))?;
                let idx = idx
                    .reshape(r.idx_shape.clone())
                    .map_err(|e| err(e.message))?;
                let (vs, is) = (r.vals, r.idx);
                self.set(vs, Value::buffer_from(vals));
                self.set(is, Value::buffer_from(idx));
                if let Some(acc) = acc_vid {
                    let tr = self.trace.as_mut().expect("tracing is on");
                    let (vv, vi) = (tr.fresh(), tr.fresh());
                    tr.push(TraceOp::Reduce {
                        acc,
                        k: r.k,
                        n_valid: r.n_valid,
                        largest: r.select_largest,
                        metric: r.metric.to_string(),
                        vals_shape: r.vals_shape.clone(),
                        idx_shape: r.idx_shape.clone(),
                        vals: vv,
                        idx: vi,
                    });
                    tr.set_vid(vs, vv);
                    tr.set_vid(is, vi);
                }
            }
        }
        Ok(Step::Next)
    }

    /// Clamped + zero-padded rank-2 window (walker-identical semantics).
    fn exec_extract_slice(
        &self,
        src: Slot,
        offsets: [SliceOffset; 2],
        sizes: [usize; 2],
        recycled: Option<Tensor>,
    ) -> VResult<Tensor> {
        let mut off = [0i64; 2];
        for (o, spec) in off.iter_mut().zip(&offsets) {
            *o = match *spec {
                SliceOffset::Static(v) => v,
                SliceOffset::Dynamic(s) => self.int(s)?,
            };
        }
        if off.iter().any(|&o| o < 0) {
            return Err(err("negative slice offset"));
        }
        let src = self.tensor_view(src)?;
        if src.rank() != 2 {
            return Err(err("extract_slice supports rank-2 tensors"));
        }
        let (r, c) = (sizes[0], sizes[1]);
        let (off0, off1) = (off[0] as usize, off[1] as usize);
        let (sr, sc) = (src.shape()[0], src.shape()[1]);
        // A recycled tensor (same shape, previous iteration's slice)
        // carries stale data, so clamped regions must be re-zeroed;
        // a fresh allocation is already zero-padded.
        let stale = recycled.is_some();
        let mut out = recycled.unwrap_or_else(|| Tensor::zeros(vec![r, c]));
        for i in 0..r {
            let si = off0 + i;
            let copy = if si >= sr {
                0
            } else {
                c.min(sc.saturating_sub(off1))
            };
            let dst_start = i * c;
            if copy > 0 {
                let src_start = si * sc + off1;
                out.data_mut()[dst_start..dst_start + copy]
                    .copy_from_slice(&src.data()[src_start..src_start + copy]);
            }
            if stale && copy < c {
                out.data_mut()[dst_start + copy..dst_start + c].fill(0.0);
            }
            if !stale && copy == 0 {
                break;
            }
        }
        Ok(out)
    }
}

enum Step {
    Next,
    Jump(usize),
    Return(Vec<Value>),
}

impl Tape {
    /// Execute the whole tape on `machine` with the given arguments
    /// (single-threaded; drives the device in exactly the tree-walker's
    /// call order, so on a [`c4cam_camsim::CamMachine`] outputs and
    /// statistics are bit-identical to [`c4cam_runtime::Executor`]).
    ///
    /// # Errors
    /// Propagates compile-surface and runtime failures with op context.
    pub fn run<D: CamDevice>(
        &self,
        machine: &mut D,
        args: &[Value],
    ) -> Result<Vec<Value>, EngineError> {
        self.run_with_telemetry(machine, args, &Telemetry::default())
    }

    /// [`Tape::run`] with a telemetry handle: device ops are wrapped in
    /// sampled `cat::OP` spans while the recorder is enabled, with zero
    /// effect on outputs or device statistics.
    ///
    /// # Errors
    /// Propagates compile-surface and runtime failures with op context.
    pub fn run_with_telemetry<D: CamDevice>(
        &self,
        machine: &mut D,
        args: &[Value],
        telemetry: &Telemetry,
    ) -> Result<Vec<Value>, EngineError> {
        let mut vm = TapeVm::new(self, args)?;
        vm.set_telemetry(telemetry.clone());
        match vm.exec(machine, 0, usize::MAX)? {
            Some(values) => Ok(values),
            None => Err(EngineError::new("function body ended without func.return")),
        }
    }

    /// Execute the whole tape on `machine` (single-threaded) while
    /// recording a replayable [`Trace`] of every device-relevant
    /// operation. Returns the outputs together with the trace;
    /// replaying the trace on an identically configured fresh device
    /// reproduces both bit-for-bit (see the [`crate::trace`] module).
    ///
    /// # Errors
    /// Propagates compile-surface and runtime failures with op context.
    pub fn run_traced<D: CamDevice>(
        &self,
        machine: &mut D,
        args: &[Value],
    ) -> Result<(Vec<Value>, Trace), EngineError> {
        self.run_traced_with_telemetry(machine, args, &Telemetry::default())
    }

    /// [`Tape::run_traced`] with a telemetry handle (see
    /// [`Tape::run_with_telemetry`]).
    ///
    /// # Errors
    /// Propagates compile-surface and runtime failures with op context.
    pub fn run_traced_with_telemetry<D: CamDevice>(
        &self,
        machine: &mut D,
        args: &[Value],
        telemetry: &Telemetry,
    ) -> Result<(Vec<Value>, Trace), EngineError> {
        let mut vm = TapeVm::new(self, args)?;
        vm.set_telemetry(telemetry.clone());
        vm.trace = Some(TraceState::new(self.n_slots));
        match vm.exec(machine, 0, usize::MAX)? {
            Some(values) => {
                let ops = vm.trace.take().expect("tracing state").ops;
                Ok((values, Trace { ops }))
            }
            None => Err(EngineError::new("function body ended without func.return")),
        }
    }
}
