//! A process-wide worker pool for batched shard execution.
//!
//! `run_batched` used to spawn fresh `std::thread::scope` workers on
//! every call; repeated batched runs (sweeps, accuracy harnesses)
//! therefore paid thread creation per batch. The pool keeps finished
//! workers parked on a shared channel and grows only when a job is
//! submitted while no worker is idle, so steady-state batched execution
//! reuses the same OS threads across calls.
//!
//! Jobs are opaque `FnOnce` closures that own all their data; results
//! travel back on per-job channels owned by the submitter. A job that
//! panics is contained by the worker loop (the submitter's channel
//! simply drops), so one poisoned shard cannot take the pool down.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Runaway guard: more concurrent shards than this queue up behind the
/// existing workers instead of spawning new threads.
const MAX_WORKERS: usize = 256;

struct Pool {
    tx: Mutex<Sender<Job>>,
    rx: Arc<Mutex<Receiver<Job>>>,
    idle: AtomicUsize,
    spawned: AtomicUsize,
    pending: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let (tx, rx) = channel();
        Pool {
            tx: Mutex::new(tx),
            rx: Arc::new(Mutex::new(rx)),
            idle: AtomicUsize::new(0),
            spawned: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
        }
    })
}

/// Enqueue a job, spawning a new worker whenever fewer workers are
/// idle than jobs are pending (and the pool is under its cap).
///
/// The comparison must be against the *pending* count, not "is anyone
/// idle": two jobs submitted back to back can both observe the same
/// lone idle worker, and if only one worker exists the second job
/// waits until the first finishes. Short shard jobs would self-heal,
/// but long-lived jobs (the resident server parks a connection handler
/// per client) would strand the queued job indefinitely. Counting
/// pending jobs errs toward spawning a worker that ends up parked —
/// harmless — and never under-provisions.
pub(crate) fn submit(job: Job) {
    let p = pool();
    let pending = p.pending.fetch_add(1, Ordering::AcqRel) + 1;
    if p.idle.load(Ordering::Acquire) < pending && p.spawned.load(Ordering::Acquire) < MAX_WORKERS {
        p.spawned.fetch_add(1, Ordering::AcqRel);
        let rx = Arc::clone(&p.rx);
        std::thread::Builder::new()
            .name("c4cam-shard-worker".into())
            .spawn(move || worker_loop(&rx))
            .expect("spawn shard worker");
    }
    p.tx.lock()
        .expect("worker pool sender lock")
        .send(job)
        .expect("worker pool receiver outlives the process");
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        let p = pool();
        p.idle.fetch_add(1, Ordering::AcqRel);
        let job = rx.lock().expect("worker pool receiver lock").recv();
        p.idle.fetch_sub(1, Ordering::AcqRel);
        match job {
            // Shard jobs catch their own panics; this outer guard keeps
            // the worker (and the `spawned` accounting) alive even if a
            // job leaks one.
            Ok(job) => {
                p.pending.fetch_sub(1, Ordering::AcqRel);
                drop(catch_unwind(AssertUnwindSafe(job)));
            }
            Err(_) => return,
        }
    }
}

/// Run an arbitrary job on the shared worker pool.
///
/// Public entry point for long-lived services (e.g. the resident
/// server's connection handlers) that want to reuse the shard workers
/// instead of spawning ad-hoc threads. A panicking job is contained by
/// the worker loop and cannot take the pool down.
pub fn spawn(job: impl FnOnce() + Send + 'static) {
    submit(Box::new(job));
}

/// Number of pool workers spawned so far in this process — observable
/// so tests can prove batched runs reuse threads instead of spawning
/// per call.
pub fn pooled_workers() -> usize {
    pool().spawned.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel as mpsc_channel;
    use std::sync::{Condvar, Mutex as StdMutex};
    use std::time::Duration;

    /// Regression: jobs submitted while a worker *looks* idle must all
    /// get workers even if every one of them blocks indefinitely. The
    /// old `idle == 0` spawn heuristic let two quick submissions both
    /// observe the same lone idle worker, stranding one job in the
    /// queue — fatal for the server's parked connection handlers.
    #[test]
    fn concurrent_blocking_jobs_all_get_workers() {
        // Run a trivial job and give its worker time to park, so the
        // pool has a nonzero idle count when the blocking jobs arrive.
        let (warm_tx, warm_rx) = mpsc_channel();
        spawn(move || {
            let _ = warm_tx.send(());
        });
        warm_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("warmup job ran");
        std::thread::sleep(Duration::from_millis(50));

        const N: usize = 4;
        let gate = Arc::new((StdMutex::new(0usize), Condvar::new()));
        let (done_tx, done_rx) = mpsc_channel();
        for _ in 0..N {
            let gate = Arc::clone(&gate);
            let done = done_tx.clone();
            spawn(move || {
                let (count, cv) = &*gate;
                let mut n = count.lock().expect("gate lock");
                *n += 1;
                cv.notify_all();
                // Block until every job holds a worker; an
                // under-provisioned pool times out with *n < N.
                while *n < N {
                    let (guard, timeout) = cv
                        .wait_timeout(n, Duration::from_secs(30))
                        .expect("gate wait");
                    n = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
                let _ = done.send(*n);
            });
        }
        for _ in 0..N {
            let seen = done_rx
                .recv_timeout(Duration::from_secs(60))
                .expect("a blocking job stranded in the pool queue");
            assert_eq!(seen, N, "not every blocking job got its own worker");
        }
    }
}
