//! A process-wide worker pool for batched shard execution.
//!
//! `run_batched` used to spawn fresh `std::thread::scope` workers on
//! every call; repeated batched runs (sweeps, accuracy harnesses)
//! therefore paid thread creation per batch. The pool keeps finished
//! workers parked on a shared channel and grows only when a job is
//! submitted while no worker is idle, so steady-state batched execution
//! reuses the same OS threads across calls.
//!
//! Jobs are opaque `FnOnce` closures that own all their data; results
//! travel back on per-job channels owned by the submitter. A job that
//! panics is contained by the worker loop (the submitter's channel
//! simply drops), so one poisoned shard cannot take the pool down.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Runaway guard: more concurrent shards than this queue up behind the
/// existing workers instead of spawning new threads.
const MAX_WORKERS: usize = 256;

struct Pool {
    tx: Mutex<Sender<Job>>,
    rx: Arc<Mutex<Receiver<Job>>>,
    idle: AtomicUsize,
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let (tx, rx) = channel();
        Pool {
            tx: Mutex::new(tx),
            rx: Arc::new(Mutex::new(rx)),
            idle: AtomicUsize::new(0),
            spawned: AtomicUsize::new(0),
        }
    })
}

/// Enqueue a job, spawning a new worker only when none is idle (and the
/// pool is under its cap).
pub(crate) fn submit(job: Job) {
    let p = pool();
    if p.idle.load(Ordering::Acquire) == 0 && p.spawned.load(Ordering::Acquire) < MAX_WORKERS {
        p.spawned.fetch_add(1, Ordering::AcqRel);
        let rx = Arc::clone(&p.rx);
        std::thread::Builder::new()
            .name("c4cam-shard-worker".into())
            .spawn(move || worker_loop(&rx))
            .expect("spawn shard worker");
    }
    p.tx.lock()
        .expect("worker pool sender lock")
        .send(job)
        .expect("worker pool receiver outlives the process");
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        let p = pool();
        p.idle.fetch_add(1, Ordering::AcqRel);
        let job = rx.lock().expect("worker pool receiver lock").recv();
        p.idle.fetch_sub(1, Ordering::AcqRel);
        match job {
            // Shard jobs catch their own panics; this outer guard keeps
            // the worker (and the `spawned` accounting) alive even if a
            // job leaks one.
            Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
            Err(_) => return,
        }
    }
}

/// Number of pool workers spawned so far in this process — observable
/// so tests can prove batched runs reuse threads instead of spawning
/// per call.
pub fn pooled_workers() -> usize {
    pool().spawned.load(Ordering::Acquire)
}
