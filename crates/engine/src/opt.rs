//! Tape peephole optimizer.
//!
//! Lowered cam-level modules re-materialize every scalar constant on
//! every trip through the query nest: the address arithmetic of one
//! search/read/merge triple is a chain of `ConstInt` → `IntBin` pairs,
//! and profiling the packed-search workloads shows those two opcodes
//! alone account for roughly two thirds of all executed instructions.
//! Both passes here remove that tax without changing observable
//! behavior (outputs, statistics, traces):
//!
//! 1. **Immediate fusion** — an `IntBin`/`IntCmp` whose operand slot is
//!    written by exactly one `ConstInt` becomes `IntBinImm`/`IntCmpImm`
//!    with the constant baked in (a constant *left* operand commutes
//!    into the immediate for symmetric ops, or swaps the compare
//!    predicate).
//! 2. **Const stripping** — `ConstInt`/`ConstFloat`/`ConstBool`
//!    instructions whose destination slot has no other writer are
//!    removed from the tape entirely; [`crate::TapeVm::new`] preloads
//!    their slots once from [`Tape::preload`] instead. All pc-valued
//!    fields (jumps, loop brackets, the query loop, shard-loop
//!    candidates) are remapped, and `src_ops`/`src_names` stay aligned
//!    for error attribution.
//!
//! Safety hinges on the *single-writer* condition. Slots are not SSA:
//! loop carries are rewritten by `Copy` on every `scf.yield`, loop
//! results alias their carry slots, and `LoopNext` rewrites its loop's
//! induction variable — so a constant is only treated as known after a
//! full scan of the tape proves nothing else writes its slot. For such
//! a slot, preloading at VM construction is indistinguishable from
//! executing the `Const*` in place: SSA dominance puts every read after
//! the (unique) write, and the write always produces the same value.

use crate::compile::{inst_defs, Tape};
use crate::isa::{Inst, PreConst};

/// Run both peephole passes over a freshly compiled tape.
pub(crate) fn optimize(tape: &mut Tape) {
    let known = known_consts(tape);
    fuse_immediates(tape, &known);
    strip_consts(tape, &known);
}

/// Per-slot constant value, for slots written by exactly one
/// `ConstInt`/`ConstFloat`/`ConstBool` instruction (and nothing else —
/// not an argument, loop carry, induction variable or any other def).
fn known_consts(tape: &Tape) -> Vec<Option<PreConst>> {
    let mut writers = vec![0u32; tape.n_slots];
    for &s in &tape.arg_slots {
        writers[s as usize] += 1;
    }
    for inst in &tape.insts {
        inst_defs(inst, |s| writers[s as usize] += 1);
        // The back-edge rewrites its loop's induction variable on every
        // iteration — a def `inst_defs` does not attribute to LoopNext.
        if let Inst::LoopNext { enter } = inst {
            if let Inst::LoopEnter { iv, .. } = tape.insts[*enter] {
                writers[iv as usize] += 1;
            }
        }
    }
    let mut known = vec![None; tape.n_slots];
    for inst in &tape.insts {
        let (out, k) = match *inst {
            Inst::ConstInt { out, value, index } => (
                out,
                if index {
                    PreConst::Index(value)
                } else {
                    PreConst::Int(value)
                },
            ),
            Inst::ConstFloat { out, value } => (out, PreConst::Float(value)),
            Inst::ConstBool { out, value } => (out, PreConst::Bool(value)),
            _ => continue,
        };
        if writers[out as usize] == 1 {
            known[out as usize] = Some(k);
        }
    }
    known
}

/// Integer payload of a known constant (`index` and `iN` values share
/// the same `i64` ALU domain).
fn int_imm(known: &[Option<PreConst>], slot: u32) -> Option<i64> {
    match known[slot as usize] {
        Some(PreConst::Int(v) | PreConst::Index(v)) => Some(v),
        _ => None,
    }
}

/// Rewrite `IntBin`/`IntCmp` with a known-constant operand into their
/// immediate forms.
fn fuse_immediates(tape: &mut Tape, known: &[Option<PreConst>]) {
    for inst in &mut tape.insts {
        match *inst {
            Inst::IntBin {
                op,
                lhs,
                rhs,
                out,
                index,
            } => {
                if let Some(imm) = int_imm(known, rhs) {
                    *inst = Inst::IntBinImm {
                        op,
                        lhs,
                        imm,
                        out,
                        index,
                    };
                } else if op.commutes() {
                    if let Some(imm) = int_imm(known, lhs) {
                        *inst = Inst::IntBinImm {
                            op,
                            lhs: rhs,
                            imm,
                            out,
                            index,
                        };
                    }
                }
            }
            Inst::IntCmp {
                pred,
                lhs,
                rhs,
                out,
            } => {
                if let Some(imm) = int_imm(known, rhs) {
                    *inst = Inst::IntCmpImm {
                        pred,
                        lhs,
                        imm,
                        out,
                    };
                } else if let Some(imm) = int_imm(known, lhs) {
                    *inst = Inst::IntCmpImm {
                        pred: pred.swap(),
                        lhs: rhs,
                        imm,
                        out,
                    };
                }
            }
            _ => {}
        }
    }
}

/// Remove known-constant `Const*` instructions from the tape, record
/// their slots in [`Tape::preload`], and remap every pc-valued field.
fn strip_consts(tape: &mut Tape, known: &[Option<PreConst>]) {
    let n = tape.insts.len();
    let mut removed = vec![false; n];
    let mut preload = Vec::new();
    for (pc, inst) in tape.insts.iter().enumerate() {
        let out = match *inst {
            Inst::ConstInt { out, .. }
            | Inst::ConstFloat { out, .. }
            | Inst::ConstBool { out, .. } => out,
            _ => continue,
        };
        if let Some(k) = known[out as usize] {
            removed[pc] = true;
            preload.push((out, k));
        }
    }
    if preload.is_empty() {
        return;
    }
    // `removed_before[pc]` = stripped instructions at pcs `< pc`; a
    // target pointing *at* a stripped instruction lands on the next
    // surviving one, exactly where fall-through execution would go.
    let mut removed_before = vec![0usize; n + 1];
    for pc in 0..n {
        removed_before[pc + 1] = removed_before[pc] + usize::from(removed[pc]);
    }
    let map = |pc: usize| pc - removed_before[pc];

    let old_insts = std::mem::take(&mut tape.insts);
    let old_src_ops = std::mem::take(&mut tape.src_ops);
    let old_src_names = std::mem::take(&mut tape.src_names);
    let kept = n - preload.len();
    tape.insts.reserve_exact(kept);
    tape.src_ops.reserve_exact(kept);
    tape.src_names.reserve_exact(kept);
    for (pc, ((mut inst, op), name)) in old_insts
        .into_iter()
        .zip(old_src_ops)
        .zip(old_src_names)
        .enumerate()
    {
        if removed[pc] {
            continue;
        }
        match &mut inst {
            Inst::Jump { target } | Inst::JumpIfNot { target, .. } => *target = map(*target),
            Inst::LoopEnter { exit, .. } => *exit = map(*exit),
            Inst::LoopNext { enter } => *enter = map(*enter),
            _ => {}
        }
        tape.insts.push(inst);
        tape.src_ops.push(op);
        tape.src_names.push(name);
    }
    if let Some(ql) = &mut tape.query_loop {
        ql.enter = map(ql.enter);
        ql.next = map(ql.next);
        ql.exit = map(ql.exit);
    }
    for enter in &mut tape.shard_loops {
        *enter = map(*enter);
    }
    tape.preload = preload;
}

#[cfg(test)]
mod tests {
    use crate::compile::Tape;
    use crate::isa::Inst;
    use c4cam_arch::{ArchSpec, Optimization};
    use c4cam_core::dialects::torch;
    use c4cam_core::pipeline::C4camPipeline;
    use c4cam_ir::Module;

    fn lowered_tape() -> Tape {
        let mut m = Module::new();
        torch::build_hdc_dot(&mut m, 2, 4, 64, 1);
        let spec = ArchSpec::builder()
            .subarray(16, 16)
            .hierarchy(2, 2, 4)
            .optimization(Optimization::Base)
            .build()
            .unwrap();
        let m = C4camPipeline::new(spec).compile(m).unwrap().module;
        Tape::compile(&m, "forward").unwrap()
    }

    #[test]
    fn scalar_consts_are_stripped_into_the_preload_table() {
        let tape = lowered_tape();
        assert!(
            !tape.preload.is_empty(),
            "lowered modules carry scalar constants"
        );
        // Every scalar const was single-writer, so none survive on tape.
        assert!(!tape.insts.iter().any(|i| matches!(
            i,
            Inst::ConstInt { .. } | Inst::ConstFloat { .. } | Inst::ConstBool { .. }
        )));
        // Preloaded slots are disjoint from argument slots and unique.
        let mut slots: Vec<_> = tape.preload.iter().map(|&(s, _)| s).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), tape.preload.len(), "duplicate preload slot");
        assert!(slots.iter().all(|s| !tape.arg_slots.contains(s)));
    }

    #[test]
    fn const_operands_are_fused_as_immediates() {
        let tape = lowered_tape();
        // The query nest's address arithmetic (`iv * chunk + offset`)
        // must fold its constant operands.
        assert!(tape
            .insts
            .iter()
            .any(|i| matches!(i, Inst::IntBinImm { .. })));
        assert!(tape
            .insts
            .iter()
            .any(|i| matches!(i, Inst::IntCmpImm { .. })));
    }

    #[test]
    fn control_flow_survives_pc_remapping() {
        let tape = lowered_tape();
        let n = tape.insts.len();
        for (pc, inst) in tape.insts.iter().enumerate() {
            match *inst {
                Inst::Jump { target } | Inst::JumpIfNot { target, .. } => {
                    assert!(target <= n, "jump at {pc} out of range: {target}");
                }
                Inst::LoopEnter { exit, .. } => {
                    // `exit` is one past the matching LoopNext.
                    assert!(
                        matches!(tape.insts[exit - 1], Inst::LoopNext { enter } if enter == pc),
                        "loop bracket broken at {pc}"
                    );
                }
                Inst::LoopNext { enter } => {
                    assert!(
                        matches!(tape.insts[enter], Inst::LoopEnter { .. }),
                        "back-edge at {pc} targets a non-loop pc {enter}"
                    );
                }
                _ => {}
            }
        }
        let ql = tape.query_loop().expect("query loop survives remapping");
        assert!(matches!(tape.insts[ql.enter], Inst::LoopEnter { .. }));
        assert!(matches!(tape.insts[ql.next], Inst::LoopNext { .. }));
        assert_eq!(ql.exit, ql.next + 1);
        for &enter in tape.shard_loops() {
            assert!(matches!(
                tape.insts[enter],
                Inst::LoopEnter { parallel: true, .. }
            ));
        }
    }
}
