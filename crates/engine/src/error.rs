//! Engine failures, with the offending op attached.

use c4cam_ir::OpId;
use std::error::Error;
use std::fmt;

/// Structured description of a shard worker that could not complete:
/// it panicked (or timed out) on every permitted attempt and the retry
/// policy forbade a sequential fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPanic {
    /// Zero-based shard index that failed.
    pub shard: usize,
    /// How many attempts were made (initial run + retries).
    pub attempts: u32,
    /// The panic payload (or timeout description) of the last attempt.
    pub payload: String,
}

impl fmt::Display for ShardPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} failed after {} attempt{}: {}",
            self.shard,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.payload
        )
    }
}

/// Tape compilation or execution failure.
///
/// Like [`c4cam_runtime::ExecError`], the error carries the failing
/// op's [`OpId`] and name whenever the failure can be traced to one IR
/// operation, so diagnostics point at the module instead of being
/// message-only strings. Failures of the resilient batched executor
/// additionally carry a [`ShardPanic`] describing which worker died and
/// how many attempts were made.
#[derive(Debug, Clone)]
pub struct EngineError {
    /// Description of the failure.
    pub message: String,
    /// The operation that failed, when known.
    pub op: Option<OpId>,
    /// Name of the failing operation (e.g. `"cam.search"`), when known.
    pub op_name: Option<String>,
    /// Structured shard-failure detail, when the failure was a worker
    /// panic or timeout in batched execution.
    pub shard_panic: Option<ShardPanic>,
}

impl EngineError {
    pub(crate) fn new(message: impl Into<String>) -> EngineError {
        EngineError {
            message: message.into(),
            op: None,
            op_name: None,
            shard_panic: None,
        }
    }

    pub(crate) fn from_shard_panic(panic: ShardPanic) -> EngineError {
        EngineError {
            message: panic.to_string(),
            op: None,
            op_name: None,
            shard_panic: Some(panic),
        }
    }

    /// Attach op context if none is recorded yet (the innermost failing
    /// op wins as errors propagate outward).
    #[must_use]
    pub fn with_op(mut self, op: OpId, name: &str) -> EngineError {
        if self.op.is_none() {
            self.op = Some(op);
            self.op_name = Some(name.to_string());
        }
        self
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine error: {}", self.message)?;
        if let (Some(op), Some(name)) = (self.op, self.op_name.as_deref()) {
            write!(f, " (in '{name}' at op {})", op.index())?;
        }
        Ok(())
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_op_context_when_present() {
        let e = EngineError::new("boom");
        assert_eq!(e.to_string(), "engine error: boom");
        let m = c4cam_ir::Module::new();
        let _ = m; // OpId construction goes through a module in practice
    }
}
