//! Lowering from the TorchScript AST to the `torch` dialect.

use crate::ast::{Expr, Stmt, TsFunction};
use crate::parser::FrontendError;
use c4cam_core::dialects::torch;
use c4cam_ir::builder::{build_func, OpBuilder};
use c4cam_ir::{Attribute, Module, OpId, ValueId};
use std::collections::HashMap;

type FResult<T> = Result<T, FrontendError>;

/// Shape information the front end needs (stands in for the serialized
/// TorchScript module the paper's converter reads).
#[derive(Debug, Clone, Default)]
pub struct FrontendConfig {
    /// Shapes of the tensor parameters, in positional order. Parameters
    /// beyond this list are treated as scalar configuration flags and
    /// may not be used in tensor expressions.
    pub inputs: Vec<Vec<i64>>,
    /// Shapes of `self.<name>` module parameters.
    pub parameters: HashMap<String, Vec<i64>>,
}

impl FrontendConfig {
    /// Empty configuration.
    pub fn new() -> FrontendConfig {
        FrontendConfig::default()
    }

    /// Append a positional tensor input shape.
    pub fn input(mut self, shape: Vec<i64>) -> FrontendConfig {
        self.inputs.push(shape);
        self
    }

    /// Declare a `self.<name>` parameter shape.
    pub fn parameter(mut self, name: &str, shape: Vec<i64>) -> FrontendConfig {
        self.parameters.insert(name.to_string(), shape);
        self
    }
}

/// A function lowered to torch IR inside its own [`Module`].
#[derive(Debug)]
pub struct LoweredFunction {
    /// The module holding the lowered function.
    pub module: Module,
    /// The `func.func` op.
    pub func: OpId,
    /// Function name.
    pub name: String,
    /// Names of the runtime arguments in order: tensor parameters first,
    /// then `self.<param>` weights in first-use order.
    pub arg_order: Vec<String>,
}

/// Lowering output before the module is attached (see
/// [`lower_function`]).
#[derive(Debug)]
pub struct LoweredParts {
    /// The `func.func` op.
    pub func: OpId,
    /// Function name.
    pub name: String,
    /// Runtime argument order.
    pub arg_order: Vec<String>,
}

impl LoweredParts {
    /// Package with the module that was lowered into.
    pub fn with_module(self, module: Module) -> LoweredFunction {
        LoweredFunction {
            module,
            func: self.func,
            name: self.name,
            arg_order: self.arg_order,
        }
    }
}

/// A lowered expression value.
#[derive(Debug, Clone)]
enum Lowered {
    /// SSA tensor value.
    Val(ValueId),
    /// Compile-time integer.
    Int(i64),
    /// Compile-time boolean.
    Bool(bool),
    /// `None` literal.
    None,
}

impl Lowered {
    fn val(&self) -> Option<ValueId> {
        match self {
            Lowered::Val(v) => Some(*v),
            _ => None,
        }
    }

    /// Compile-time boolean payload (used by diagnostics and future
    /// conditional lowering).
    #[allow(dead_code)]
    fn as_bool(&self) -> Option<bool> {
        match self {
            Lowered::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Collect `self.<name>` references in first-use order.
fn collect_self_params(f: &TsFunction, out: &mut Vec<String>) {
    fn walk(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Attr { base, name } => {
                if matches!(&**base, Expr::Name(n) if n == "self") {
                    if !out.contains(name) {
                        out.push(name.clone());
                    }
                } else {
                    walk(base, out);
                }
            }
            Expr::Call {
                callee,
                args,
                kwargs,
            } => {
                walk(callee, out);
                for a in args {
                    walk(a, out);
                }
                for (_, a) in kwargs {
                    walk(a, out);
                }
            }
            Expr::BinOp { lhs, rhs, .. } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            Expr::Neg(inner) => walk(inner, out),
            _ => {}
        }
    }
    for stmt in &f.body {
        match stmt {
            Stmt::Assign { value, .. } => walk(value, out),
            Stmt::Return(exprs) => {
                for e in exprs {
                    walk(e, out);
                }
            }
        }
    }
}

/// Lower one parsed function into `module`.
///
/// # Errors
/// Fails on unknown calls, missing shapes, or unsupported constructs.
pub fn lower_function(
    module: &mut Module,
    f: &TsFunction,
    config: &FrontendConfig,
) -> FResult<LoweredParts> {
    let mut self_params = Vec::new();
    collect_self_params(f, &mut self_params);

    // Assemble argument order and types.
    let f32t = module.f32_ty();
    let mut arg_order = Vec::new();
    let mut arg_types = Vec::new();
    let tensor_param_count = config.inputs.len().min(f.params.len());
    for (i, shape) in config.inputs.iter().take(tensor_param_count).enumerate() {
        arg_order.push(f.params[i].clone());
        arg_types.push(module.tensor_ty(shape, f32t));
    }
    for p in &self_params {
        let shape = config.parameters.get(p).ok_or_else(|| {
            FrontendError::new(0, format!("no shape configured for parameter self.{p}"))
        })?;
        arg_order.push(format!("self.{p}"));
        arg_types.push(module.tensor_ty(shape, f32t));
    }

    // Result types are only known after lowering; create the function
    // with a provisional type and patch `function_type` afterwards.
    let (func, entry) = build_func(module, &f.name, &arg_types, &[]);

    let mut env: HashMap<String, Lowered> = HashMap::new();
    {
        let args = module.block(entry).args.clone();
        for (name, &v) in arg_order.iter().zip(&args) {
            env.insert(name.clone(), Lowered::Val(v));
        }
    }

    let mut result_values: Option<Vec<ValueId>> = None;
    for stmt in &f.body {
        match stmt {
            Stmt::Assign { targets, value } => {
                let values = lower_expr_multi(module, entry, &mut env, value)?;
                if values.len() != targets.len() {
                    return Err(FrontendError::new(
                        0,
                        format!(
                            "assignment of {} values to {} targets",
                            values.len(),
                            targets.len()
                        ),
                    ));
                }
                for (t, v) in targets.iter().zip(values) {
                    env.insert(t.clone(), v);
                }
            }
            Stmt::Return(exprs) => {
                let mut vals = Vec::new();
                for e in exprs {
                    let lowered = lower_expr_multi(module, entry, &mut env, e)?;
                    for l in lowered {
                        vals.push(l.val().ok_or_else(|| {
                            FrontendError::new(0, "can only return tensor values")
                        })?);
                    }
                }
                let mut b = OpBuilder::at_end(module, entry);
                b.op("func.return", &vals, &[], vec![]);
                result_values = Some(vals);
                break;
            }
        }
    }
    let results = result_values
        .ok_or_else(|| FrontendError::new(0, format!("function '{}' has no return", f.name)))?;

    // Patch the function type with the actual result types.
    let result_tys: Vec<_> = results.iter().map(|&v| module.value_type(v)).collect();
    let fty = module.func_ty(&arg_types, &result_tys);
    module.set_attr(func, "function_type", Attribute::TypeAttr(fty));

    Ok(LoweredParts {
        func,
        name: f.name.clone(),
        arg_order,
    })
}

/// Lower an expression that may produce multiple values (topk).
fn lower_expr_multi(
    m: &mut Module,
    entry: c4cam_ir::BlockId,
    env: &mut HashMap<String, Lowered>,
    e: &Expr,
) -> FResult<Vec<Lowered>> {
    if let Expr::Call {
        callee,
        args,
        kwargs,
    } = e
    {
        let path = callee.dotted_path();
        let is_topk = matches!(
            path.as_deref(),
            Some("torch.topk") | Some("torch.ops.aten.topk")
        ) || matches!(&**callee, Expr::Attr { name, .. } if name == "topk");
        if is_topk {
            let (vals, idx) = lower_topk(m, entry, env, callee, args, kwargs)?;
            return Ok(vec![Lowered::Val(vals), Lowered::Val(idx)]);
        }
    }
    Ok(vec![lower_expr(m, entry, env, e)?])
}

fn lower_expr(
    m: &mut Module,
    entry: c4cam_ir::BlockId,
    env: &mut HashMap<String, Lowered>,
    e: &Expr,
) -> FResult<Lowered> {
    match e {
        Expr::Int(v) => Ok(Lowered::Int(*v)),
        Expr::Float(_) => Err(FrontendError::new(0, "float literals are not supported")),
        Expr::Bool(b) => Ok(Lowered::Bool(*b)),
        Expr::None => Ok(Lowered::None),
        Expr::Name(n) => env
            .get(n)
            .cloned()
            .ok_or_else(|| FrontendError::new(0, format!("undefined name '{n}'"))),
        Expr::Attr { base, name } => {
            if matches!(&**base, Expr::Name(n) if n == "self") {
                env.get(&format!("self.{name}"))
                    .cloned()
                    .ok_or_else(|| FrontendError::new(0, format!("unknown parameter self.{name}")))
            } else {
                Err(FrontendError::new(
                    0,
                    format!("unsupported attribute access '.{name}'"),
                ))
            }
        }
        Expr::Neg(_) => Err(FrontendError::new(0, "unary minus on tensors unsupported")),
        Expr::BinOp { op, lhs, rhs } => {
            let l = lower_expr(m, entry, env, lhs)?
                .val()
                .ok_or_else(|| FrontendError::new(0, "operator on non-tensor"))?;
            let r = lower_expr(m, entry, env, rhs)?
                .val()
                .ok_or_else(|| FrontendError::new(0, "operator on non-tensor"))?;
            let mut b = OpBuilder::at_end(m, entry);
            match op {
                '-' => Ok(Lowered::Val(torch::build_sub(&mut b, l, r))),
                '/' => {
                    let lhs_ty = b.module_ref().value_type(l);
                    let div = b.op("torch.div", &[l, r], &[lhs_ty], vec![]);
                    Ok(Lowered::Val(b.module().result(div, 0)))
                }
                other => Err(FrontendError::new(
                    0,
                    format!("unsupported operator '{other}'"),
                )),
            }
        }
        Expr::Call {
            callee,
            args,
            kwargs,
        } => lower_call(m, entry, env, callee, args, kwargs),
    }
}

fn lower_call(
    m: &mut Module,
    entry: c4cam_ir::BlockId,
    env: &mut HashMap<String, Lowered>,
    callee: &Expr,
    args: &[Expr],
    kwargs: &[(String, Expr)],
) -> FResult<Lowered> {
    let path = callee.dotted_path();
    // Known torch library functions.
    if let Some(path) = path.as_deref() {
        match path {
            "torch.matmul" | "torch.mm" => {
                let a = expect_tensor_arg(m, entry, env, args, 0)?;
                let b_arg = expect_tensor_arg(m, entry, env, args, 1)?;
                let mut b = OpBuilder::at_end(m, entry);
                return Ok(Lowered::Val(torch::build_matmul(&mut b, a, b_arg)));
            }
            "torch.sub" => {
                let a = expect_tensor_arg(m, entry, env, args, 0)?;
                let b_arg = expect_tensor_arg(m, entry, env, args, 1)?;
                let mut b = OpBuilder::at_end(m, entry);
                return Ok(Lowered::Val(torch::build_sub(&mut b, a, b_arg)));
            }
            "torch.div" => {
                let mut vals = Vec::new();
                for (i, _) in args.iter().enumerate() {
                    vals.push(expect_tensor_arg(m, entry, env, args, i)?);
                }
                if vals.len() < 2 {
                    return Err(FrontendError::new(0, "torch.div takes 2 or 3 tensors"));
                }
                let lhs_ty = m.value_type(vals[0]);
                let mut b = OpBuilder::at_end(m, entry);
                let div = b.op("torch.div", &vals, &[lhs_ty], vec![]);
                return Ok(Lowered::Val(b.module().result(div, 0)));
            }
            "torch.norm" => {
                let t = expect_tensor_arg(m, entry, env, args, 0)?;
                let mut b = OpBuilder::at_end(m, entry);
                return Ok(Lowered::Val(torch::build_norm(&mut b, t)));
            }
            "torch.topk" | "torch.ops.aten.topk" => {
                let (vals, _idx) = lower_topk(m, entry, env, callee, args, kwargs)?;
                // Single-value context: expose the values tensor.
                return Ok(Lowered::Val(vals));
            }
            "torch.transpose" => {
                let t = expect_tensor_arg(m, entry, env, args, 0)?;
                let d0 = expect_int_arg(m, entry, env, args, 1)?;
                let d1 = expect_int_arg(m, entry, env, args, 2)?;
                let mut b = OpBuilder::at_end(m, entry);
                return Ok(Lowered::Val(torch::build_transpose(&mut b, t, d0, d1)));
            }
            _ => {}
        }
    }
    // Tensor methods: callee is Attr { base: <tensor expr>, name }.
    if let Expr::Attr { base, name } = callee {
        let recv = lower_expr(m, entry, env, base)?;
        if let Some(t) = recv.val() {
            match name.as_str() {
                "transpose" => {
                    let d0 = expect_int_arg(m, entry, env, args, 0)?;
                    let d1 = expect_int_arg(m, entry, env, args, 1)?;
                    let mut b = OpBuilder::at_end(m, entry);
                    return Ok(Lowered::Val(torch::build_transpose(&mut b, t, d0, d1)));
                }
                "matmul" | "mm" => {
                    let rhs = expect_tensor_arg(m, entry, env, args, 0)?;
                    let mut b = OpBuilder::at_end(m, entry);
                    return Ok(Lowered::Val(torch::build_matmul(&mut b, t, rhs)));
                }
                "norm" => {
                    let mut b = OpBuilder::at_end(m, entry);
                    return Ok(Lowered::Val(torch::build_norm(&mut b, t)));
                }
                "sub" => {
                    let rhs = expect_tensor_arg(m, entry, env, args, 0)?;
                    let mut b = OpBuilder::at_end(m, entry);
                    return Ok(Lowered::Val(torch::build_sub(&mut b, t, rhs)));
                }
                other => {
                    return Err(FrontendError::new(
                        0,
                        format!("unsupported tensor method '.{other}()'"),
                    ))
                }
            }
        }
    }
    Err(FrontendError::new(
        0,
        format!(
            "unknown callable '{}'",
            path.unwrap_or_else(|| "<expr>".to_string())
        ),
    ))
}

fn lower_topk(
    m: &mut Module,
    entry: c4cam_ir::BlockId,
    env: &mut HashMap<String, Lowered>,
    callee: &Expr,
    args: &[Expr],
    kwargs: &[(String, Expr)],
) -> FResult<(ValueId, ValueId)> {
    // Method form: tensor.topk(k, ...) / function form: topk(t, k, ...).
    let (tensor, rest): (ValueId, &[Expr]) = match callee.dotted_path().as_deref() {
        Some("torch.topk") | Some("torch.ops.aten.topk") => {
            let t = expect_tensor_arg(m, entry, env, args, 0)?;
            (t, &args[1..])
        }
        _ => match callee {
            Expr::Attr { base, .. } => {
                let recv = lower_expr(m, entry, env, base)?
                    .val()
                    .ok_or_else(|| FrontendError::new(0, "topk receiver must be a tensor"))?;
                (recv, args)
            }
            _ => return Err(FrontendError::new(0, "malformed topk call")),
        },
    };
    let k = match rest.first() {
        Some(Expr::Int(v)) => *v,
        _ => return Err(FrontendError::new(0, "topk requires an integer k literal")),
    };
    // Positional: (k, dim, largest, sorted) — as in the Fig. 4b listing.
    let mut largest = true; // ATen default
    if let Some(Expr::Bool(b)) = rest.get(2) {
        largest = *b;
    }
    for (name, value) in kwargs {
        match (name.as_str(), value) {
            ("largest", Expr::Bool(b)) => largest = *b,
            ("sorted", _) | ("dim", _) => {}
            (other, _) => {
                return Err(FrontendError::new(
                    0,
                    format!("unsupported topk keyword '{other}'"),
                ))
            }
        }
    }
    let mut b = OpBuilder::at_end(m, entry);
    let kv = torch::build_constant_int(&mut b, k);
    Ok(torch::build_topk(&mut b, tensor, kv, k, largest))
}

fn expect_tensor_arg(
    m: &mut Module,
    entry: c4cam_ir::BlockId,
    env: &mut HashMap<String, Lowered>,
    args: &[Expr],
    i: usize,
) -> FResult<ValueId> {
    let e = args
        .get(i)
        .ok_or_else(|| FrontendError::new(0, format!("missing argument {i}")))?;
    lower_expr(m, entry, env, e)?
        .val()
        .ok_or_else(|| FrontendError::new(0, format!("argument {i} must be a tensor")))
}

fn expect_int_arg(
    m: &mut Module,
    entry: c4cam_ir::BlockId,
    env: &mut HashMap<String, Lowered>,
    args: &[Expr],
    i: usize,
) -> FResult<i64> {
    let e = args
        .get(i)
        .ok_or_else(|| FrontendError::new(0, format!("missing argument {i}")))?;
    match lower_expr(m, entry, env, e)? {
        Lowered::Int(v) => Ok(v),
        _ => Err(FrontendError::new(
            0,
            format!("argument {i} must be an integer literal"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_torchscript;
    use c4cam_core::dialects::standard_registry;
    use c4cam_ir::verify::verify_module;

    /// The paper's Fig. 4a source.
    pub const HDC_SOURCE: &str = r#"
def forward(self, input: Tensor, dot: bool = False) -> Tensor:
    others = self.weight.transpose(-2, -1)
    matmul = torch.matmul(input, (others))
    values, indices = torch.ops.aten.topk(matmul, 1, largest=False)
    return indices
"#;

    #[test]
    fn fig4a_lowers_to_fig4b_shape() {
        let config = FrontendConfig::new()
            .input(vec![10, 8192])
            .parameter("weight", vec![10, 8192]);
        let lowered = parse_torchscript(HDC_SOURCE, &config).unwrap();
        verify_module(&lowered.module, &standard_registry()).unwrap();
        assert_eq!(lowered.arg_order, vec!["input", "self.weight"]);
        let names: Vec<String> = lowered
            .module
            .walk(lowered.func)
            .iter()
            .map(|&o| lowered.module.op(o).name.clone())
            .collect();
        // Fig. 4b: transpose, mm, topk (plus the materialized k constant).
        assert_eq!(
            names,
            vec![
                "func.func",
                "torch.transpose",
                "torch.matmul",
                "torch.constant_int",
                "torch.topk",
                "func.return"
            ]
        );
        // topk carries largest=false from the kwarg.
        for op in lowered.module.walk(lowered.func) {
            if lowered.module.op(op).name == "torch.topk" {
                assert_eq!(
                    lowered
                        .module
                        .op(op)
                        .attr("largest")
                        .and_then(|a| a.as_bool()),
                    Some(false)
                );
            }
        }
    }

    #[test]
    fn knn_source_with_operators_lowers() {
        let src = r#"
def knn(self, query: Tensor) -> Tensor:
    diff = self.patterns - query
    dist = torch.norm(diff)
    values, indices = torch.topk(dist, 5, largest=False)
    return values, indices
"#;
        let config = FrontendConfig::new()
            .input(vec![1, 128])
            .parameter("patterns", vec![100, 128]);
        let lowered = parse_torchscript(src, &config).unwrap();
        verify_module(&lowered.module, &standard_registry()).unwrap();
        assert_eq!(lowered.arg_order, vec!["query", "self.patterns"]);
        let names: Vec<String> = lowered
            .module
            .walk(lowered.func)
            .iter()
            .map(|&o| lowered.module.op(o).name.clone())
            .collect();
        assert!(names.contains(&"torch.sub".to_string()));
        assert!(names.contains(&"torch.norm".to_string()));
    }

    #[test]
    fn missing_parameter_shape_is_reported() {
        let config = FrontendConfig::new().input(vec![10, 8192]);
        let e = parse_torchscript(HDC_SOURCE, &config).unwrap_err();
        assert!(e.message.contains("self.weight"), "{e}");
    }

    #[test]
    fn undefined_name_is_reported() {
        let src = "def f(self, x: Tensor):\n    return torch.matmul(x, ghost)\n";
        let config = FrontendConfig::new().input(vec![4, 4]);
        let e = parse_torchscript(src, &config).unwrap_err();
        assert!(e.message.contains("ghost"), "{e}");
    }

    #[test]
    fn dynamic_k_is_rejected() {
        let src = "def f(self, x: Tensor, k: Tensor):\n    v, i = torch.topk(x, k)\n    return i\n";
        let config = FrontendConfig::new().input(vec![4, 4]).input(vec![1]);
        let e = parse_torchscript(src, &config).unwrap_err();
        assert!(e.message.contains("integer k"), "{e}");
    }

    #[test]
    fn function_without_return_is_rejected() {
        let src = "def f(self, x: Tensor):\n    y = torch.norm(x)\n";
        let config = FrontendConfig::new().input(vec![4, 4]);
        let e = parse_torchscript(src, &config).unwrap_err();
        assert!(e.message.contains("no return"), "{e}");
    }

    #[test]
    fn lowered_hdc_executes_like_builder_version() {
        use c4cam_runtime::{Executor, Value};
        use c4cam_tensor::Tensor;
        let config = FrontendConfig::new()
            .input(vec![3, 64])
            .parameter("weight", vec![4, 64]);
        let lowered = parse_torchscript(HDC_SOURCE, &config).unwrap();
        let mut stored = Vec::new();
        for c in 0..4 {
            for d in 0..64 {
                stored.push(f32::from(u8::from((d + c) % 3 == 0)));
            }
        }
        let stored = Tensor::from_vec(vec![4, 64], stored).unwrap();
        let queries = stored.slice2d(0, 0, 3, 64).unwrap();
        let out = Executor::new(&lowered.module)
            .run(
                "forward",
                &[
                    Value::Tensor(queries.clone()),
                    Value::Tensor(stored.clone()),
                ],
            )
            .unwrap();
        let scores = queries.matmul(&stored.transpose2d().unwrap()).unwrap();
        let expect = scores.topk(1, false).unwrap();
        assert_eq!(out[0].as_tensor().unwrap(), &expect.indices);
    }
}
