//! Line-oriented parser for the TorchScript subset.
//!
//! Statements are one per line (the paper's kernels are straight-line
//! code); indentation is accepted but not semantically enforced beyond
//! "body lines follow their `def`".

use crate::ast::{Expr, Stmt, TsFunction};
use std::error::Error;
use std::fmt;

/// Front-end failure with source line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// 1-based source line (0 when not line-specific).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl FrontendError {
    /// Construct an error.
    pub fn new(line: usize, message: impl Into<String>) -> FrontendError {
        FrontendError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "frontend error at line {}: {}", self.line, self.message)
        } else {
            write!(f, "frontend error: {}", self.message)
        }
    }
}

impl Error for FrontendError {}

type FResult<T> = Result<T, FrontendError>;
/// Positional and keyword arguments of a call expression.
type CallArgs = (Vec<Expr>, Vec<(String, Expr)>);

/// Parse all `def`s in `src`.
///
/// # Errors
/// Fails with line-attributed [`FrontendError`]s on malformed input.
pub fn parse_source(src: &str) -> FResult<Vec<TsFunction>> {
    let mut functions: Vec<TsFunction> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim_end();
        let trimmed = line.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("def ") {
            functions.push(parse_def(lineno, rest)?);
        } else {
            let func = functions
                .last_mut()
                .ok_or_else(|| FrontendError::new(lineno, "statement outside a function"))?;
            func.body.push(parse_stmt(lineno, trimmed)?);
        }
    }
    Ok(functions)
}

fn strip_comment(line: &str) -> &str {
    // No string literals in the supported subset, so '#' always starts a
    // comment.
    match line.find('#') {
        Some(p) => &line[..p],
        None => line,
    }
}

fn parse_def(lineno: usize, rest: &str) -> FResult<TsFunction> {
    let open = rest
        .find('(')
        .ok_or_else(|| FrontendError::new(lineno, "expected '(' in def"))?;
    let name = rest[..open].trim().to_string();
    if name.is_empty() {
        return Err(FrontendError::new(lineno, "missing function name"));
    }
    let close = rest
        .rfind(')')
        .ok_or_else(|| FrontendError::new(lineno, "expected ')' in def"))?;
    let params_text = &rest[open + 1..close];
    let mut params = Vec::new();
    for part in split_top_level(params_text, ',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        // `name: Tensor = default` — keep only the name.
        let pname = part
            .split(':')
            .next()
            .unwrap_or(part)
            .split('=')
            .next()
            .unwrap_or(part)
            .trim();
        if pname == "self" {
            continue;
        }
        params.push(pname.to_string());
    }
    Ok(TsFunction {
        name,
        params,
        body: Vec::new(),
    })
}

/// Split on `sep` at paren/bracket depth 0.
fn split_top_level(text: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            c if c == sep && depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

fn parse_stmt(lineno: usize, line: &str) -> FResult<Stmt> {
    if let Some(rest) = line.strip_prefix("return") {
        let rest = rest.trim();
        let exprs = if rest.is_empty() {
            Vec::new()
        } else {
            split_top_level(rest, ',')
                .into_iter()
                .map(|p| ExprParser::new(lineno, p.trim()).parse_full())
                .collect::<FResult<Vec<_>>>()?
        };
        return Ok(Stmt::Return(exprs));
    }
    // Assignment: find a top-level '=' that is not '==' and not a kwarg
    // (kwargs live inside parens so depth > 0 there).
    let bytes = line.as_bytes();
    let mut depth = 0i32;
    let mut eq_pos = None;
    for (i, &c) in bytes.iter().enumerate() {
        match c {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'=' if depth == 0 => {
                let next_eq = bytes.get(i + 1) == Some(&b'=');
                let prev_eq = i > 0 && bytes[i - 1] == b'=';
                if !next_eq && !prev_eq {
                    eq_pos = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let eq = eq_pos.ok_or_else(|| {
        FrontendError::new(lineno, format!("expected assignment or return: '{line}'"))
    })?;
    let targets: Vec<String> = split_top_level(&line[..eq], ',')
        .into_iter()
        .map(|t| t.trim().to_string())
        .collect();
    for t in &targets {
        if t.is_empty() || !t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(FrontendError::new(
                lineno,
                format!("invalid assignment target '{t}'"),
            ));
        }
    }
    let value = ExprParser::new(lineno, line[eq + 1..].trim()).parse_full()?;
    Ok(Stmt::Assign { targets, value })
}

/// Recursive-descent expression parser over one statement's text.
struct ExprParser<'a> {
    line: usize,
    src: &'a [u8],
    pos: usize,
}

impl<'a> ExprParser<'a> {
    fn new(line: usize, src: &'a str) -> ExprParser<'a> {
        ExprParser {
            line,
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error<T>(&self, message: impl Into<String>) -> FResult<T> {
        Err(FrontendError::new(self.line, message.into()))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_full(&mut self) -> FResult<Expr> {
        let e = self.parse_additive()?;
        self.skip_ws();
        if self.pos != self.src.len() {
            return self.error(format!(
                "trailing input: '{}'",
                String::from_utf8_lossy(&self.src[self.pos..])
            ));
        }
        Ok(e)
    }

    fn parse_additive(&mut self) -> FResult<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            match self.peek() {
                Some(b'-') => {
                    self.pos += 1;
                    let rhs = self.parse_multiplicative()?;
                    lhs = Expr::BinOp {
                        op: '-',
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                Some(b'+') => {
                    self.pos += 1;
                    let rhs = self.parse_multiplicative()?;
                    lhs = Expr::BinOp {
                        op: '+',
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_multiplicative(&mut self) -> FResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    let rhs = self.parse_unary()?;
                    lhs = Expr::BinOp {
                        op: '/',
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                Some(b'*') => {
                    self.pos += 1;
                    let rhs = self.parse_unary()?;
                    lhs = Expr::BinOp {
                        op: '*',
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_unary(&mut self) -> FResult<Expr> {
        if self.eat(b'-') {
            let inner = self.parse_unary()?;
            // Fold negative literals immediately.
            return Ok(match inner {
                Expr::Int(v) => Expr::Int(-v),
                Expr::Float(v) => Expr::Float(-v),
                other => Expr::Neg(Box::new(other)),
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> FResult<Expr> {
        let mut expr = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'.') => {
                    self.pos += 1;
                    let name = self.parse_ident()?;
                    expr = Expr::Attr {
                        base: Box::new(expr),
                        name,
                    };
                }
                Some(b'(') => {
                    self.pos += 1;
                    let (args, kwargs) = self.parse_call_args()?;
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                        kwargs,
                    };
                }
                _ => return Ok(expr),
            }
        }
    }

    fn parse_call_args(&mut self) -> FResult<CallArgs> {
        let mut args = Vec::new();
        let mut kwargs = Vec::new();
        if self.eat(b')') {
            return Ok((args, kwargs));
        }
        loop {
            // kwarg lookahead: ident '=' (but not '==').
            let save = self.pos;
            if let Ok(name) = self.parse_ident() {
                if self.peek() == Some(b'=') && self.src.get(self.pos + 1) != Some(&b'=') {
                    self.pos += 1;
                    let value = self.parse_additive()?;
                    kwargs.push((name, value));
                    if self.eat(b',') {
                        continue;
                    }
                    break;
                }
            }
            self.pos = save;
            let value = self.parse_additive()?;
            if !kwargs.is_empty() {
                return self.error("positional argument after keyword argument");
            }
            args.push(value);
            if self.eat(b',') {
                continue;
            }
            break;
        }
        if !self.eat(b')') {
            return self.error("expected ')' to close call");
        }
        Ok((args, kwargs))
    }

    fn parse_atom(&mut self) -> FResult<Expr> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let inner = self.parse_additive()?;
                if !self.eat(b')') {
                    return self.error("expected ')'");
                }
                Ok(inner)
            }
            Some(c) if c.is_ascii_digit() => self.parse_number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.parse_ident()?;
                Ok(match name.as_str() {
                    "True" => Expr::Bool(true),
                    "False" => Expr::Bool(false),
                    "None" => Expr::None,
                    _ => Expr::Name(name),
                })
            }
            other => self.error(format!("unexpected character {other:?}")),
        }
    }

    fn parse_ident(&mut self) -> FResult<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.error("expected identifier");
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_number(&mut self) -> FResult<Expr> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.src.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        if is_float {
            text.parse::<f64>()
                .map(Expr::Float)
                .map_err(|_| FrontendError::new(self.line, format!("bad float '{text}'")))
        } else {
            text.parse::<i64>()
                .map(Expr::Int)
                .map_err(|_| FrontendError::new(self.line, format!("bad integer '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig4a_hdc_kernel() {
        let src = r#"
def forward(self, input: Tensor, dot: bool = False) -> Tensor:
    others = self.weight.transpose(-2, -1)
    matmul = torch.matmul(input, (others))
    values, indices = torch.ops.aten.topk(matmul, 1, largest=False)
    return indices
"#;
        let funcs = parse_source(src).unwrap();
        assert_eq!(funcs.len(), 1);
        let f = &funcs[0];
        assert_eq!(f.name, "forward");
        assert_eq!(f.params, vec!["input", "dot"]);
        assert_eq!(f.body.len(), 4);
        match &f.body[2] {
            Stmt::Assign { targets, value } => {
                assert_eq!(targets, &vec!["values".to_string(), "indices".to_string()]);
                match value {
                    Expr::Call {
                        callee,
                        args,
                        kwargs,
                    } => {
                        assert_eq!(callee.dotted_path().as_deref(), Some("torch.ops.aten.topk"));
                        assert_eq!(args.len(), 2);
                        assert_eq!(args[1], Expr::Int(1));
                        assert_eq!(kwargs[0], ("largest".to_string(), Expr::Bool(false)));
                    }
                    other => panic!("expected call, got {other:?}"),
                }
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_binary_operators_with_precedence() {
        let funcs =
            parse_source("def f(self, a: Tensor, b: Tensor):\n    c = a - b / b\n    return c\n")
                .unwrap();
        match &funcs[0].body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::BinOp { op: '-', rhs, .. } => {
                    assert!(matches!(**rhs, Expr::BinOp { op: '/', .. }));
                }
                other => panic!("expected '-', got {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_negative_literals() {
        let funcs =
            parse_source("def f(self, x: Tensor):\n    y = x.transpose(-2, -1)\n    return y\n")
                .unwrap();
        match &funcs[0].body[0] {
            Stmt::Assign {
                value: Expr::Call { args, .. },
                ..
            } => {
                assert_eq!(args[0], Expr::Int(-2));
                assert_eq!(args[1], Expr::Int(-1));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "
# leading comment
def f(self, x: Tensor):  # trailing
    # inner comment
    y = x.norm()
    return y
";
        let funcs = parse_source(src).unwrap();
        assert_eq!(funcs[0].body.len(), 2);
    }

    #[test]
    fn statement_outside_function_errors() {
        let e = parse_source("x = 1\n").unwrap_err();
        assert!(e.message.contains("outside"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let e = parse_source("def f(self, x: Tensor):\n    x +\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_source("def f(self, x: Tensor):\n    y = torch.matmul(x\n").unwrap_err();
        assert!(e.message.contains(")"), "{e}");
    }

    #[test]
    fn multiple_defs_parse_independently() {
        let src = "
def f(self, x: Tensor):
    return x
def g(self, y: Tensor):
    return y
";
        let funcs = parse_source(src).unwrap();
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[1].name, "g");
        assert_eq!(funcs[1].params, vec!["y"]);
    }

    #[test]
    fn return_tuple_parses() {
        let funcs =
            parse_source("def f(self, x: Tensor):\n    v, i = torch.topk(x, 3)\n    return v, i\n")
                .unwrap();
        match &funcs[0].body[1] {
            Stmt::Return(exprs) => assert_eq!(exprs.len(), 2),
            _ => panic!(),
        }
    }
}
