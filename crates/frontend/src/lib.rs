//! # c4cam-frontend — TorchScript-like front end
//!
//! C4CAM's entry point is TorchScript: the paper converts `forward`
//! functions through the PyTorch MLIR converter, extended with the
//! search primitives `norm` and `topk` (§III-C). PyTorch does not exist
//! in this environment, so this crate implements a parser for the
//! TorchScript subset the paper's kernels use (Fig. 4a) and lowers it
//! directly to the `torch` dialect.
//!
//! Supported surface:
//!
//! * `def name(self, x: Tensor, ...) -> Tensor:` definitions,
//! * assignments (incl. tuple destructuring), `return`,
//! * `self.<param>` module parameters (shapes come from
//!   [`FrontendConfig`]; the lowered function takes them as trailing
//!   arguments),
//! * calls: `torch.matmul`, `torch.mm`, `torch.sub`, `torch.div`,
//!   `torch.norm`, `torch.topk`, `torch.ops.aten.topk`, and tensor
//!   methods `.transpose(a, b)`, `.matmul(b)`, `.norm()`,
//! * operators `-` and `/` on tensors, unary minus on literals,
//! * keyword arguments (`largest=False`), `True`/`False`/`None`.
//!
//! ## Example
//!
//! ```
//! use c4cam_frontend::{parse_torchscript, FrontendConfig};
//!
//! # fn main() -> Result<(), c4cam_frontend::FrontendError> {
//! let src = r#"
//! def forward(self, input: Tensor) -> Tensor:
//!     others = self.weight.transpose(-2, -1)
//!     matmul = torch.matmul(input, (others))
//!     values, indices = torch.ops.aten.topk(matmul, 1, largest=False)
//!     return indices
//! "#;
//! let config = FrontendConfig::new()
//!     .input(vec![10, 8192])
//!     .parameter("weight", vec![10, 8192]);
//! let lowered = parse_torchscript(src, &config)?;
//! assert_eq!(lowered.arg_order, vec!["input", "self.weight"]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod ast;
mod lower;
mod parser;

pub use ast::{Expr, Stmt, TsFunction};
pub use lower::{lower_function, FrontendConfig, LoweredFunction};
pub use parser::{parse_source, FrontendError};

use c4cam_ir::Module;

/// Parse TorchScript source and lower its first function to torch IR.
///
/// # Errors
/// Fails on syntax errors, unknown calls, or missing shape information.
pub fn parse_torchscript(
    src: &str,
    config: &FrontendConfig,
) -> Result<LoweredFunction, FrontendError> {
    let funcs = parse_source(src)?;
    let func = funcs
        .first()
        .ok_or_else(|| FrontendError::new(0, "no function definition found"))?;
    let mut module = Module::new();
    let lowered = lower_function(&mut module, func, config)?;
    Ok(lowered.with_module(module))
}
