//! Abstract syntax tree for the TorchScript subset.

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Local variable or function parameter reference.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `True` / `False`.
    Bool(bool),
    /// `None`.
    None,
    /// Attribute access `base.name` (e.g. `self.weight`, `torch.ops`).
    Attr {
        /// Base expression.
        base: Box<Expr>,
        /// Attribute name.
        name: String,
    },
    /// Call `callee(args, kw=...)`.
    Call {
        /// The called expression (a name, attribute chain, or method).
        callee: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Keyword arguments.
        kwargs: Vec<(String, Expr)>,
    },
    /// Binary operator (`-` or `/`).
    BinOp {
        /// Operator character.
        op: char,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
}

impl Expr {
    /// Flatten an attribute chain rooted at a [`Expr::Name`] into a
    /// dotted path (e.g. `torch.ops.aten.topk`). Returns `None` if the
    /// chain is rooted in a non-name expression (a method call).
    pub fn dotted_path(&self) -> Option<String> {
        match self {
            Expr::Name(n) => Some(n.clone()),
            Expr::Attr { base, name } => {
                let prefix = base.dotted_path()?;
                Some(format!("{prefix}.{name}"))
            }
            _ => None,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `a, b = expr` (single or tuple targets).
    Assign {
        /// Target variable names.
        targets: Vec<String>,
        /// Assigned expression.
        value: Expr,
    },
    /// `return expr, ...`.
    Return(Vec<Expr>),
}

/// A parsed `def` with its parameter names (excluding `self`).
#[derive(Debug, Clone, PartialEq)]
pub struct TsFunction {
    /// Function name.
    pub name: String,
    /// Parameter names in order (without `self`).
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_path_flattens_chains() {
        let e = Expr::Attr {
            base: Box::new(Expr::Attr {
                base: Box::new(Expr::Name("torch".into())),
                name: "ops".into(),
            }),
            name: "aten".into(),
        };
        assert_eq!(e.dotted_path(), Some("torch.ops.aten".to_string()));
        let call_rooted = Expr::Attr {
            base: Box::new(Expr::Call {
                callee: Box::new(Expr::Name("f".into())),
                args: vec![],
                kwargs: vec![],
            }),
            name: "t".into(),
        };
        assert_eq!(call_rooted.dotted_path(), None);
    }
}
