//! Type system for the C4CAM IR.
//!
//! Types are interned per-[`Module`](crate::Module): a [`Type`] is a cheap
//! copyable handle into the module's interner, and structurally equal types
//! always compare equal by handle. The set of types mirrors the subset of
//! MLIR that the C4CAM pipeline touches: scalars, `index`, ranked tensors,
//! memrefs, function types, and the CAM handle types introduced by the
//! `cam` dialect (`!cam.bank_id` and friends).

use std::fmt;

/// A handle to an interned type. Only meaningful together with the
/// [`Module`](crate::Module) that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Type(pub(crate) u32);

impl Type {
    /// Raw index of this handle inside its module's interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Level of the CAM hierarchy a handle type refers to.
///
/// The `cam` dialect allocates resources level by level
/// (`cam.alloc_bank` → `cam.alloc_mat` → `cam.alloc_array` →
/// `cam.alloc_subarray`), each returning a value of the matching handle
/// type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CamLevel {
    /// A CAM bank (`!cam.bank_id`).
    Bank,
    /// A mat inside a bank (`!cam.mat_id`).
    Mat,
    /// A CAM array inside a mat (`!cam.array_id`).
    Array,
    /// A subarray inside an array (`!cam.subarray_id`).
    Subarray,
}

impl CamLevel {
    /// All levels, outermost first.
    pub const ALL: [CamLevel; 4] = [
        CamLevel::Bank,
        CamLevel::Mat,
        CamLevel::Array,
        CamLevel::Subarray,
    ];

    /// The textual keyword used in the IR (`bank_id`, `mat_id`, ...).
    pub fn keyword(self) -> &'static str {
        match self {
            CamLevel::Bank => "bank_id",
            CamLevel::Mat => "mat_id",
            CamLevel::Array => "array_id",
            CamLevel::Subarray => "subarray_id",
        }
    }

    /// The next level down the hierarchy, if any.
    pub fn child(self) -> Option<CamLevel> {
        match self {
            CamLevel::Bank => Some(CamLevel::Mat),
            CamLevel::Mat => Some(CamLevel::Array),
            CamLevel::Array => Some(CamLevel::Subarray),
            CamLevel::Subarray => None,
        }
    }
}

impl fmt::Display for CamLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Structural description of a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// Signless integer of the given bit width (`i1`, `i32`, `i64`, ...).
    Integer {
        /// Bit width.
        width: u32,
    },
    /// IEEE float of the given bit width (`f32`, `f64`).
    Float {
        /// Bit width.
        width: u32,
    },
    /// Platform-sized index type (`index`).
    Index,
    /// The empty/unit type (`none`).
    None,
    /// Ranked tensor (`tensor<10x8192xf32>`). A dimension of
    /// [`DYNAMIC_DIM`] denotes a dynamic size (`?`).
    RankedTensor {
        /// Dimension sizes.
        shape: Vec<i64>,
        /// Element type.
        elem: Type,
    },
    /// Buffer type (`memref<10x32xf32>`), produced by bufferization in the
    /// `cim`-to-`cam` lowering.
    MemRef {
        /// Dimension sizes.
        shape: Vec<i64>,
        /// Element type.
        elem: Type,
    },
    /// Function type (`(T...) -> (T...)`).
    Function {
        /// Parameter types.
        inputs: Vec<Type>,
        /// Result types.
        results: Vec<Type>,
    },
    /// CAM hierarchy handle (`!cam.bank_id`, ...).
    CamHandle(CamLevel),
}

/// Sentinel shape entry meaning "dynamic dimension" (printed as `?`).
pub const DYNAMIC_DIM: i64 = i64::MIN;

impl TypeKind {
    /// Whether the type is a shaped type (tensor or memref).
    pub fn is_shaped(&self) -> bool {
        matches!(
            self,
            TypeKind::RankedTensor { .. } | TypeKind::MemRef { .. }
        )
    }

    /// Shape of a shaped type.
    pub fn shape(&self) -> Option<&[i64]> {
        match self {
            TypeKind::RankedTensor { shape, .. } | TypeKind::MemRef { shape, .. } => Some(shape),
            _ => None,
        }
    }

    /// Element type of a shaped type.
    pub fn elem(&self) -> Option<Type> {
        match self {
            TypeKind::RankedTensor { elem, .. } | TypeKind::MemRef { elem, .. } => Some(*elem),
            _ => None,
        }
    }

    /// Number of elements of a statically shaped type.
    pub fn num_elements(&self) -> Option<i64> {
        let shape = self.shape()?;
        let mut n: i64 = 1;
        for &d in shape {
            if d == DYNAMIC_DIM {
                return None;
            }
            n = n.checked_mul(d)?;
        }
        Some(n)
    }
}

/// Per-module type interner.
#[derive(Debug, Default, Clone)]
pub(crate) struct TypeInterner {
    kinds: Vec<TypeKind>,
    map: std::collections::HashMap<TypeKind, Type>,
}

impl TypeInterner {
    pub(crate) fn intern(&mut self, kind: TypeKind) -> Type {
        if let Some(&t) = self.map.get(&kind) {
            return t;
        }
        let t = Type(self.kinds.len() as u32);
        self.kinds.push(kind.clone());
        self.map.insert(kind, t);
        t
    }

    pub(crate) fn kind(&self, ty: Type) -> &TypeKind {
        &self.kinds[ty.0 as usize]
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.kinds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes_structurally_equal_types() {
        let mut i = TypeInterner::default();
        let f32a = i.intern(TypeKind::Float { width: 32 });
        let f32b = i.intern(TypeKind::Float { width: 32 });
        assert_eq!(f32a, f32b);
        let t1 = i.intern(TypeKind::RankedTensor {
            shape: vec![10, 8192],
            elem: f32a,
        });
        let t2 = i.intern(TypeKind::RankedTensor {
            shape: vec![10, 8192],
            elem: f32b,
        });
        assert_eq!(t1, t2);
        assert_ne!(f32a, t1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn num_elements_handles_static_and_dynamic() {
        let mut i = TypeInterner::default();
        let f32t = i.intern(TypeKind::Float { width: 32 });
        let stat = TypeKind::RankedTensor {
            shape: vec![10, 32],
            elem: f32t,
        };
        assert_eq!(stat.num_elements(), Some(320));
        let dynt = TypeKind::RankedTensor {
            shape: vec![10, DYNAMIC_DIM],
            elem: f32t,
        };
        assert_eq!(dynt.num_elements(), None);
        assert!(stat.is_shaped());
        assert_eq!(stat.shape(), Some(&[10i64, 32][..]));
        assert_eq!(stat.elem(), Some(f32t));
    }

    #[test]
    fn cam_level_hierarchy_walks_down() {
        assert_eq!(CamLevel::Bank.child(), Some(CamLevel::Mat));
        assert_eq!(CamLevel::Mat.child(), Some(CamLevel::Array));
        assert_eq!(CamLevel::Array.child(), Some(CamLevel::Subarray));
        assert_eq!(CamLevel::Subarray.child(), None);
        assert_eq!(CamLevel::Bank.to_string(), "bank_id");
    }
}
