//! Parser for the generic textual IR form produced by [`crate::print`].
//!
//! The grammar is the MLIR generic-operation form:
//!
//! ```text
//! op     := (results "=")? "\"name\"" "(" operands ")" regions? attrs? ":" signature
//! region := "{" block+ "}"
//! block  := "^bb" "(" args ")" ":" op*
//! ```
//!
//! The parser is a hand-rolled, character-level recursive descent with
//! precise error positions; round-tripping `print(parse(print(m)))` is
//! covered by property tests.

use crate::attr::Attribute;
use crate::module::{BlockId, Module, OpId, ValueId};
use crate::types::{CamLevel, Type, TypeKind, DYNAMIC_DIM};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// 1-based column of the failure.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    values: HashMap<String, ValueId>,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            values: HashMap::new(),
        }
    }

    fn error<T>(&self, message: impl Into<String>) -> PResult<T> {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.src[..self.pos.min(self.src.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Err(ParseError {
            line,
            col,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // line comments
            if self.pos + 1 < self.src.len()
                && self.src[self.pos] == b'/'
                && self.src[self.pos + 1] == b'/'
            {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn peek_raw(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn at_eof(&mut self) -> bool {
        self.peek().is_none()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> PResult<()> {
        if self.eat(c) {
            Ok(())
        } else {
            let found = self.peek().map(|b| b as char).unwrap_or('∅');
            self.error(format!("expected '{}', found '{}'", c as char, found))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let bytes = kw.as_bytes();
        if self.src[self.pos..].starts_with(bytes) {
            let after = self.pos + bytes.len();
            let boundary = self
                .src
                .get(after)
                .map(|&b| !b.is_ascii_alphanumeric() && b != b'_')
                .unwrap_or(true);
            if boundary {
                self.pos = after;
                return true;
            }
        }
        false
    }

    fn parse_ident(&mut self) -> PResult<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric()
                || self.src[self.pos] == b'_'
                || self.src[self.pos] == b'.')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.error("expected identifier");
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_string(&mut self) -> PResult<String> {
        self.skip_ws();
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek_raw() {
                None => return self.error("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek_raw() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        _ => return self.error("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_value_name(&mut self) -> PResult<String> {
        self.skip_ws();
        self.expect(b'%')?;
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.error("expected value name after '%'");
        }
        Ok(format!(
            "%{}",
            String::from_utf8_lossy(&self.src[start..self.pos])
        ))
    }

    fn resolve(&mut self, name: &str) -> PResult<ValueId> {
        match self.values.get(name) {
            Some(&v) => Ok(v),
            None => self.error(format!("use of undefined value {name}")),
        }
    }

    /// Number literal; integers stay `Int`, anything with '.', 'e' or 'E'
    /// becomes `Float`.
    fn parse_number(&mut self) -> PResult<Attribute> {
        self.skip_ws();
        let start = self.pos;
        if self.peek_raw() == Some(b'-') {
            self.pos += 1;
        }
        if self.eat_keyword("inf") {
            let text = String::from_utf8_lossy(&self.src[start..self.pos]);
            return Ok(Attribute::Float(if text.starts_with('-') {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }));
        }
        let digits_start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return self.error("expected number");
        }
        let mut is_float = false;
        if self.peek_raw() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
        }
        if matches!(self.peek_raw(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek_raw(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        if is_float {
            match text.parse::<f64>() {
                Ok(v) => Ok(Attribute::Float(v)),
                Err(_) => self.error(format!("invalid float literal '{text}'")),
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => Ok(Attribute::Int(v)),
                Err(_) => self.error(format!("invalid integer literal '{text}'")),
            }
        }
    }

    fn looks_like_type(&mut self) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        for kw in ["tensor<", "memref<", "index", "none", "!cam."] {
            if rest.starts_with(kw.as_bytes()) {
                return true;
            }
        }
        if rest.starts_with(b"(") {
            return true;
        }
        // iN / fN
        if rest.len() >= 2 && (rest[0] == b'i' || rest[0] == b'f') && rest[1].is_ascii_digit() {
            return true;
        }
        false
    }

    fn parse_type(&mut self, m: &mut Module) -> PResult<Type> {
        self.skip_ws();
        if self.eat_keyword("index") {
            return Ok(m.index_ty());
        }
        if self.eat_keyword("none") {
            return Ok(m.none_ty());
        }
        if self.eat_keyword("tensor") {
            self.expect(b'<')?;
            let (shape, elem) = self.parse_shape(m)?;
            self.expect(b'>')?;
            return Ok(m.tensor_ty(&shape, elem));
        }
        if self.eat_keyword("memref") {
            self.expect(b'<')?;
            let (shape, elem) = self.parse_shape(m)?;
            self.expect(b'>')?;
            return Ok(m.memref_ty(&shape, elem));
        }
        if self.peek() == Some(b'!') {
            self.pos += 1;
            let name = self.parse_ident()?;
            let level = match name.as_str() {
                "cam.bank_id" => CamLevel::Bank,
                "cam.mat_id" => CamLevel::Mat,
                "cam.array_id" => CamLevel::Array,
                "cam.subarray_id" => CamLevel::Subarray,
                other => return self.error(format!("unknown dialect type !{other}")),
            };
            return Ok(m.cam_ty(level));
        }
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let mut inputs = Vec::new();
            if self.peek() != Some(b')') {
                loop {
                    inputs.push(self.parse_type(m)?);
                    if !self.eat(b',') {
                        break;
                    }
                }
            }
            self.expect(b')')?;
            self.expect(b'-')?;
            self.expect(b'>')?;
            let results = if self.peek() == Some(b'(') {
                self.pos += 1;
                let mut rs = Vec::new();
                if self.peek() != Some(b')') {
                    loop {
                        rs.push(self.parse_type(m)?);
                        if !self.eat(b',') {
                            break;
                        }
                    }
                }
                self.expect(b')')?;
                rs
            } else {
                vec![self.parse_type(m)?]
            };
            return Ok(m.func_ty(&inputs, &results));
        }
        // iN / fN
        let c = self.peek();
        if c == Some(b'i') || c == Some(b'f') {
            let is_int = c == Some(b'i');
            self.pos += 1;
            let start = self.pos;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            if self.pos == start {
                return self.error("expected bit width");
            }
            let width: u32 = String::from_utf8_lossy(&self.src[start..self.pos])
                .parse()
                .map_err(|_| ParseError {
                    line: 0,
                    col: 0,
                    message: "bad width".into(),
                })?;
            return Ok(if is_int {
                m.intern_type(TypeKind::Integer { width })
            } else {
                m.intern_type(TypeKind::Float { width })
            });
        }
        self.error("expected type")
    }

    fn parse_shape(&mut self, m: &mut Module) -> PResult<(Vec<i64>, Type)> {
        let mut shape = Vec::new();
        loop {
            self.skip_ws();
            match self.peek_raw() {
                Some(b'?') => {
                    self.pos += 1;
                    shape.push(DYNAMIC_DIM);
                    self.expect(b'x')?;
                }
                Some(c) if c.is_ascii_digit() => {
                    let start = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                        self.pos += 1;
                    }
                    let dim: i64 = String::from_utf8_lossy(&self.src[start..self.pos])
                        .parse()
                        .unwrap();
                    shape.push(dim);
                    self.expect(b'x')?;
                }
                _ => break,
            }
        }
        let elem = self.parse_type(m)?;
        Ok((shape, elem))
    }

    fn parse_attr(&mut self, m: &mut Module) -> PResult<Attribute> {
        self.skip_ws();
        if self.eat_keyword("unit") {
            return Ok(Attribute::Unit);
        }
        if self.eat_keyword("true") {
            return Ok(Attribute::Bool(true));
        }
        if self.eat_keyword("false") {
            return Ok(Attribute::Bool(false));
        }
        if self.eat_keyword("nan") {
            return Ok(Attribute::Float(f64::NAN));
        }
        if self.eat_keyword("inf") {
            return Ok(Attribute::Float(f64::INFINITY));
        }
        if self.eat_keyword("dense") {
            self.expect(b'<')?;
            let elem = self.parse_ident()?;
            self.expect(b',')?;
            self.expect(b'[')?;
            let mut shape = Vec::new();
            if self.peek() != Some(b']') {
                loop {
                    match self.parse_number()? {
                        Attribute::Int(v) => shape.push(v),
                        _ => return self.error("dense shape must be integers"),
                    }
                    if !self.eat(b',') {
                        break;
                    }
                }
            }
            self.expect(b']')?;
            self.expect(b',')?;
            self.expect(b'[')?;
            let mut raw = Vec::new();
            if self.peek() != Some(b']') {
                loop {
                    raw.push(self.parse_number()?);
                    if !self.eat(b',') {
                        break;
                    }
                }
            }
            self.expect(b']')?;
            self.expect(b'>')?;
            return match elem.as_str() {
                "f32" => Ok(Attribute::dense_f32(
                    shape,
                    raw.iter()
                        .map(|a| a.as_float().unwrap_or(0.0) as f32)
                        .collect(),
                )),
                "i64" => {
                    let mut vals = Vec::with_capacity(raw.len());
                    for a in &raw {
                        match a {
                            Attribute::Int(v) => vals.push(*v),
                            Attribute::Float(v) => vals.push(*v as i64),
                            _ => return self.error("dense i64 payload must be numeric"),
                        }
                    }
                    Ok(Attribute::dense_i64(shape, vals))
                }
                other => self.error(format!("unknown dense element type {other}")),
            };
        }
        match self.peek() {
            Some(b'"') => Ok(Attribute::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() != Some(b']') {
                    loop {
                        items.push(self.parse_attr(m)?);
                        if !self.eat(b',') {
                            break;
                        }
                    }
                }
                self.expect(b']')?;
                Ok(Attribute::Array(items))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ if self.looks_like_type() => Ok(Attribute::TypeAttr(self.parse_type(m)?)),
            _ => self.error("expected attribute"),
        }
    }

    fn parse_block(&mut self, m: &mut Module, op: OpId, region: usize) -> PResult<BlockId> {
        self.skip_ws();
        if !self.eat_keyword("^bb") {
            return self.error("expected block label '^bb'");
        }
        self.expect(b'(')?;
        let mut names = Vec::new();
        let mut types = Vec::new();
        if self.peek() != Some(b')') {
            loop {
                let name = self.parse_value_name()?;
                self.expect(b':')?;
                let ty = self.parse_type(m)?;
                names.push(name);
                types.push(ty);
                if !self.eat(b',') {
                    break;
                }
            }
        }
        self.expect(b')')?;
        self.expect(b':')?;
        let block = m.add_block(op, region, &types);
        for (i, name) in names.into_iter().enumerate() {
            let arg = m.block(block).args[i];
            if self.values.insert(name.clone(), arg).is_some() {
                return self.error(format!("redefinition of {name}"));
            }
        }
        loop {
            match self.peek() {
                None | Some(b'}') | Some(b'^') => break,
                _ => {
                    self.parse_op(m, Some(block))?;
                }
            }
        }
        Ok(block)
    }

    fn parse_op(&mut self, m: &mut Module, parent: Option<BlockId>) -> PResult<OpId> {
        // optional results
        let mut result_names = Vec::new();
        if self.peek() == Some(b'%') {
            loop {
                result_names.push(self.parse_value_name()?);
                if !self.eat(b',') {
                    break;
                }
            }
            self.expect(b'=')?;
        }
        let name = self.parse_string()?;
        self.expect(b'(')?;
        let mut operands = Vec::new();
        if self.peek() != Some(b')') {
            loop {
                let vname = self.parse_value_name()?;
                operands.push(self.resolve(&vname)?);
                if !self.eat(b',') {
                    break;
                }
            }
        }
        self.expect(b')')?;

        let op = m.create_op(&name, &operands, &[], vec![], 0);
        if let Some(block) = parent {
            m.push_op(block, op);
        } else {
            let body = m.body();
            m.push_op(body, op);
        }

        // optional regions: "(" "{" ... "}" ("," "{" ... "}")* ")"
        self.skip_ws();
        if self.src[self.pos..].starts_with(b"({") {
            self.expect(b'(')?;
            loop {
                self.expect(b'{')?;
                let region = m.add_region(op);
                while self.peek() == Some(b'^') {
                    self.parse_block(m, op, region)?;
                }
                self.expect(b'}')?;
                if !self.eat(b',') {
                    break;
                }
            }
            self.expect(b')')?;
        }

        // optional attribute dict
        if self.peek() == Some(b'{') {
            self.pos += 1;
            if self.peek() != Some(b'}') {
                loop {
                    let key = self.parse_ident()?;
                    self.expect(b'=')?;
                    let value = self.parse_attr(m)?;
                    m.set_attr(op, &key, value);
                    if !self.eat(b',') {
                        break;
                    }
                }
            }
            self.expect(b'}')?;
        }

        // trailing signature
        self.expect(b':')?;
        self.expect(b'(')?;
        let mut operand_tys = Vec::new();
        if self.peek() != Some(b')') {
            loop {
                operand_tys.push(self.parse_type(m)?);
                if !self.eat(b',') {
                    break;
                }
            }
        }
        self.expect(b')')?;
        self.expect(b'-')?;
        self.expect(b'>')?;
        self.expect(b'(')?;
        let mut result_tys = Vec::new();
        if self.peek() != Some(b')') {
            loop {
                result_tys.push(self.parse_type(m)?);
                if !self.eat(b',') {
                    break;
                }
            }
        }
        self.expect(b')')?;

        if operand_tys.len() != operands.len() {
            return self.error(format!(
                "op '{name}': {} operands but {} operand types",
                operands.len(),
                operand_tys.len()
            ));
        }
        for (i, (&v, &t)) in operands.iter().zip(operand_tys.iter()).enumerate() {
            if m.value_type(v) != t {
                return self.error(format!(
                    "op '{name}': operand {i} type mismatch (expected {}, signature says {})",
                    crate::print::print_type(m, m.value_type(v)),
                    crate::print::print_type(m, t),
                ));
            }
        }
        if result_tys.len() != result_names.len() {
            return self.error(format!(
                "op '{name}': {} result names but {} result types",
                result_names.len(),
                result_tys.len()
            ));
        }
        let results = m.add_op_results(op, &result_tys);
        for (name, v) in result_names.into_iter().zip(results) {
            if self.values.insert(name.clone(), v).is_some() {
                return self.error(format!("redefinition of {name}"));
            }
        }
        Ok(op)
    }
}

/// Parse a full module from its generic textual form.
///
/// # Errors
/// Returns a [`ParseError`] with line/column information on malformed
/// input, undefined value uses, or signature mismatches.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let mut m = Module::new();
    let mut p = Parser::new(src);
    while !p.at_eof() {
        p.parse_op(&mut m, None)?;
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::print_module;

    #[test]
    fn parses_simple_function_and_roundtrips() {
        let src = r#"
"func.func"() ({
^bb(%a0: tensor<10x8192xf32>):
  %0 = "torch.transpose"(%a0) {dim0 = -2, dim1 = -1} : (tensor<10x8192xf32>) -> (tensor<8192x10xf32>)
  "func.return"(%0) : (tensor<8192x10xf32>) -> ()
}) {function_type = (tensor<10x8192xf32>) -> tensor<8192x10xf32>, sym_name = "forward"} : () -> ()
"#;
        let m = parse_module(src).expect("parse");
        let func = m.lookup_symbol("forward").expect("symbol");
        let entry = m.op(func).regions[0][0];
        assert_eq!(m.block(entry).ops.len(), 2);
        let printed = print_module(&m);
        let m2 = parse_module(&printed).expect("reparse");
        assert_eq!(print_module(&m2), printed);
    }

    #[test]
    fn parses_all_attribute_kinds() {
        let src = r#"
"test.op"() {a = 1, b = -2.5, c = "hi", d = [1, 2.0, "x"], e = true, f = unit, g = i64, h = dense<f32, [2], [1.0, 2.0]>, i = dense<i64, [2], [3, 4]>} : () -> ()
"#;
        let m = parse_module(src).expect("parse");
        let op = m.top_level_ops()[0];
        let data = m.op(op);
        assert_eq!(data.int_attr("a"), Some(1));
        assert_eq!(data.attr("b").unwrap().as_float(), Some(-2.5));
        assert_eq!(data.str_attr("c"), Some("hi"));
        assert_eq!(data.attr("d").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(data.attr("e").unwrap().as_bool(), Some(true));
        assert_eq!(data.attr("f"), Some(&Attribute::Unit));
        assert!(data.attr("g").unwrap().as_type().is_some());
        match data.attr("h") {
            Some(Attribute::Dense { shape, data }) => {
                assert_eq!(shape, &vec![2]);
                assert_eq!(data.len(), 2);
            }
            other => panic!("expected dense attr, got {other:?}"),
        }
    }

    #[test]
    fn rejects_undefined_values() {
        let err = parse_module(r#""test.op"(%x0) : (i32) -> ()"#).unwrap_err();
        assert!(err.message.contains("undefined value"), "{err}");
    }

    #[test]
    fn rejects_signature_mismatch() {
        let src = r#"
"func.func"() ({
^bb(%a0: i32):
  "test.use"(%a0) : (i64) -> ()
}) {sym_name = "f"} : () -> ()
"#;
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("type mismatch"), "{err}");
    }

    #[test]
    fn parses_nested_regions() {
        let src = r#"
"func.func"() ({
^bb(%a0: tensor<4x4xf32>):
  %0 = "cim.acquire"() : () -> (index)
  %1 = "cim.execute"(%0, %a0) ({
  ^bb():
    %2 = "cim.transpose"(%a0) : (tensor<4x4xf32>) -> (tensor<4x4xf32>)
    "cim.yield"(%2) : (tensor<4x4xf32>) -> ()
  }) : (index, tensor<4x4xf32>) -> (tensor<4x4xf32>)
  "cim.release"(%0) : (index) -> ()
  "func.return"(%1) : (tensor<4x4xf32>) -> ()
}) {sym_name = "f"} : () -> ()
"#;
        let m = parse_module(src).expect("parse");
        let func = m.lookup_symbol("f").unwrap();
        let all = m.walk(func);
        assert_eq!(all.len(), 7); // func + 4 outer + 2 inner
        let printed = print_module(&m);
        assert!(printed.contains("\"cim.execute\""));
        let m2 = parse_module(&printed).expect("reparse");
        assert_eq!(print_module(&m2), printed);
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let src = r#"
// leading comment
"test.op"() : () -> () // trailing comment
// done
"#;
        let m = parse_module(src).expect("parse");
        assert_eq!(m.top_level_ops().len(), 1);
    }

    #[test]
    fn parses_cam_handle_types() {
        let src = r#"
%0 = "cam.alloc_bank"() : () -> (!cam.bank_id)
%1 = "cam.alloc_mat"(%0) : (!cam.bank_id) -> (!cam.mat_id)
"#;
        let m = parse_module(src).expect("parse");
        let ops = m.top_level_ops();
        assert_eq!(ops.len(), 2);
        match m.kind(m.value_type(m.result(ops[1], 0))) {
            TypeKind::CamHandle(level) => assert_eq!(*level, CamLevel::Mat),
            other => panic!("expected cam handle, got {other:?}"),
        }
    }

    #[test]
    fn error_positions_are_line_accurate() {
        let src = "\n\n  \"test.op\"(%x9) : (i32) -> ()";
        let err = parse_module(src).unwrap_err();
        assert_eq!(err.line, 3);
    }
}
