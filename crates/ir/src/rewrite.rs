//! Pattern-rewrite infrastructure: the greedy driver used by the
//! conversion and optimization passes.
//!
//! A [`RewritePattern`] inspects one operation and either leaves it alone
//! or mutates the module around it. [`apply_patterns_greedily`] repeatedly
//! sweeps the IR until no pattern fires (fixpoint) or an iteration cap is
//! hit — the same worklist discipline as MLIR's greedy driver, minus the
//! worklist (module sizes here make whole-module sweeps cheap).

use crate::module::{Module, OpId};
use std::error::Error;
use std::fmt;

/// Error raised by a pattern that matched but failed to apply.
#[derive(Debug, Clone)]
pub struct RewriteError {
    /// Pattern that failed.
    pub pattern: String,
    /// Failure description.
    pub message: String,
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rewrite '{}' failed: {}", self.pattern, self.message)
    }
}

impl Error for RewriteError {}

/// Outcome of a pattern application attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchResult {
    /// The pattern did not apply to this op.
    NoMatch,
    /// The pattern rewrote the IR.
    Changed,
}

/// One rewriting rule.
pub trait RewritePattern {
    /// Diagnostic name of the pattern.
    fn name(&self) -> &str;

    /// Try to match `op` and rewrite it.
    ///
    /// # Errors
    /// Implementations should return [`RewriteError`] only for *malformed*
    /// matches (IR that matched the trigger but violates the pattern's
    /// assumptions) — plain non-matches are `Ok(NoMatch)`.
    fn match_and_rewrite(&self, m: &mut Module, op: OpId) -> Result<MatchResult, RewriteError>;
}

/// Statistics from a greedy application run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Number of successful pattern applications.
    pub applications: usize,
    /// Number of full sweeps performed.
    pub sweeps: usize,
    /// Whether a fixpoint was reached (false = iteration cap hit).
    pub converged: bool,
}

/// Apply `patterns` to every op in the module until fixpoint.
///
/// Ops are visited in pre-order; after any rewrite the sweep restarts so
/// patterns always observe consistent IR. The iteration cap guards against
/// non-terminating pattern sets.
///
/// # Errors
/// Propagates the first [`RewriteError`] raised by a pattern.
pub fn apply_patterns_greedily(
    m: &mut Module,
    patterns: &[Box<dyn RewritePattern>],
    max_sweeps: usize,
) -> Result<RewriteStats, RewriteError> {
    let mut stats = RewriteStats::default();
    'outer: for _ in 0..max_sweeps {
        stats.sweeps += 1;
        let ops = m.walk_all();
        for op in ops {
            if !m.is_live_op(op) {
                continue; // erased by an earlier rewrite in this sweep
            }
            for p in patterns {
                match p.match_and_rewrite(m, op)? {
                    MatchResult::NoMatch => {}
                    MatchResult::Changed => {
                        stats.applications += 1;
                        continue 'outer;
                    }
                }
            }
        }
        stats.converged = true;
        return Ok(stats);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_func, OpBuilder};
    use crate::module::Module;

    /// Rewrites `t.double(x)` into `t.add(x, x)`.
    struct DoubleToAdd;

    impl RewritePattern for DoubleToAdd {
        fn name(&self) -> &str {
            "double-to-add"
        }

        fn match_and_rewrite(&self, m: &mut Module, op: OpId) -> Result<MatchResult, RewriteError> {
            if m.op(op).name != "t.double" {
                return Ok(MatchResult::NoMatch);
            }
            let x = m.operand(op, 0);
            let ty = m.value_type(m.result(op, 0));
            let mut b = OpBuilder::before(m, op);
            let add = b.op("t.add", &[x, x], &[ty], vec![]);
            let new_res = m.result(add, 0);
            let old_res = m.result(op, 0);
            m.replace_all_uses(old_res, new_res);
            m.erase_op(op);
            Ok(MatchResult::Changed)
        }
    }

    /// Erases `t.add` whose operands are equal — used to test chaining.
    struct FoldSelfAdd;

    impl RewritePattern for FoldSelfAdd {
        fn name(&self) -> &str {
            "fold-self-add"
        }

        fn match_and_rewrite(&self, m: &mut Module, op: OpId) -> Result<MatchResult, RewriteError> {
            let data = m.op(op);
            if data.name != "t.add" || data.operands[0] != data.operands[1] {
                return Ok(MatchResult::NoMatch);
            }
            let x = m.operand(op, 0);
            let ty = m.value_type(m.result(op, 0));
            let mut b = OpBuilder::before(m, op);
            let mul = b.op("t.scale2", &[x], &[ty], vec![]);
            let new_res = m.result(mul, 0);
            let old_res = m.result(op, 0);
            m.replace_all_uses(old_res, new_res);
            m.erase_op(op);
            Ok(MatchResult::Changed)
        }
    }

    fn setup() -> (Module, crate::module::BlockId) {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let (_, entry) = build_func(&mut m, "f", &[f32t], &[f32t]);
        (m, entry)
    }

    #[test]
    fn single_pattern_rewrites_all_occurrences() {
        let (mut m, entry) = setup();
        let f32t = m.f32_ty();
        let arg = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let d1 = b.op("t.double", &[arg], &[f32t], vec![]);
        let r1 = m.result(d1, 0);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let d2 = b.op("t.double", &[r1], &[f32t], vec![]);
        let r2 = m.result(d2, 0);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[r2], &[], vec![]);

        let patterns: Vec<Box<dyn RewritePattern>> = vec![Box::new(DoubleToAdd)];
        let stats = apply_patterns_greedily(&mut m, &patterns, 100).unwrap();
        assert_eq!(stats.applications, 2);
        assert!(stats.converged);
        let names: Vec<String> = m
            .block(entry)
            .ops
            .iter()
            .map(|&o| m.op(o).name.clone())
            .collect();
        assert_eq!(names, vec!["t.add", "t.add", "func.return"]);
    }

    #[test]
    fn patterns_chain_to_fixpoint() {
        let (mut m, entry) = setup();
        let f32t = m.f32_ty();
        let arg = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let d = b.op("t.double", &[arg], &[f32t], vec![]);
        let r = m.result(d, 0);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("func.return", &[r], &[], vec![]);

        let patterns: Vec<Box<dyn RewritePattern>> =
            vec![Box::new(DoubleToAdd), Box::new(FoldSelfAdd)];
        let stats = apply_patterns_greedily(&mut m, &patterns, 100).unwrap();
        assert_eq!(stats.applications, 2); // double→add, add→scale2
        let names: Vec<String> = m
            .block(entry)
            .ops
            .iter()
            .map(|&o| m.op(o).name.clone())
            .collect();
        assert_eq!(names, vec!["t.scale2", "func.return"]);
    }

    #[test]
    fn iteration_cap_stops_runaway_patterns() {
        /// Always rewrites t.spin → t.spin (never converges).
        struct Spin;
        impl RewritePattern for Spin {
            fn name(&self) -> &str {
                "spin"
            }
            fn match_and_rewrite(
                &self,
                m: &mut Module,
                op: OpId,
            ) -> Result<MatchResult, RewriteError> {
                if m.op(op).name != "t.spin" {
                    return Ok(MatchResult::NoMatch);
                }
                let ty = m.value_type(m.result(op, 0));
                let mut b = OpBuilder::before(m, op);
                let new = b.op("t.spin", &[], &[ty], vec![]);
                let new_res = m.result(new, 0);
                let old_res = m.result(op, 0);
                m.replace_all_uses(old_res, new_res);
                m.erase_op(op);
                Ok(MatchResult::Changed)
            }
        }
        let (mut m, entry) = setup();
        let f32t = m.f32_ty();
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("t.spin", &[], &[f32t], vec![]);
        let patterns: Vec<Box<dyn RewritePattern>> = vec![Box::new(Spin)];
        let stats = apply_patterns_greedily(&mut m, &patterns, 7).unwrap();
        assert!(!stats.converged);
        assert_eq!(stats.sweeps, 7);
    }
}
