//! Attributes: compile-time constant data attached to operations.
//!
//! Mirrors MLIR's attribute system at the scale the C4CAM pipeline needs:
//! scalars, strings, arrays, type attributes and dense tensor literals (the
//! weights captured by `torch.constant`).

use crate::types::Type;
use std::fmt;
use std::sync::Arc;

/// Dense literal payload for tensor constants.
///
/// Data is reference counted so that cloning an operation (or a whole
/// module) does not copy weight tensors.
#[derive(Debug, Clone, PartialEq)]
pub enum DenseData {
    /// 32-bit float payload.
    F32(Arc<Vec<f32>>),
    /// 64-bit integer payload.
    I64(Arc<Vec<i64>>),
}

impl DenseData {
    /// Number of scalar elements stored.
    pub fn len(&self) -> usize {
        match self {
            DenseData::F32(v) => v.len(),
            DenseData::I64(v) => v.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element at `i` widened to `f64` (for printing and interpretation).
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            DenseData::F32(v) => v[i] as f64,
            DenseData::I64(v) => v[i] as f64,
        }
    }
}

/// A compile-time attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Attribute {
    /// Presence-only marker (`unit`).
    Unit,
    /// Boolean (`true` / `false`).
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String literal.
    Str(String),
    /// A type used as an attribute (e.g. `function_type`).
    TypeAttr(Type),
    /// Homogeneous or heterogeneous array of attributes.
    Array(Vec<Attribute>),
    /// Dense tensor literal: flattened row-major data plus its shape.
    Dense {
        /// Tensor shape.
        shape: Vec<i64>,
        /// Flattened row-major payload.
        data: DenseData,
    },
}

impl Attribute {
    /// Convenience constructor for a dense f32 literal.
    pub fn dense_f32(shape: Vec<i64>, values: Vec<f32>) -> Attribute {
        Attribute::Dense {
            shape,
            data: DenseData::F32(Arc::new(values)),
        }
    }

    /// Convenience constructor for a dense i64 literal.
    pub fn dense_i64(shape: Vec<i64>, values: Vec<i64>) -> Attribute {
        Attribute::Dense {
            shape,
            data: DenseData::I64(Arc::new(values)),
        }
    }

    /// Integer payload, if this is an [`Attribute::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean payload, if this is an [`Attribute::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attribute::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Float payload; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attribute::Float(v) => Some(*v),
            Attribute::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String payload, if this is an [`Attribute::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Type payload, if this is an [`Attribute::TypeAttr`].
    pub fn as_type(&self) -> Option<Type> {
        match self {
            Attribute::TypeAttr(t) => Some(*t),
            _ => None,
        }
    }

    /// Array payload, if this is an [`Attribute::Array`].
    pub fn as_array(&self) -> Option<&[Attribute]> {
        match self {
            Attribute::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Array of integers, if this is an array whose elements are all ints.
    pub fn as_int_array(&self) -> Option<Vec<i64>> {
        let arr = self.as_array()?;
        arr.iter().map(|a| a.as_int()).collect()
    }
}

impl From<i64> for Attribute {
    fn from(v: i64) -> Self {
        Attribute::Int(v)
    }
}

impl From<bool> for Attribute {
    fn from(v: bool) -> Self {
        Attribute::Bool(v)
    }
}

impl From<f64> for Attribute {
    fn from(v: f64) -> Self {
        Attribute::Float(v)
    }
}

impl From<&str> for Attribute {
    fn from(v: &str) -> Self {
        Attribute::Str(v.to_string())
    }
}

impl From<String> for Attribute {
    fn from(v: String) -> Self {
        Attribute::Str(v)
    }
}

impl From<Vec<i64>> for Attribute {
    fn from(v: Vec<i64>) -> Self {
        Attribute::Array(v.into_iter().map(Attribute::Int).collect())
    }
}

impl fmt::Display for DenseData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenseData::F32(_) => write!(f, "f32[{}]", self.len()),
            DenseData::I64(_) => write!(f, "i64[{}]", self.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Attribute::Int(7).as_int(), Some(7));
        assert_eq!(Attribute::Bool(true).as_bool(), Some(true));
        assert_eq!(Attribute::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Attribute::Int(2).as_float(), Some(2.0));
        assert_eq!(Attribute::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(Attribute::Unit.as_int(), None);
        let arr: Attribute = vec![1i64, 2, 3].into();
        assert_eq!(arr.as_int_array(), Some(vec![1, 2, 3]));
        assert_eq!(Attribute::Array(vec![Attribute::Unit]).as_int_array(), None);
    }

    #[test]
    fn dense_literals_share_storage_on_clone() {
        let a = Attribute::dense_f32(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = a.clone();
        match (&a, &b) {
            (
                Attribute::Dense {
                    data: DenseData::F32(x),
                    ..
                },
                Attribute::Dense {
                    data: DenseData::F32(y),
                    ..
                },
            ) => {
                assert!(Arc::ptr_eq(x, y));
                assert_eq!(x.len(), 4);
            }
            _ => panic!("expected dense attributes"),
        }
    }

    #[test]
    fn dense_get_f64_widens_both_payloads() {
        let f = Attribute::dense_f32(vec![2], vec![0.5, 1.5]);
        let i = Attribute::dense_i64(vec![2], vec![3, 4]);
        if let Attribute::Dense { data, .. } = f {
            assert_eq!(data.get_f64(1), 1.5);
            assert!(!data.is_empty());
        }
        if let Attribute::Dense { data, .. } = i {
            assert_eq!(data.get_f64(0), 3.0);
        }
    }
}
