//! Pass management: named module transformations composed into pipelines.
//!
//! [`PassManager`] runs passes in order, optionally verifying the module
//! after each one (catching miscompiles at the pass boundary, like MLIR's
//! `-verify-each`) and recording wall-clock timing per pass.

use crate::module::Module;
use crate::verify::{verify_module, DialectRegistry};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Failure while running a pass pipeline.
#[derive(Debug, Clone)]
pub struct PassError {
    /// Pass that failed.
    pub pass: String,
    /// Failure description.
    pub message: String,
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass '{}' failed: {}", self.pass, self.message)
    }
}

impl Error for PassError {}

impl PassError {
    /// Construct a pass error.
    pub fn new(pass: &str, message: impl Into<String>) -> PassError {
        PassError {
            pass: pass.to_string(),
            message: message.into(),
        }
    }
}

/// A named module-level transformation.
pub trait Pass {
    /// Unique pass name (used in diagnostics and timing reports).
    fn name(&self) -> &'static str;

    /// Transform the module in place.
    ///
    /// # Errors
    /// Returns a [`PassError`] if the input IR violates the pass's
    /// preconditions or an internal rewrite fails.
    fn run(&self, m: &mut Module) -> Result<(), PassError>;
}

/// Wall-clock timing record for one executed pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PassTiming {
    /// Pass name.
    pub name: &'static str,
    /// Execution time in microseconds.
    pub micros: u128,
}

/// Ordered pipeline of passes.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: Option<Arc<DialectRegistry>>,
    timings: Vec<PassTiming>,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("verify_each", &self.verify_each.is_some())
            .finish()
    }
}

impl PassManager {
    /// Empty pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Append a pass.
    pub fn add(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Verify the module against `registry` after every pass.
    pub fn verify_each(&mut self, registry: Arc<DialectRegistry>) -> &mut Self {
        self.verify_each = Some(registry);
        self
    }

    /// Names of the scheduled passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Timing records of the most recent [`PassManager::run`].
    pub fn timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// Run all passes in order.
    ///
    /// # Errors
    /// Stops at (and returns) the first pass failure or post-pass
    /// verification failure.
    pub fn run(&mut self, m: &mut Module) -> Result<(), PassError> {
        self.timings.clear();
        for pass in &self.passes {
            let start = Instant::now();
            pass.run(m)?;
            self.timings.push(PassTiming {
                name: pass.name(),
                micros: start.elapsed().as_micros(),
            });
            if let Some(registry) = &self.verify_each {
                verify_module(m, registry)
                    .map_err(|e| PassError::new(pass.name(), format!("post-pass verify: {e}")))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_func, OpBuilder};
    use crate::module::Module;

    /// Renames every `t.old` op to `t.new`.
    struct RenamePass;

    impl Pass for RenamePass {
        fn name(&self) -> &'static str {
            "rename-old-to-new"
        }

        fn run(&self, m: &mut Module) -> Result<(), PassError> {
            for op in m.walk_all() {
                if m.op(op).name == "t.old" {
                    m.op_mut(op).name = "t.new".to_string();
                }
            }
            Ok(())
        }
    }

    /// Always fails.
    struct FailPass;

    impl Pass for FailPass {
        fn name(&self) -> &'static str {
            "fail"
        }

        fn run(&self, _m: &mut Module) -> Result<(), PassError> {
            Err(PassError::new("fail", "intentional"))
        }
    }

    fn module_with_old_op() -> Module {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", &[], &[]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        b.op("t.old", &[], &[], vec![]);
        m
    }

    #[test]
    fn pipeline_runs_in_order_and_times() {
        let mut m = module_with_old_op();
        let mut pm = PassManager::new();
        pm.add(Box::new(RenamePass));
        pm.run(&mut m).unwrap();
        assert_eq!(pm.timings().len(), 1);
        assert_eq!(pm.timings()[0].name, "rename-old-to-new");
        let names: Vec<String> = m.walk_all().iter().map(|&o| m.op(o).name.clone()).collect();
        assert!(names.contains(&"t.new".to_string()));
    }

    #[test]
    fn pipeline_stops_on_failure() {
        let mut m = module_with_old_op();
        let mut pm = PassManager::new();
        pm.add(Box::new(FailPass)).add(Box::new(RenamePass));
        let e = pm.run(&mut m).unwrap_err();
        assert_eq!(e.pass, "fail");
        // RenamePass never ran.
        let names: Vec<String> = m.walk_all().iter().map(|&o| m.op(o).name.clone()).collect();
        assert!(names.contains(&"t.old".to_string()));
    }

    #[test]
    fn verify_each_catches_bad_pass_output() {
        /// Pass that leaves an op with a dangling operand.
        struct CorruptPass;
        impl Pass for CorruptPass {
            fn name(&self) -> &'static str {
                "corrupt"
            }
            fn run(&self, m: &mut Module) -> Result<(), PassError> {
                let f32t = m.f32_ty();
                let (_, entry) = build_func(m, "g", &[f32t], &[]);
                let arg = m.block(entry).args[0];
                let mut b = OpBuilder::at_end(m, entry);
                let tmp = b.op("t.tmp", &[], &[f32t], vec![]);
                let res = m.result(tmp, 0);
                let mut b = OpBuilder::at_end(m, entry);
                b.op("t.use", &[res, arg], &[], vec![]);
                m.erase_op(tmp); // leaves t.use with an erased operand
                Ok(())
            }
        }
        let mut m = Module::new();
        let mut registry = DialectRegistry::new();
        registry.allow_unregistered = true;
        let mut pm = PassManager::new();
        pm.add(Box::new(CorruptPass))
            .verify_each(Arc::new(registry));
        let e = pm.run(&mut m).unwrap_err();
        assert!(e.message.contains("post-pass verify"), "{e}");
    }
}
