//! Insertion-point-tracking operation builder.
//!
//! [`OpBuilder`] mirrors MLIR's `OpBuilder`: it remembers a block and a
//! position inside it, and every created op is inserted there, advancing
//! the position. Passes use it to splice new IR between existing ops.

use crate::attr::Attribute;
use crate::module::{BlockId, Module, OpId, ValueId};
use crate::types::Type;

/// Builder that creates and inserts operations at a tracked position.
#[derive(Debug)]
pub struct OpBuilder<'m> {
    m: &'m mut Module,
    block: BlockId,
    pos: usize,
}

impl<'m> OpBuilder<'m> {
    /// Builder inserting at the end of `block`.
    pub fn at_end(m: &'m mut Module, block: BlockId) -> OpBuilder<'m> {
        let pos = m.block(block).ops.len();
        OpBuilder { m, block, pos }
    }

    /// Builder inserting at `pos` within `block`.
    ///
    /// # Panics
    /// Panics if `pos` is past the end of the block.
    pub fn at(m: &'m mut Module, block: BlockId, pos: usize) -> OpBuilder<'m> {
        assert!(pos <= m.block(block).ops.len(), "insertion point OOB");
        OpBuilder { m, block, pos }
    }

    /// Builder inserting immediately before `op`.
    ///
    /// # Panics
    /// Panics if `op` is detached.
    pub fn before(m: &'m mut Module, op: OpId) -> OpBuilder<'m> {
        let block = m.op(op).parent.expect("op must be placed");
        let pos = m.position_in_block(op).unwrap();
        OpBuilder { m, block, pos }
    }

    /// Builder inserting immediately after `op`.
    ///
    /// # Panics
    /// Panics if `op` is detached.
    pub fn after(m: &'m mut Module, op: OpId) -> OpBuilder<'m> {
        let block = m.op(op).parent.expect("op must be placed");
        let pos = m.position_in_block(op).unwrap() + 1;
        OpBuilder { m, block, pos }
    }

    /// The underlying module.
    pub fn module(&mut self) -> &mut Module {
        self.m
    }

    /// Immutable view of the underlying module (usable in nested
    /// expressions where `module()` would double-borrow).
    pub fn module_ref(&self) -> &Module {
        self.m
    }

    /// Current insertion block.
    pub fn insertion_block(&self) -> BlockId {
        self.block
    }

    /// Current insertion position.
    pub fn insertion_pos(&self) -> usize {
        self.pos
    }

    /// Move the insertion point to the end of `block`.
    pub fn set_insertion_point_to_end(&mut self, block: BlockId) {
        self.pos = self.m.block(block).ops.len();
        self.block = block;
    }

    /// Insert an already-created, detached op at the current position.
    pub fn insert(&mut self, op: OpId) {
        self.m.insert_op(self.block, self.pos, op);
        self.pos += 1;
    }

    /// Create an op with no regions and insert it.
    pub fn op(
        &mut self,
        name: &str,
        operands: &[ValueId],
        result_types: &[Type],
        attrs: Vec<(&str, Attribute)>,
    ) -> OpId {
        let id = self.m.create_op(name, operands, result_types, attrs, 0);
        self.insert(id);
        id
    }

    /// Create an op with `num_regions` empty regions and insert it.
    pub fn op_with_regions(
        &mut self,
        name: &str,
        operands: &[ValueId],
        result_types: &[Type],
        attrs: Vec<(&str, Attribute)>,
        num_regions: usize,
    ) -> OpId {
        let id = self
            .m
            .create_op(name, operands, result_types, attrs, num_regions);
        self.insert(id);
        id
    }

    /// Shortcut: create `arith.constant` with an index-typed result.
    pub fn const_index(&mut self, value: i64) -> ValueId {
        let ty = self.m.index_ty();
        let op = self.op(
            "arith.constant",
            &[],
            &[ty],
            vec![("value", Attribute::Int(value))],
        );
        self.m.result(op, 0)
    }

    /// Shortcut: create `arith.constant` with an `i64` result.
    pub fn const_i64(&mut self, value: i64) -> ValueId {
        let ty = self.m.i64_ty();
        let op = self.op(
            "arith.constant",
            &[],
            &[ty],
            vec![("value", Attribute::Int(value))],
        );
        self.m.result(op, 0)
    }

    /// Shortcut: create `arith.constant` with an `f32` result.
    pub fn const_f32(&mut self, value: f32) -> ValueId {
        let ty = self.m.f32_ty();
        let op = self.op(
            "arith.constant",
            &[],
            &[ty],
            vec![("value", Attribute::Float(value as f64))],
        );
        self.m.result(op, 0)
    }
}

/// Create a `func.func` with an entry block, returning `(func, entry)`.
///
/// This helper lives here (rather than in the `func` dialect) because
/// almost every test and pass needs it.
pub fn build_func(
    m: &mut Module,
    name: &str,
    inputs: &[Type],
    results: &[Type],
) -> (OpId, BlockId) {
    let fty = m.func_ty(inputs, results);
    let func = m.create_op(
        "func.func",
        &[],
        &[],
        vec![
            ("sym_name", Attribute::Str(name.to_string())),
            ("function_type", Attribute::TypeAttr(fty)),
        ],
        1,
    );
    let body = m.body();
    m.push_op(body, func);
    let entry = m.add_block(func, 0, inputs);
    (func, entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    #[test]
    fn builder_inserts_in_order_and_advances() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let (_, entry) = build_func(&mut m, "f", &[f32t], &[f32t]);
        let arg = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let c0 = b.const_index(0);
        let add = b.op("arith.addf", &[arg, arg], &[f32t], vec![]);
        assert_eq!(b.insertion_pos(), 2);
        let _ = c0;
        let ops = m.block(entry).ops.clone();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[1], add);
    }

    #[test]
    fn before_and_after_position_correctly() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let (_, entry) = build_func(&mut m, "f", &[f32t], &[f32t]);
        let arg = m.block(entry).args[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let first = b.op("arith.addf", &[arg, arg], &[f32t], vec![]);
        let mut b2 = OpBuilder::before(&mut m, first);
        let zero = b2.const_f32(0.0);
        let _ = zero;
        let mut b3 = OpBuilder::after(&mut m, first);
        let last = b3.op("arith.mulf", &[arg, arg], &[f32t], vec![]);
        let ops = m.block(entry).ops.clone();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[1], first);
        assert_eq!(ops[2], last);
        assert_eq!(m.op(ops[0]).name, "arith.constant");
    }

    #[test]
    fn build_func_wires_entry_block_args() {
        let mut m = Module::new();
        let f32t = m.f32_ty();
        let t = m.tensor_ty(&[10, 8192], f32t);
        let (func, entry) = build_func(&mut m, "forward", &[t, t], &[t]);
        assert_eq!(m.block(entry).args.len(), 2);
        assert_eq!(m.value_type(m.block(entry).args[0]), t);
        assert_eq!(m.op(func).str_attr("sym_name"), Some("forward"));
        assert_eq!(m.lookup_symbol("forward"), Some(func));
    }
}
